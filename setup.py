"""Thin setup shim.

The environment's setuptools lacks the ``wheel`` package, so PEP-517
editable installs fail; this file enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Shared infrastructure for the benchmark harness.

Figures 3a, 3b, and 4 are three views of one 36-run sweep (12 algorithm
pairs × 3 seeds), so the sweep result is computed once per pytest session
and shared — fanned out over worker processes (``REPRO_BENCH_JOBS``
overrides the worker count; results are identical at any count).

Every benchmark publishes two artifacts:

* a paper-shaped ASCII table (:func:`publish`) to stdout and
  ``benchmarks/results/<name>.txt``;
* a machine-readable JSON record (:func:`publish_json`) to
  ``benchmarks/results/<name>.json`` — a flat ``metrics`` mapping plus
  provenance — so ``benchmarks/compare.py`` can diff two checkouts and
  flag regressions.  Kernel micro-benchmarks additionally mirror their
  numbers to a top-level ``BENCH_kernel.json`` as the repo's performance
  trajectory baseline.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro import SimulationConfig, run_matrix
from repro.experiments.runner import MatrixResult

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Version of the JSON result schema written by :func:`publish_json`.
SCHEMA_VERSION = 1

#: Seeds used for the headline reproduction (the paper uses three).
PAPER_SEEDS = (0, 1, 2)


def bench_jobs() -> int:
    """Worker processes for benchmark fan-out.

    ``REPRO_BENCH_JOBS`` overrides (1 forces the serial path); the
    default is one worker per core.  Results are identical either way —
    only wall-clock changes.
    """
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env is not None:
        return int(env)
    return os.cpu_count() or 1


def bench_cache_dir() -> Optional[str]:
    """On-disk run cache for benchmark sessions (``REPRO_BENCH_CACHE``).

    Unset disables caching; any value names the cache directory, letting
    repeated benchmark sessions skip already-computed runs.
    """
    return os.environ.get("REPRO_BENCH_CACHE") or None


@functools.lru_cache(maxsize=None)
def paper_matrix(bandwidth_mbps: float = 10.0,
                 seeds: tuple = PAPER_SEEDS) -> MatrixResult:
    """The full 4×3 sweep at Table-1 scale (cached per session)."""
    config = SimulationConfig.paper(bandwidth_mbps=bandwidth_mbps)
    return run_matrix(config, seeds=seeds, jobs=bench_jobs(),
                      cache_dir=bench_cache_dir())


def publish(name: str, text: str) -> None:
    """Write a result table to stdout and benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def publish_json(
    name: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping] = None,
    higher_is_better: Iterable[str] = (),
    top_level: Optional[str] = None,
) -> dict:
    """Write a machine-readable result record.

    ``metrics`` is a flat name → number mapping (the unit belongs in the
    name: ``..._s``, ``..._mb``, ``..._per_s``).  ``higher_is_better``
    names the metrics where an increase is an improvement (throughputs,
    speedups); everything else is treated as lower-is-better by
    ``compare.py``.  ``top_level`` additionally mirrors the record to
    ``<repo root>/<top_level>`` (the committed ``BENCH_*.json``
    trajectory files).
    """
    payload = {
        "name": name,
        "schema_version": SCHEMA_VERSION,
        "metrics": {key: float(value) for key, value in metrics.items()},
        "higher_is_better": sorted(set(higher_is_better)),
        "meta": dict(meta or {}),
    }
    text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(text)
    if top_level is not None:
        (REPO_ROOT / top_level).write_text(text)
    return payload


def matrix_metrics(
    result: MatrixResult,
    fields: Sequence[str] = ("avg_response_time_s",
                             "avg_data_transferred_mb", "idle_percent"),
) -> Dict[str, float]:
    """Flatten a MatrixResult into publish_json metrics.

    Keys look like ``avg_response_time_s[JobDataPresent|DataRandom]``.
    """
    out: Dict[str, float] = {}
    for field in fields:
        for (es, ds), value in result.metric_matrix(field).items():
            out[f"{field}[{es}|{ds}]"] = value
    return out


def flatten_metrics(results: Mapping, fields: Sequence[str]) -> Dict[str, float]:
    """Flatten ``{key: RunMetrics}`` into publish_json metrics.

    Tuple keys are joined with ``|``: ``avg_response_time_s[10.0|JobLocal]``.
    """
    out: Dict[str, float] = {}
    for key, run in results.items():
        label = "|".join(str(k) for k in key) if isinstance(key, tuple) \
            else str(key)
        for field in fields:
            out[f"{field}[{label}]"] = float(getattr(run, field))
    return out


def benchmark_stats(benchmark) -> Dict[str, float]:
    """Timing numbers from a pytest-benchmark fixture, if it recorded any.

    Returns ``{}`` under ``--benchmark-disable`` (or any harness that
    skips stats), so JSON emission never breaks a bench run.
    """
    try:
        stats = benchmark.stats.stats
        return {"mean_s": float(stats.mean), "min_s": float(stats.min)}
    except (AttributeError, TypeError):
        return {}

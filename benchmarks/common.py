"""Shared infrastructure for the benchmark harness.

Figures 3a, 3b, and 4 are three views of one 36-run sweep (12 algorithm
pairs × 3 seeds), so the sweep result is computed once per pytest session
and shared.  Every benchmark writes its paper-shaped table both to stdout
and to ``benchmarks/results/<name>.txt`` so results survive output
capturing.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro import SimulationConfig, run_matrix
from repro.experiments.runner import MatrixResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Seeds used for the headline reproduction (the paper uses three).
PAPER_SEEDS = (0, 1, 2)


@functools.lru_cache(maxsize=None)
def paper_matrix(bandwidth_mbps: float = 10.0,
                 seeds: tuple = PAPER_SEEDS) -> MatrixResult:
    """The full 4×3 sweep at Table-1 scale (cached per session)."""
    config = SimulationConfig.paper(bandwidth_mbps=bandwidth_mbps)
    return run_matrix(config, seeds=seeds)


def publish(name: str, text: str) -> None:
    """Write a result table to stdout and benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)

"""Figure 5: response times for the 10 vs 100 MB/s bandwidth scenarios
(replication algorithm DataLeastLoaded, as the paper's caption states).

Paper shape: the transfer-heavy algorithms improve dramatically at 10×
bandwidth, JobDataPresent stays roughly constant, and JobLocal pulls even
with JobDataPresent — "there is no clear winner".
"""

from repro import SimulationConfig
from repro.experiments.paper import reproduce_figure5
from repro.scheduling.registry import ALL_ES

from common import PAPER_SEEDS, publish, publish_json


def test_figure5(benchmark):
    config = SimulationConfig.paper()

    out = benchmark.pedantic(
        lambda: reproduce_figure5(config, seeds=PAPER_SEEDS),
        rounds=1, iterations=1)

    lines = ["Figure 5: response times for different bandwidth scenarios",
             "(replication algorithm DataLeastLoaded)",
             "=" * 58,
             f"{'':<16}{'10MB/sec':>12}{'100MB/sec':>12}"]
    for es in ALL_ES:
        lines.append(f"{es:<16}{out['10MB/sec'][es]:>12.1f}"
                     f"{out['100MB/sec'][es]:>12.1f}")
    publish("figure5", "\n".join(lines))
    publish_json("figure5", {
        f"avg_response_time_s[{scenario}|{es}]": seconds
        for scenario, per_es in out.items()
        for es, seconds in per_es.items()
    })

    slow, fast = out["10MB/sec"], out["100MB/sec"]
    for es in ("JobRandom", "JobLeastLoaded", "JobLocal"):
        assert fast[es] < slow[es] * 0.8  # dramatic improvement
    jdp_drift = abs(slow["JobDataPresent"] - fast["JobDataPresent"])
    assert jdp_drift / slow["JobDataPresent"] < 0.25  # consistent
    ratio = fast["JobLocal"] / fast["JobDataPresent"]
    assert 0.6 <= ratio <= 1.4  # no clear winner

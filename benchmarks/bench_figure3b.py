"""Figure 3b: average data transferred per job (MB) for the 4×3 matrix.

Paper shape: JobDataPresent moves dramatically less data than every other
algorithm ("the difference ... is very large (> 400 MB/job)"); with
DataDoNothing it moves none at all (jobs go to the single replica).
"""

from repro.metrics.report import format_matrix
from repro.scheduling.registry import ALL_DS, ALL_ES

from common import matrix_metrics, paper_matrix, publish, publish_json


def test_figure3b(benchmark):
    result = benchmark.pedantic(paper_matrix, rounds=1, iterations=1)

    values = result.metric_matrix("avg_data_transferred_mb")
    publish("figure3b", format_matrix(
        "Figure 3b: average data transferred per job (MB)",
        values, ALL_ES, ALL_DS, unit="MB"))
    publish_json("figure3b",
                 matrix_metrics(result, ["avg_data_transferred_mb"]))

    assert values[("JobDataPresent", "DataDoNothing")] == 0.0
    for ds in ALL_DS:
        jdp = values[("JobDataPresent", ds)]
        for es in ("JobRandom", "JobLeastLoaded", "JobLocal"):
            assert values[(es, ds)] - jdp > 300.0

"""Ablation: the paper's hold-processor-while-fetching FIFO vs a
data-aware backfilling local scheduler.

The paper's FIFO simplification (§4) lets a job occupy a processor while
its input is still crossing the WAN.  ``FIFO-DataAware`` instead runs the
first *data-ready* queued job and leaves processors free when nothing is
ready.  Measured at paper scale: the simplification costs little in the
default configuration (transfers overlap queueing anyway) and a handful
of percent under cache pressure — evidence the paper's conclusions don't
hinge on it.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json

REGIMES = (
    ("default (50 GB)", 50_000.0),
    ("cache-pressure (20 GB)", 20_000.0),
)


def test_ablation_dataaware(benchmark):
    config = SimulationConfig.paper()

    def sweep():
        out = {}
        for label, storage in REGIMES:
            for ls in ("FIFO", "FIFO-DataAware"):
                cfg = config.with_(local_scheduler=ls,
                                   storage_capacity_mb=storage)
                out[(label, ls)] = run_single(
                    cfg, "JobRandom", "DataDoNothing", seed=0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: FIFO vs data-aware backfilling "
             "(JobRandom + DataDoNothing)",
             "=" * 66,
             f"{'regime':<24}{'LS':<17}{'resp(s)':>9}{'idle%':>7}"]
    for (label, ls), m in results.items():
        lines.append(f"{label:<24}{ls:<17}"
                     f"{m.avg_response_time_s:>9.1f}"
                     f"{m.idle_percent:>7.1f}")
    gain = (results[("cache-pressure (20 GB)", "FIFO")].avg_response_time_s
            / results[("cache-pressure (20 GB)",
                       "FIFO-DataAware")].avg_response_time_s)
    lines.append(f"\nbackfilling gain under cache pressure: {gain:.2f}x "
                 "(paper's FIFO simplification is benign)")
    publish("ablation_dataaware", "\n".join(lines))
    publish_json("ablation_dataaware", {
        **flatten_metrics(results, ("avg_response_time_s",
                                    "idle_percent")),
        "backfilling_gain": gain,
    }, higher_is_better=["backfilling_gain"])

    for label, _ in REGIMES:
        fifo = results[(label, "FIFO")]
        aware = results[(label, "FIFO-DataAware")]
        # Backfilling never meaningfully hurts...
        assert aware.avg_response_time_s <= fifo.avg_response_time_s * 1.05
        assert aware.idle_fraction <= fifo.idle_fraction + 0.02
    # ...and helps a little when fetch stalls are common.
    assert gain > 1.02

"""Figure 4: percentage of time processors are idle (not in use or
waiting for data) for the 4×3 matrix.

Paper shape: JobDataPresent + replication keeps processors busiest; the
same algorithm without replication idles the most (hotspot starvation).
"""

from repro.metrics.report import format_matrix
from repro.scheduling.registry import ALL_DS, ALL_ES

from common import matrix_metrics, paper_matrix, publish, publish_json


def test_figure4(benchmark):
    result = benchmark.pedantic(paper_matrix, rounds=1, iterations=1)

    values = result.metric_matrix("idle_percent")
    publish("figure4", format_matrix(
        "Figure 4: average idle time of processors (%)",
        values, ALL_ES, ALL_DS, unit="percent"))
    publish_json("figure4", matrix_metrics(result, ["idle_percent"]))

    for v in values.values():
        assert 0.0 <= v <= 100.0
    no_repl = {es: values[(es, "DataDoNothing")] for es in ALL_ES}
    assert max(no_repl, key=no_repl.get) == "JobDataPresent"
    with_repl = min(values[("JobDataPresent", ds)]
                    for ds in ("DataRandom", "DataLeastLoaded"))
    assert all(with_repl < v for (es, ds), v in values.items()
               if es != "JobDataPresent")

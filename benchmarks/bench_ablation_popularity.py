"""Ablation: popularity distribution (the workload's skew).

Swaps the paper's geometric popularity for Zipf (heavier head) and
uniform (no skew).  The result is instructive and initially
counter-intuitive: the decoupled win *grows* as popularity flattens.

Mechanism: JobDataPresent barely touches the network regardless of skew,
while the coupled baseline (JobLocal + on-demand fetch) depends on LRU
*cache reuse* — which only exists when requests concentrate on few files.
Under uniform popularity every job misses, the full input crosses the
WAN, and the coupled baseline collapses.  Skew giveth (cache hits for
the coupled side) even as it taketh away (hotspot queues for
JobDataPresent *without* replication — the Figure 3a/4 effect, which the
replication policy then removes).
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json

MODELS = ("geometric", "zipf", "uniform")


def test_ablation_popularity(benchmark):
    config = SimulationConfig.paper()

    def sweep():
        out = {}
        for model in MODELS:
            cfg = config.with_(popularity_model=model)
            out[(model, "coupled")] = run_single(
                cfg, "JobLocal", "DataDoNothing", seed=0)
            out[(model, "decoupled")] = run_single(
                cfg, "JobDataPresent", "DataRandom", seed=0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: popularity distribution",
             "=" * 66,
             f"{'model':<12}{'coupled(s)':>11}{'decoupled(s)':>13}"
             f"{'gain':>6}{'coupled MB/job':>15}"]
    gains = {}
    for model in MODELS:
        coupled = results[(model, "coupled")]
        decoupled = results[(model, "decoupled")]
        gain = coupled.avg_response_time_s / decoupled.avg_response_time_s
        gains[model] = gain
        lines.append(
            f"{model:<12}{coupled.avg_response_time_s:>11.1f}"
            f"{decoupled.avg_response_time_s:>13.1f}{gain:>6.2f}"
            f"{coupled.avg_data_transferred_mb:>15.1f}")
    lines.append(
        "\ngain = coupled/decoupled response ratio.  Flatter popularity "
        "-> no cache reuse\nfor the coupled baseline -> larger decoupling "
        "win (transfer avoidance dominates).")
    publish("ablation_popularity", "\n".join(lines))
    publish_json("ablation_popularity", {
        **flatten_metrics(results, ("avg_response_time_s",
                                    "avg_data_transferred_mb")),
        **{f"decoupling_gain[{model}]": g for model, g in gains.items()},
    }, higher_is_better=[f"decoupling_gain[{m}]" for m in MODELS])

    # Decoupling wins under every distribution...
    for model in MODELS:
        assert gains[model] > 1.2
    # ...and the win grows as cache reuse disappears.
    assert gains["uniform"] > gains["zipf"] > gains["geometric"]
    # The coupled baseline's traffic grows as popularity flattens.
    assert (results[("uniform", "coupled")].avg_data_transferred_mb >
            results[("geometric", "coupled")].avg_data_transferred_mb)

"""Figure 3a: average response time per job for the 4×3 algorithm matrix.

Paper shape (10 MB/s, Table 1): without replication JobLocal is best and
JobDataPresent worst; with replication JobDataPresent wins outright.
"""

from repro.metrics.report import format_matrix
from repro.scheduling.registry import ALL_DS, ALL_ES

from common import matrix_metrics, paper_matrix, publish, publish_json


def test_figure3a(benchmark):
    result = benchmark.pedantic(paper_matrix, rounds=1, iterations=1)

    values = result.metric_matrix("avg_response_time_s")
    publish("figure3a", format_matrix(
        "Figure 3a: average response time per job (seconds)",
        values, ALL_ES, ALL_DS, unit="seconds"))
    publish_json("figure3a",
                 matrix_metrics(result, ["avg_response_time_s"]))

    no_repl = {es: values[(es, "DataDoNothing")] for es in ALL_ES}
    assert max(no_repl, key=no_repl.get) == "JobDataPresent"
    best_decoupled = min(values[("JobDataPresent", ds)]
                         for ds in ("DataRandom", "DataLeastLoaded"))
    assert best_decoupled < min(no_repl.values())

"""Ablation: Dataset Scheduler tuning (threshold and period).

The paper leaves the popularity threshold and replication period
unpublished; this bench sweeps both around our defaults (5 accesses,
300 s) to show the decoupled win is robust to the choice.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json


def test_ablation_replication_tuning(benchmark):
    config = SimulationConfig.paper()
    thresholds = (3, 5, 10)
    intervals = (150.0, 300.0, 600.0)

    def sweep():
        out = {}
        for threshold in thresholds:
            for interval in intervals:
                cfg = config.with_(popularity_threshold=threshold,
                                   ds_check_interval_s=interval)
                out[(threshold, interval)] = run_single(
                    cfg, "JobDataPresent", "DataRandom", seed=0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = run_single(config, "JobDataPresent", "DataDoNothing", seed=0)

    lines = ["Ablation: replication threshold x period "
             "(JobDataPresent + DataRandom)",
             "=" * 64,
             f"{'threshold':>10}{'period(s)':>10}{'resp(s)':>9}"
             f"{'repl.done':>10}{'MB/job':>8}"]
    for (threshold, interval), m in sorted(results.items()):
        lines.append(f"{threshold:>10}{interval:>10.0f}"
                     f"{m.avg_response_time_s:>9.1f}"
                     f"{m.replications_done:>10}"
                     f"{m.avg_data_transferred_mb:>8.1f}")
    lines.append(f"\nno-replication baseline: "
                 f"{baseline.avg_response_time_s:.1f} s")
    publish("ablation_replication", "\n".join(lines))
    publish_json("ablation_replication", {
        **flatten_metrics(results, ("avg_response_time_s",
                                    "avg_data_transferred_mb",
                                    "replications_done")),
        "no_replication_baseline_s": baseline.avg_response_time_s,
    })

    # Every tuning in the sweep still beats no replication.
    for m in results.values():
        assert m.avg_response_time_s < baseline.avg_response_time_s
        assert m.replications_done > 0

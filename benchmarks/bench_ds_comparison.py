"""Dataset Scheduler comparison, including the companion-paper strategy.

The paper evaluates DataDoNothing / DataRandom / DataLeastLoaded; the
authors' companion work (ref [23], "Identifying Dynamic Replication
Strategies") proposes demand-driven *Best Client* replication.  This
bench runs all four under the winning External Scheduler.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json

POLICIES = ("DataDoNothing", "DataRandom", "DataLeastLoaded",
            "DataBestClient")


def test_ds_comparison(benchmark):
    config = SimulationConfig.paper()

    def sweep():
        return {
            ds: run_single(config, "JobDataPresent", ds, seed=0)
            for ds in POLICIES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Dataset Scheduler comparison (ES = JobDataPresent)",
             "=" * 60,
             f"{'policy':<18}{'resp(s)':>9}{'MB/job':>9}{'idle%':>7}"
             f"{'repl.done':>10}"]
    for ds, m in results.items():
        lines.append(f"{ds:<18}{m.avg_response_time_s:>9.1f}"
                     f"{m.avg_data_transferred_mb:>9.1f}"
                     f"{m.idle_percent:>7.1f}{m.replications_done:>10}")
    publish("ds_comparison", "\n".join(lines))
    publish_json("ds_comparison", flatten_metrics(
        results, ("avg_response_time_s", "avg_data_transferred_mb",
                  "idle_percent")))

    base = results["DataDoNothing"].avg_response_time_s
    for ds in ("DataRandom", "DataLeastLoaded", "DataBestClient"):
        # Every active policy must beat passive caching...
        assert results[ds].avg_response_time_s < base
        # ...while moving far less data than the coupled algorithms do
        # (hundreds of MB/job; see Figure 3b).
        assert results[ds].avg_data_transferred_mb < 250.0
    # Demand-driven placement is at least competitive with the paper's
    # two blind policies.
    best_paper = min(results["DataRandom"].avg_response_time_s,
                     results["DataLeastLoaded"].avg_response_time_s)
    assert results["DataBestClient"].avg_response_time_s < best_paper * 1.15

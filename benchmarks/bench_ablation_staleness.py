"""Ablation: information-service staleness.

The paper's schedulers consult MDS/NWS-style services; our default models
300 s of cache lag.  This bench sweeps the refresh interval to show how
load-based scheduling degrades as information ages (the herding effect).
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json


def test_ablation_staleness(benchmark):
    config = SimulationConfig.paper()
    intervals = (0.0, 120.0, 300.0, 900.0)

    def sweep():
        return {
            interval: run_single(
                config.with_(info_refresh_interval_s=interval),
                "JobLeastLoaded", "DataDoNothing", seed=0)
            for interval in intervals
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: information staleness (JobLeastLoaded, no repl.)",
             "=" * 58,
             f"{'refresh (s)':>12}{'resp (s)':>10}{'imbalance':>11}"]
    for interval, m in results.items():
        label = "live" if interval == 0 else f"{interval:g}"
        lines.append(f"{label:>12}{m.avg_response_time_s:>10.1f}"
                     f"{m.load_imbalance:>11.2f}")
    publish("ablation_staleness", "\n".join(lines))
    publish_json("ablation_staleness", flatten_metrics(
        results, ("avg_response_time_s", "load_imbalance")))

    # Live information is at least as good as badly stale information.
    assert results[0.0].avg_response_time_s <= \
        results[900.0].avg_response_time_s * 1.10

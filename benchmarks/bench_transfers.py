"""Micro-benchmarks of the network transfer engine under contention."""

from repro.network import MaxMinFairAllocator, Topology, TransferManager
from repro.sim import Simulator

from common import benchmark_stats, publish_json

_METRICS = {}


def _record(name, benchmark, transfers):
    """Fold one scenario's timing into benchmarks/results/transfers.json."""
    stats = benchmark_stats(benchmark)
    if not stats:
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_transfers_per_s"] = transfers / stats["mean_s"]
    publish_json(
        "transfers", _METRICS,
        higher_is_better=[k for k in _METRICS
                          if k.endswith("_transfers_per_s")])


def _churn(allocator=None, n=300):
    sim = Simulator()
    topo = Topology.hierarchical(30, 10.0)
    tm = TransferManager(sim, topo, allocator=allocator)
    sites = topo.sites

    def starter(i):
        yield sim.timeout(i * 0.5)
        tm.start(sites[i % 30], sites[(i * 7 + 1) % 30], 50 + i % 200)

    for i in range(n):
        sim.process(starter(i))
    sim.run()
    return len(tm.completed)


def test_transfer_churn_equal_share(benchmark):
    """300 staggered transfers over the paper topology (equal share)."""
    assert benchmark(_churn) == 300
    _record("churn_equal_share", benchmark, transfers=300)


def test_transfer_churn_maxmin(benchmark):
    """Same churn under progressive-filling max-min fairness."""
    assert benchmark(_churn, MaxMinFairAllocator()) == 300
    _record("churn_maxmin", benchmark, transfers=300)


def test_rebalance_storm(benchmark):
    """Worst case: many transfers sharing one bottleneck link, so every
    completion rebalances every other transfer."""

    def run():
        sim = Simulator()
        topo = Topology.star(3, 10.0)
        tm = TransferManager(sim, topo)
        for i in range(200):
            tm.start("site00", "site01", 10 + i)  # all distinct finishes
        sim.run()
        return len(tm.completed)

    assert benchmark(run) == 200
    _record("rebalance_storm", benchmark, transfers=200)

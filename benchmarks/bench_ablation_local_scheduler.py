"""Ablation: Local Scheduler policy (the paper fixes FIFO).

The paper uses FIFO "as a simplification"; this bench checks how much the
headline configuration cares, using the SJF/LJF extensions.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json


def test_ablation_local_scheduler(benchmark):
    config = SimulationConfig.paper()
    policies = ("FIFO", "SJF", "LJF")

    def sweep():
        return {
            ls: run_single(config.with_(local_scheduler=ls),
                           "JobDataPresent", "DataRandom", seed=0)
            for ls in policies
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: local scheduler (JobDataPresent + DataRandom)",
             "=" * 56,
             f"{'policy':<8}{'resp(s)':>9}{'queue(s)':>10}{'idle%':>7}"]
    for ls, m in results.items():
        lines.append(f"{ls:<8}{m.avg_response_time_s:>9.1f}"
                     f"{m.avg_queue_time_s:>10.1f}{m.idle_percent:>7.1f}")
    publish("ablation_local_scheduler", "\n".join(lines))
    publish_json("ablation_local_scheduler", flatten_metrics(
        results, ("avg_response_time_s", "avg_queue_time_s",
                  "idle_percent")))

    # SJF can't make mean response worse than LJF (classic result); FIFO
    # sits between or near them.  Users submit sequentially so queues are
    # short — differences stay modest.
    assert results["SJF"].avg_response_time_s <= \
        results["LJF"].avg_response_time_s * 1.05

"""Micro-benchmarks of the observed failure-detection layer.

The health layer rides along on every simulated run once armed —
heartbeat processes per site, a detector scan per beat, breaker feedback
on every transfer, and (with speculation) a straggler scan per tick.
Its cost is measured four ways: the health-off baseline every default
run pays (the zero-cost-when-off claim), the same workload with the
detector armed, the same again with speculation on top, and the
per-transfer breaker-feedback path in isolation.

The numbers accumulate into ``benchmarks/results/health.json`` and the
top-level ``BENCH_health.json`` — the committed baseline that
``benchmarks/compare.py`` gates in CI.
"""

import random

from repro.grid import Dataset, DatasetCollection, DataGrid, Job
from repro.grid.health import HealthPolicy
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLeastLoaded
from repro.sim import Simulator

from common import benchmark_stats, publish_json

_METRICS = {}

N_JOBS = 400
N_FEEDBACK_CYCLES = 20_000

DETECTOR = HealthPolicy(heartbeat_interval_s=30.0, phi_threshold=3.0)
SPECULATIVE = HealthPolicy(heartbeat_interval_s=30.0, phi_threshold=3.0,
                           speculate_quantile=0.9,
                           speculate_multiplier=3.0,
                           speculate_check_interval_s=30.0)


def _record(name: str, benchmark, work_items: int) -> None:
    """Fold one benchmark's timing into the health baseline record."""
    stats = benchmark_stats(benchmark)
    if not stats:  # --benchmark-disable: nothing measured
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_min_s"] = stats["min_s"]
    _METRICS[f"{name}_per_s"] = work_items / stats["mean_s"]
    publish_json(
        "health",
        _METRICS,
        meta={"units": "per_s = work items (completed jobs/feedback "
                       "cycles) per second of mean wall-clock"},
        higher_is_better=[k for k in _METRICS if k.endswith("_per_s")],
        top_level="BENCH_health.json",
    )


def _make_grid(policy):
    sim = Simulator()
    topology = Topology.star(8, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLeastLoaded(random.Random(1)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=50_000,
        datamover_rng=random.Random(0),
        health_policy=policy,
        health_rng=random.Random(0) if policy is not None else None,
    )
    # d0 everywhere: every fetch is a local hit, so runtimes stay
    # uniform.  Shared-bandwidth fetches would make genuine stragglers,
    # and the point here is the layer's bookkeeping cost, not its
    # reactions.
    grid.place_initial_replicas({"d0": "site00"})
    d0 = datasets.get("d0")
    for name in topology.sites:
        if name != "site00":
            grid.storages[name].add(d0, 0.0)
            grid.catalog.register("d0", name, size_mb=d0.size_mb)
    return sim, grid


def _run_workload(policy):
    """Complete N_JOBS short uniform jobs on a healthy 8-site grid."""
    sim, grid = _make_grid(policy)
    done = [grid.submit(Job(i, "user", "site00", ["d0"], 50.0))
            for i in range(N_JOBS)]
    sim.run(until=sim.all_of(done))
    return grid


def test_run_baseline(benchmark):
    """Health layer absent: the cost every default run pays."""
    grid = benchmark(_run_workload, None)
    assert grid.health is None
    assert len(grid.completed_jobs) == N_JOBS
    _record("run_baseline", benchmark, work_items=N_JOBS)


def test_run_detector_armed(benchmark):
    """Heartbeats + phi detector on a healthy grid: pure overhead.

    No site ever fails, so every heartbeat, detector scan, and breaker
    lookup is bookkeeping — the steady-state tax the detector charges.
    """
    grid = benchmark(_run_workload, DETECTOR)
    assert grid.health is not None
    assert grid.health.stats.suspicions == 0
    assert len(grid.completed_jobs) == N_JOBS
    _record("run_detector_armed", benchmark, work_items=N_JOBS)


def test_run_speculation_armed(benchmark):
    """Detector plus the straggler scanner; uniform runtimes mean the
    quantile threshold never trips, so the scan cost is isolated."""
    grid = benchmark(_run_workload, SPECULATIVE)
    assert grid.health.stats.speculative_launched == 0
    assert len(grid.completed_jobs) == N_JOBS
    _record("run_speculation_armed", benchmark, work_items=N_JOBS)


def test_breaker_feedback_churn(benchmark):
    """The per-transfer feedback path: failure/success pairs on one
    link, half of them tripping and re-closing the breaker."""
    sim, grid = _make_grid(DETECTOR)
    health = grid.health
    threshold = health.policy.link_failure_threshold

    def run():
        for _ in range(N_FEEDBACK_CYCLES // (threshold + 1)):
            for _ in range(threshold):
                health.record_transfer_failure("site01", "site02")
            health.record_transfer_success("site01", "site02")
        return health

    health = benchmark(run)
    # Every cycle trips and re-closes the breaker; it ends closed.
    assert not health.link_open("site01", "site02")
    assert health.stats.breaker_restores > 0
    _record("breaker_feedback_churn", benchmark,
            work_items=N_FEEDBACK_CYCLES)

"""The paper's full §5.2 study: 72 experiments.

12 algorithm pairs × 3 seeds × 2 bandwidth scenarios, exactly as the paper
describes, including the variance check ("we found no significance
variation" across seeds).
"""

from repro.metrics.summary import summarize
from repro.scheduling.registry import ALL_DS, ALL_ES

from common import PAPER_SEEDS, paper_matrix, publish, publish_json


def test_full_study(benchmark):
    def study():
        return {
            bw: paper_matrix(bandwidth_mbps=bw, seeds=PAPER_SEEDS)
            for bw in (10.0, 100.0)
        }

    results = benchmark.pedantic(study, rounds=1, iterations=1)

    total_runs = sum(
        len(runs)
        for matrix in results.values()
        for runs in matrix.runs.values()
    )

    lines = [f"Full study: {total_runs} experiments "
             "(12 pairs x 3 seeds x 2 bandwidths)",
             "=" * 60]
    spreads = {}
    metrics = {}
    for bw, matrix in results.items():
        lines.append(f"\n--- bandwidth {bw:g} MB/s ---")
        lines.append(f"{'ES':<16}{'DS':<18}{'resp(s)':>9}{'MB/job':>9}"
                     f"{'idle%':>7}{'spread':>8}")
        for es in ALL_ES:
            for ds in ALL_DS:
                summary = summarize(matrix.runs[(es, ds)])
                resp = summary["avg_response_time_s"]
                mb = summary["avg_data_transferred_mb"]
                idle = summary["idle_fraction"]
                spreads[(bw, es, ds)] = resp.relative_spread
                label = f"{bw:g}|{es}|{ds}"
                metrics[f"avg_response_time_s[{label}]"] = resp.mean
                metrics[f"avg_data_transferred_mb[{label}]"] = mb.mean
                metrics[f"idle_percent[{label}]"] = 100 * idle.mean
                lines.append(
                    f"{es:<16}{ds:<18}{resp.mean:>9.1f}{mb.mean:>9.1f}"
                    f"{100 * idle.mean:>7.1f}{resp.relative_spread:>8.3f}")
    worst = max(spreads.values())
    lines.append(
        f"\nworst cross-seed response-time spread: {worst:.3f} "
        "(paper: 'no significant variation'; the one seed-sensitive "
        "configuration is the no-replication hotspot case, where the "
        "random initial placement of the hottest datasets sets the "
        "overload severity)")
    publish("full_study", "\n".join(lines))
    metrics["worst_relative_spread"] = worst
    metrics["total_runs"] = total_runs
    publish_json("full_study", metrics)

    assert total_runs == 72
    # The paper's variance claim: seeds agree within a small spread for
    # every configuration except JobDataPresent without replication,
    # whose hotspot severity legitimately depends on where the random
    # initial placement drops the hottest datasets.
    for (bw, es, ds), spread in spreads.items():
        if es == "JobDataPresent" and ds == "DataDoNothing":
            assert spread < 0.60
        else:
            assert spread < 0.15

"""Figure 2: dataset popularity follows a geometric distribution.

Regenerates the request-count-per-dataset histogram (the paper shows the
60 most popular of its 200 datasets) and checks its geometric shape.
"""

from repro import SimulationConfig
from repro.experiments.paper import reproduce_figure2
from repro.workload.popularity import GeometricPopularity

from common import benchmark_stats, publish, publish_json


def test_figure2(benchmark):
    config = SimulationConfig.paper()

    ranked = benchmark.pedantic(
        lambda: reproduce_figure2(config, seed=0, top_n=60),
        rounds=3, iterations=1)

    lines = ["Figure 2: dataset popularity (geometric distribution)",
             "=" * 54,
             f"{'rank':>4} {'dataset':<14} {'requests':>9}  histogram"]
    peak = ranked[0][1]
    for rank, (name, count) in enumerate(ranked[:30]):
        bar = "#" * max(1, round(40 * count / peak))
        lines.append(f"{rank:>4} {name:<14} {count:>9}  {bar}")
    lines.append(f"... ({len(ranked)} shown of {config.n_datasets})")
    publish("figure2", "\n".join(lines))
    metrics = {f"requests[rank{rank:02d}]": count
               for rank, (_, count) in enumerate(ranked[:10])}
    metrics["total_requests"] = sum(c for _, c in ranked)
    metrics.update(benchmark_stats(benchmark))
    publish_json("figure2", metrics)

    counts = [c for _, c in ranked]
    # Monotone non-increasing by construction of the ranking; the real
    # check is the geometric decay against the theoretical pmf.
    assert counts == sorted(counts, reverse=True)
    model = GeometricPopularity(config.n_datasets, p=config.geometric_p)
    expected = model.expected_counts(config.n_jobs)
    # Head of the distribution within 25% of theory (6000 samples).
    for k in range(5):
        assert abs(counts[k] - expected[k]) / expected[k] < 0.25

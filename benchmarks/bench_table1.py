"""Table 1: the simulation parameters used in the study.

Regenerates the parameter table and times the workload-generation path
that realizes those parameters (datasets, placements, 6000 jobs).
"""

from repro import SimulationConfig
from repro.experiments.paper import table1_parameters
from repro.experiments.runner import make_workload

from common import benchmark_stats, publish, publish_json


def test_table1(benchmark):
    config = SimulationConfig.paper()

    workload = benchmark.pedantic(
        lambda: make_workload(config, seed=0), rounds=3, iterations=1)

    rows = table1_parameters(config)
    width = max(len(k) for k in rows) + 2
    lines = ["Table 1: Simulation parameters used in study",
             "=" * 44]
    lines += [f"{k:<{width}}{v}" for k, v in rows.items()]
    lines.append("")
    lines.append(f"materialized workload: {workload.n_jobs} jobs, "
                 f"{len(workload.datasets)} datasets, "
                 f"{len(workload.user_sites)} users")
    publish("table1", "\n".join(lines))
    publish_json("table1", {
        "workload_jobs": workload.n_jobs,
        "workload_datasets": len(workload.datasets),
        "workload_users": len(workload.user_sites),
        **{f"workload_gen_{k}": v
           for k, v in benchmark_stats(benchmark).items()},
    })

    assert rows["Total number of users"] == "120"
    assert rows["Number of Sites"] == "30"
    assert rows["Compute Elements/Site"] == "2-5"
    assert rows["Total number of Datasets"] == "200"
    assert rows["Size of Workload"] == "6000 jobs"
    assert workload.n_jobs == 6000

"""Micro-benchmarks of the discrete-event kernel.

These are true repeated-round benchmarks (unlike the one-shot paper
reproductions): event throughput, process churn, and resource contention
are the hot paths of every simulation above them.

Besides the pytest-benchmark tables, the measured numbers accumulate into
``benchmarks/results/kernel.json`` and the top-level ``BENCH_kernel.json``
— the committed performance baseline that ``benchmarks/compare.py`` diffs
across checkouts.  Each test re-publishes the accumulated record, so a
partial run updates only the metrics it measured.

Methodology note: the headline ``*_per_s`` throughputs divide the work
count by the *best* round (``min_s``), not the mean.  Shared CI runners
see preemption spikes of 100 ms and worse, which inflate a mean by
integer factors while leaving the minimum — the run with the least
interference, i.e. the closest estimate of the code's actual cost —
almost untouched (the same reasoning behind ``timeit``'s use of the best
of N).  Both ``mean_s`` and ``min_s`` are still published per metric, so
the record keeps the noise visible instead of hiding it.

Run with ``--benchmark-disable-gc`` (as CI does): a collector pause
inside a round measures the allocator's history, not the kernel —
``timeit`` disables GC for the same reason.
"""

from repro.sim import Resource, Simulator

from common import benchmark_stats, publish_json

#: Accumulates ``<test>_mean_s`` / ``<test>_per_s`` across the module's
#: tests within one pytest session.
_METRICS = {}


def _record(name: str, benchmark, work_items: int) -> None:
    """Fold one benchmark's timing into the kernel baseline record."""
    stats = benchmark_stats(benchmark)
    if not stats:  # --benchmark-disable: nothing measured
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_min_s"] = stats["min_s"]
    _METRICS[f"{name}_per_s"] = work_items / stats["min_s"]
    publish_json(
        "kernel",
        _METRICS,
        meta={"units": "per_s = work items (events/processes/acquisitions)"
                       " per second of best-round (min_s) wall-clock; "
                       "see module docstring for why not the mean"},
        higher_is_better=[k for k in _METRICS if k.endswith("_per_s")],
        top_level="BENCH_kernel.json",
    )


def test_event_throughput(benchmark):
    """Schedule-and-process throughput for bare timeouts."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(i % 97)
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 96
    _record("event_throughput", benchmark, work_items=10_000)


def test_process_churn(benchmark):
    """Spawn/finish cost for short-lived processes."""

    def run():
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            yield sim.timeout(1)

        for _ in range(2_000):
            sim.process(proc())
        sim.run()
        return sim.now

    assert benchmark(run) == 2
    _record("process_churn", benchmark, work_items=2_000)


def test_resource_contention(benchmark):
    """Many workers hammering a small resource pool."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=4)
        done = []

        def worker(i):
            with res.request() as req:
                yield req
                yield sim.timeout(1)
            done.append(i)

        for i in range(1_000):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 1_000
    _record("resource_contention", benchmark, work_items=1_000)


def test_condition_fanin(benchmark):
    """AllOf over many events (the job data-ready path)."""

    def run():
        sim = Simulator()
        events = [sim.timeout(i % 11) for i in range(3_000)]
        cond = sim.all_of(events)
        sim.run()
        return len(cond.value)

    assert benchmark(run) == 3_000
    _record("condition_fanin", benchmark, work_items=3_000)

"""Micro-benchmarks of the discrete-event kernel.

These are true repeated-round benchmarks (unlike the one-shot paper
reproductions): event throughput, process churn, and resource contention
are the hot paths of every simulation above them.
"""

from repro.sim import Resource, Simulator


def test_event_throughput(benchmark):
    """Schedule-and-process throughput for bare timeouts."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(i % 97)
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 96


def test_process_churn(benchmark):
    """Spawn/finish cost for short-lived processes."""

    def run():
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            yield sim.timeout(1)

        for _ in range(2_000):
            sim.process(proc())
        sim.run()
        return sim.now

    assert benchmark(run) == 2


def test_resource_contention(benchmark):
    """Many workers hammering a small resource pool."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=4)
        done = []

        def worker(i):
            with res.request() as req:
                yield req
                yield sim.timeout(1)
            done.append(i)

        for i in range(1_000):
            sim.process(worker(i))
        sim.run()
        return len(done)

    assert benchmark(run) == 1_000


def test_condition_fanin(benchmark):
    """AllOf over many events (the job data-ready path)."""

    def run():
        sim = Simulator()
        events = [sim.timeout(i % 11) for i in range(3_000)]
        cond = sim.all_of(events)
        sim.run()
        return len(cond.value)

    assert benchmark(run) == 3_000

"""Extension bench: the paper's §6 adaptive-scheduler sketch.

"Slow links and large datasets might imply scheduling the jobs at the data
source ...; if the data is small and network links are not congested,
moving the data to the job source ... might be viable."  JobAdaptive
switches per job; it should track the better of JobLocal / JobDataPresent
across both bandwidth scenarios.
"""

import random

from repro import SimulationConfig, make_workload, run_single
from repro.experiments.runner import build_grid
from repro.metrics import RunMetrics
from repro.network import BandwidthHistory, NWSForecaster
from repro.scheduling import AdaptiveExternalScheduler

from common import flatten_metrics, publish, publish_json


def run_nws_informed(config, seed=0):
    """JobAdaptive fed by measured NWS-style bandwidth forecasts."""
    workload = make_workload(config, seed)
    sim, grid = build_grid(config, "JobAdaptive", "DataLeastLoaded",
                           workload, seed)
    history = BandwidthHistory()
    history.attach(grid.transfers)
    grid.external_scheduler = AdaptiveExternalScheduler(
        random.Random(seed), forecaster=NWSForecaster(history))
    makespan = grid.run()
    return RunMetrics.from_grid(grid, makespan)


def test_adaptive_scheduler(benchmark):
    def sweep():
        out = {}
        for bw in (10.0, 100.0):
            config = SimulationConfig.paper(bandwidth_mbps=bw)
            for es in ("JobLocal", "JobDataPresent", "JobAdaptive"):
                out[(bw, es)] = run_single(config, es, "DataLeastLoaded",
                                           seed=0)
            out[(bw, "JobAdaptive+NWS")] = run_nws_informed(config)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Extension: adaptive external scheduler (DS=DataLeastLoaded)",
             "=" * 60,
             f"{'bandwidth':>10}  {'scheduler':<18}{'resp(s)':>9}"
             f"{'MB/job':>9}"]
    for (bw, es), m in sorted(results.items()):
        lines.append(f"{bw:>8.0f}  {es:<18}{m.avg_response_time_s:>9.1f}"
                     f"{m.avg_data_transferred_mb:>9.1f}")
    publish("adaptive", "\n".join(lines))
    publish_json("adaptive", flatten_metrics(
        results, ("avg_response_time_s", "avg_data_transferred_mb")))

    for bw in (10.0, 100.0):
        best_fixed = min(results[(bw, "JobLocal")].avg_response_time_s,
                         results[(bw, "JobDataPresent")].avg_response_time_s)
        # Both adaptive variants must be competitive with the better
        # fixed policy in each regime.
        for variant in ("JobAdaptive", "JobAdaptive+NWS"):
            assert (results[(bw, variant)].avg_response_time_s
                    <= best_fixed * 1.30)

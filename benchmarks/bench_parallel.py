"""Benchmark of the parallel experiment engine (serial vs fan-out).

Runs the same scaled-down algorithm matrix twice — serial and with
worker processes — and checks the engine's two contracts:

* **determinism**: the parallel result is bitwise-identical to the
  serial one (exact float equality, every metric, every run);
* **speedup**: on a multi-core machine the fan-out actually pays for
  its process overhead (asserted only when ≥4 cores are available —
  single-core CI still verifies determinism and records both times).

Wall-clocks and the speedup land in ``benchmarks/results/parallel.json``.
"""

import dataclasses
import os
import time

from repro import SimulationConfig, run_matrix

from common import publish, publish_json

#: Matrix scale for the timing comparison: big enough that each run takes
#: an appreciable fraction of a second, small enough for quick CI.
SCALE = 0.25
SEEDS = (0, 1)
JOBS = 4


def _matrix_runs(result):
    """All per-run metrics as comparable dicts, in deterministic order."""
    return [
        dataclasses.asdict(m)
        for key in sorted(result.runs)
        for m in result.runs[key]
    ]


def test_parallel_matrix(benchmark):
    config = SimulationConfig.paper().scaled(SCALE)

    t0 = time.perf_counter()
    serial = run_matrix(config, seeds=SEEDS, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_matrix(config, seeds=SEEDS, jobs=JOBS),
        rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    n_runs = sum(len(runs) for runs in serial.runs.values())

    publish("parallel", "\n".join([
        "Parallel experiment engine: serial vs process fan-out",
        "=" * 54,
        f"matrix: 4 ES x 3 DS x {len(SEEDS)} seeds = {n_runs} runs "
        f"at scale {SCALE:g}",
        f"{'serial (jobs=1)':<24}{serial_s:>8.2f} s",
        f"{f'parallel (jobs={JOBS})':<24}{parallel_s:>8.2f} s",
        f"{'speedup':<24}{speedup:>8.2f} x   ({cores} core(s))",
        "results bitwise-identical: True",
    ]))
    publish_json("parallel", {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "jobs": JOBS,
        "cores": cores,
        "n_runs": n_runs,
    }, higher_is_better=["speedup", "jobs", "cores"])

    # The determinism contract holds everywhere, unconditionally.
    assert _matrix_runs(parallel) == _matrix_runs(serial)
    # The speedup claim needs real cores to be meaningful; process
    # startup makes fan-out a net loss on one core.
    if cores >= 4:
        assert speedup >= 2.0, (
            f"jobs={JOBS} gave only {speedup:.2f}x on {cores} cores")

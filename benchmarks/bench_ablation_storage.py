"""Ablation: per-site storage capacity.

The paper gives sites "a limited amount of storage" without a number.
This bench sweeps capacity from barely-fits to effectively-infinite and
shows (a) cache pressure hurts the data-movement-heavy algorithms far
more than JobDataPresent, and (b) our 50 GB default sits on the flat part
of the curve, so the headline comparison is not a storage artifact.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json

CAPACITIES_GB = (15.0, 25.0, 50.0, 100.0, 1000.0)


def test_ablation_storage(benchmark):
    config = SimulationConfig.paper()

    def sweep():
        out = {}
        for gb in CAPACITIES_GB:
            cfg = config.with_(storage_capacity_mb=gb * 1000)
            out[(gb, "JobLocal")] = run_single(
                cfg, "JobLocal", "DataDoNothing", seed=0)
            out[(gb, "JobDataPresent")] = run_single(
                cfg, "JobDataPresent", "DataRandom", seed=0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: per-site storage capacity",
             "=" * 56,
             f"{'GB/site':>8}  {'configuration':<28}{'resp(s)':>9}"
             f"{'MB/job':>9}{'evictions':>10}"]
    for (gb, es), m in sorted(results.items(), key=lambda kv: kv[0][0]):
        label = ("JobLocal+DataDoNothing" if es == "JobLocal"
                 else "JobDataPresent+DataRandom")
        lines.append(f"{gb:>8g}  {label:<28}{m.avg_response_time_s:>9.1f}"
                     f"{m.avg_data_transferred_mb:>9.1f}"
                     f"{m.evictions:>10}")
    publish("ablation_storage", "\n".join(lines))
    publish_json("ablation_storage", flatten_metrics(
        results, ("avg_response_time_s", "avg_data_transferred_mb",
                  "evictions")))

    # Cache pressure (15 GB) hurts the coupled baseline much more than
    # the decoupled winner.
    coupled_hit = (results[(15.0, "JobLocal")].avg_response_time_s
                   / results[(1000.0, "JobLocal")].avg_response_time_s)
    decoupled_hit = (
        results[(15.0, "JobDataPresent")].avg_response_time_s
        / results[(1000.0, "JobDataPresent")].avg_response_time_s)
    assert coupled_hit > decoupled_hit
    # The 50 GB default is within 10% of infinite storage for both.
    for es in ("JobLocal", "JobDataPresent"):
        ratio = (results[(50.0, es)].avg_response_time_s
                 / results[(1000.0, es)].avg_response_time_s)
        assert ratio < 1.10
    # The decoupled combination wins at every capacity.
    for gb in CAPACITIES_GB:
        assert (results[(gb, "JobDataPresent")].avg_response_time_s
                < results[(gb, "JobLocal")].avg_response_time_s)

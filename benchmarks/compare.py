"""Diff two benchmark JSON records and flag regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Both files are :func:`common.publish_json` records (e.g. a committed
``BENCH_kernel.json`` against a freshly generated
``benchmarks/results/kernel.json``).  Metrics present in both files are
compared; a metric regresses when it moves in the *bad* direction by more
than ``--threshold`` (default 10%).  Direction comes from the records'
``higher_is_better`` lists, falling back to a name heuristic
(``*_per_s``/``*speedup``/``*gain`` are higher-is-better, everything
else — times, MB moved, idle %, spreads — lower-is-better).

Exit status: 0 = no regressions, 1 = regressions found, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

#: Metric-name suffixes treated as higher-is-better when the record
#: itself doesn't say.
_HIGHER_SUFFIXES = ("_per_s", "speedup", "gain")


def load_record(path: str) -> dict:
    """Read one publish_json record, validating the pieces compare uses."""
    with open(path) as handle:
        record = json.load(handle)
    if not isinstance(record.get("metrics"), dict):
        raise ValueError(f"{path}: not a benchmark record "
                         "(missing 'metrics' object)")
    return record


def higher_is_better(name: str, *records: dict) -> bool:
    for record in records:
        if name in record.get("higher_is_better", ()):
            return True
    base = name.split("[", 1)[0]
    return base.endswith(_HIGHER_SUFFIXES)


def compare(baseline: dict, current: dict,
            threshold: float) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for two records."""
    old_metrics = baseline["metrics"]
    new_metrics = current["metrics"]
    shared = sorted(set(old_metrics) & set(new_metrics))
    lines: List[str] = []
    regressions: List[str] = []
    width = max((len(name) for name in shared), default=10)
    for name in shared:
        old, new = float(old_metrics[name]), float(new_metrics[name])
        if old == 0.0:
            change = 0.0 if new == 0.0 else float("inf")
        else:
            change = (new - old) / abs(old)
        better = higher_is_better(name, current, baseline)
        regressed = (-change if better else change) > threshold
        arrow = "WORSE" if regressed else ""
        lines.append(f"{name:<{width}}  {old:>14.6g} -> {new:>14.6g}  "
                     f"{change:>+8.1%}  {arrow}")
        if regressed:
            overshoot = (-change if better else change) - threshold
            regressions.append(
                f"{name}: {old:.6g} -> {new:.6g} "
                f"({change:+.1%}, {'higher' if better else 'lower'} "
                f"is better; exceeds the {threshold:.0%} gate "
                f"by {overshoot:.1%})")
    for name in sorted(set(old_metrics) ^ set(new_metrics)):
        side = "baseline" if name in old_metrics else "current"
        lines.append(f"{name:<{width}}  (only in {side})")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two benchmark JSON records.")
    parser.add_argument("baseline", help="reference record (old)")
    parser.add_argument("current", help="record under test (new)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change counted as a regression "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args(argv)

    try:
        baseline = load_record(args.baseline)
        current = load_record(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    lines, regressions = compare(baseline, current, args.threshold)
    print(f"comparing {args.baseline} (baseline) vs "
          f"{args.current} (current), threshold {args.threshold:.0%}")
    for line in lines:
        print(line)
    if regressions:
        # Name every breaching metric explicitly, on stdout for the
        # rendered report and on stderr so CI log scrapers and humans
        # skimming a failed job see exactly which gate tripped.
        print(f"\n{len(regressions)} metric(s) breached the "
              f"{args.threshold:.0%} regression gate:")
        for regression in regressions:
            print(f"  BREACH {regression}")
            print(f"BREACH {regression}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

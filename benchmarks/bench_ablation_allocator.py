"""Ablation: the paper's equal-share contention model vs true max-min.

DESIGN.md calls out the transfer-rate allocator as a modelling choice; this
bench shows the headline conclusions are insensitive to it.
"""

from repro import SimulationConfig, run_single

from common import flatten_metrics, publish, publish_json


def test_ablation_allocator(benchmark):
    config = SimulationConfig.paper()

    def sweep():
        out = {}
        for allocator in ("equal-share", "max-min"):
            cfg = config.with_(allocator=allocator)
            out[allocator] = {
                "JobLocal+DataDoNothing": run_single(
                    cfg, "JobLocal", "DataDoNothing", seed=0),
                "JobDataPresent+DataRandom": run_single(
                    cfg, "JobDataPresent", "DataRandom", seed=0),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: transfer-rate allocator",
             "=" * 48,
             f"{'allocator':<14}{'configuration':<28}{'resp(s)':>9}"
             f"{'MB/job':>9}"]
    for allocator, rows in results.items():
        for label, m in rows.items():
            lines.append(f"{allocator:<14}{label:<28}"
                         f"{m.avg_response_time_s:>9.1f}"
                         f"{m.avg_data_transferred_mb:>9.1f}")
    publish("ablation_allocator", "\n".join(lines))
    flat = {(allocator, label): m
            for allocator, rows in results.items()
            for label, m in rows.items()}
    publish_json("ablation_allocator", flatten_metrics(
        flat, ("avg_response_time_s", "avg_data_transferred_mb",
               "makespan_s")))

    # The decoupled winner stays the winner under both allocators.
    for allocator in results:
        assert (results[allocator]["JobDataPresent+DataRandom"]
                .avg_response_time_s <
                results[allocator]["JobLocal+DataDoNothing"]
                .avg_response_time_s)
    # Max-min never wastes capacity, so it cannot be slower overall.
    assert (results["max-min"]["JobLocal+DataDoNothing"].makespan_s <=
            results["equal-share"]["JobLocal+DataDoNothing"].makespan_s
            * 1.05)

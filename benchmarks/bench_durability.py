"""Micro-benchmarks of the data-durability layer.

Durability rides along on every read once armed — a checksum
verification per local hit and per delivery, a scrubber sweep over all
resident replicas at each period, and catalog-listener bookkeeping on
every (de)registration.  Its cost is measured four ways: the
durability-off baseline every default run pays (the
zero-cost-when-off claim), the same workload with verification and the
scrubber armed, a repair churn loop exercising the re-replication
path end to end, and the per-read verification path in isolation.

The numbers accumulate into ``benchmarks/results/durability.json`` and
the top-level ``BENCH_durability.json`` — the committed baseline that
``benchmarks/compare.py`` gates in CI.
"""

import random

from repro.grid import DataGrid, Dataset, DatasetCollection, Job
from repro.grid.durability import DurabilityPolicy
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLeastLoaded
from repro.sim import Simulator

from common import benchmark_stats, publish_json

_METRICS = {}

N_JOBS = 400
N_REPAIRS = 200
N_VERIFICATIONS = 50_000

SCRUBBED = DurabilityPolicy(scrub_interval_s=60.0)
RF2 = DurabilityPolicy(replication_factor=2, repair=True)


def _record(name: str, benchmark, work_items: int) -> None:
    """Fold one benchmark's timing into the durability baseline record."""
    stats = benchmark_stats(benchmark)
    if not stats:  # --benchmark-disable: nothing measured
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_min_s"] = stats["min_s"]
    _METRICS[f"{name}_per_s"] = work_items / stats["mean_s"]
    publish_json(
        "durability",
        _METRICS,
        meta={"units": "per_s = work items (completed jobs/repairs/"
                       "verifications) per second of mean wall-clock"},
        higher_is_better=[k for k in _METRICS if k.endswith("_per_s")],
        top_level="BENCH_durability.json",
    )


def _make_grid(policy, seed_everywhere=True):
    sim = Simulator()
    topology = Topology.star(8, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLeastLoaded(random.Random(1)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=50_000,
        datamover_rng=random.Random(0),
        durability_policy=policy,
        durability_rng=random.Random(0) if policy is not None else None,
    )
    grid.place_initial_replicas({"d0": "site00"})
    if seed_everywhere:
        # d0 everywhere: every fetch is a local hit, so what's measured
        # is the layer's per-read bookkeeping, not transfer time.
        d0 = datasets.get("d0")
        for name in topology.sites:
            if name != "site00":
                grid.storages[name].add(d0, 0.0)
                grid.catalog.register("d0", name, size_mb=d0.size_mb)
    return sim, grid


def _run_workload(policy):
    """Complete N_JOBS short uniform jobs on a clean 8-site grid."""
    sim, grid = _make_grid(policy)
    done = [grid.submit(Job(i, "user", "site00", ["d0"], 50.0))
            for i in range(N_JOBS)]
    sim.run(until=sim.all_of(done))
    return grid


def test_run_baseline(benchmark):
    """Durability layer absent: the cost every default run pays."""
    grid = benchmark(_run_workload, None)
    assert grid.durability is None
    assert len(grid.completed_jobs) == N_JOBS
    _record("run_baseline", benchmark, work_items=N_JOBS)


def test_run_scrubber_armed(benchmark):
    """Checksum-per-read plus a 60 s scrubber on a clean grid.

    Nothing is ever corrupt, so every verification and every sweep is
    bookkeeping — the steady-state tax integrity checking charges.
    """
    grid = benchmark(_run_workload, SCRUBBED)
    durability = grid.durability
    assert durability is not None
    assert durability.stats.verifications > 0
    assert durability.stats.scrub_passes > 0
    assert durability.stats.replicas_quarantined == 0
    assert len(grid.completed_jobs) == N_JOBS
    _record("run_scrubber_armed", benchmark, work_items=N_JOBS)


def test_repair_churn(benchmark):
    """The re-replication path end to end: lose a copy, repair it back.

    One primary, RF=2: the audit creates the second copy, then the
    driver destroys the non-primary copy N_REPAIRS times and waits for
    the RepairManager to restore the factor after each loss.
    """

    def run():
        sim, grid = _make_grid(RF2, seed_everywhere=False)
        durability = grid.durability

        def driver():
            while grid.catalog.replica_count("d0") < 2:
                yield sim.timeout(60.0)
            for _ in range(N_REPAIRS):
                extra = [s for s in grid.catalog.locations("d0")
                         if s != "site00"][0]
                durability.lose_replica(extra, "d0")
                while grid.catalog.replica_count("d0") < 2:
                    yield sim.timeout(60.0)

        process = sim.process(driver(), name="churn")
        sim.run(until=process)
        return durability

    durability = benchmark(run)
    assert durability.stats.replicas_repaired == N_REPAIRS + 1
    assert durability.stats.replicas_lost == N_REPAIRS
    assert durability.stats.datasets_lost == 0
    _record("repair_churn", benchmark, work_items=N_REPAIRS)


def test_verification_path(benchmark):
    """The per-read checksum check in isolation, on a clean copy."""
    _, grid = _make_grid(SCRUBBED)
    durability = grid.durability

    def run():
        for _ in range(N_VERIFICATIONS):
            durability.verify_local("site01", "d0")
        return durability

    durability = benchmark(run)
    assert durability.stats.replicas_quarantined == 0
    _record("verification_path", benchmark, work_items=N_VERIFICATIONS)

"""Micro-benchmarks of the tracing layer.

The tracing contract is "free when off, cheap when on": every emission
site in the grid is guarded by a single ``tracer is not None`` attribute
check, so a disabled tracer must cost nothing measurable, and an enabled
one must stay far from the simulation hot path.  These benchmarks pin
the three costs that matter:

* the disabled-tracer guard itself (the only overhead untraced runs pay);
* raw ``Tracer.emit`` throughput with detail kwargs;
* ``of_kind`` lookups, which are index-backed and must not re-scan.

Numbers accumulate into ``benchmarks/results/trace.json`` following the
same schema as the kernel baseline.
"""

from repro.sim.trace import Tracer

from common import benchmark_stats, publish_json

_METRICS = {}


def _record(name: str, benchmark, work_items: int) -> None:
    stats = benchmark_stats(benchmark)
    if not stats:  # --benchmark-disable: nothing measured
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_min_s"] = stats["min_s"]
    _METRICS[f"{name}_per_s"] = work_items / stats["mean_s"]
    publish_json(
        "trace",
        _METRICS,
        meta={"units": "per_s = work items (guard checks/emissions/lookups)"
                       " per second of mean wall-clock"},
        higher_is_better=[k for k in _METRICS if k.endswith("_per_s")],
    )


def test_disabled_guard_overhead(benchmark):
    """The ``tracer is not None`` check untraced hot paths pay."""

    class Host:
        tracer = None

    host = Host()

    def run():
        hits = 0
        for _ in range(100_000):
            if host.tracer is not None:
                hits += 1
        return hits

    assert benchmark(run) == 0
    _record("disabled_guard", benchmark, work_items=100_000)


def test_emit_throughput(benchmark):
    """Raw emission rate with representative detail kwargs."""

    def run():
        tracer = Tracer()
        for i in range(20_000):
            tracer.emit(float(i), "transfer.done", src="site00",
                        dst="site01", size_mb=500.0, purpose="fetch",
                        dataset=f"ds{i % 24}")
        return len(tracer.records)

    assert benchmark(run) == 20_000
    _record("emit", benchmark, work_items=20_000)


def test_filtered_emit_throughput(benchmark):
    """Emission rate when a kinds filter rejects most records."""

    def run():
        tracer = Tracer(kinds=["job.finish"])
        for i in range(20_000):
            tracer.emit(float(i), "transfer.done", src="site00",
                        dst="site01")
        return len(tracer.records)

    assert benchmark(run) == 0
    _record("filtered_emit", benchmark, work_items=20_000)


def test_of_kind_lookup(benchmark):
    """Index-backed kind lookups against a populated tracer."""

    tracer = Tracer()
    kinds = ["job.submit", "job.finish", "transfer.start", "transfer.done"]
    for i in range(20_000):
        tracer.emit(float(i), kinds[i % 4], job=f"job{i}")

    def run():
        total = 0
        for _ in range(1_000):
            total += len(tracer.of_kind("transfer.done"))
        return total

    assert benchmark(run) == 1_000 * 5_000
    _record("of_kind_lookup", benchmark, work_items=1_000)

"""Micro-benchmarks of the overload-protection hot paths.

Admission control sits on ``DataGrid.submit`` — the one call every job
takes whether the grid is overloaded or not — so its cost is measured
three ways: the no-policy baseline, the policy-on admission scan
(deflect/shed under a saturated grid), and the storage reservation
ledger churned by every transfer.

The numbers accumulate into ``benchmarks/results/overload.json`` and the
top-level ``BENCH_overload.json`` — the committed baseline that
``benchmarks/compare.py`` gates in CI (>10% regression on the admission
path fails the build).
"""

import random

from repro.grid import Dataset, DatasetCollection, DataGrid, Job
from repro.grid.overload import OverloadPolicy
from repro.grid.storage import StorageElement
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLeastLoaded
from repro.sim import Simulator

from common import benchmark_stats, publish_json

_METRICS = {}

N_SUBMITS = 2_000
N_LEDGER_CYCLES = 10_000


def _record(name: str, benchmark, work_items: int) -> None:
    """Fold one benchmark's timing into the overload baseline record."""
    stats = benchmark_stats(benchmark)
    if not stats:  # --benchmark-disable: nothing measured
        return
    _METRICS[f"{name}_mean_s"] = stats["mean_s"]
    _METRICS[f"{name}_min_s"] = stats["min_s"]
    _METRICS[f"{name}_per_s"] = work_items / stats["mean_s"]
    publish_json(
        "overload",
        _METRICS,
        meta={"units": "per_s = work items (submissions/ledger cycles) "
                       "per second of mean wall-clock"},
        higher_is_better=[k for k in _METRICS if k.endswith("_per_s")],
        top_level="BENCH_overload.json",
    )


def _make_grid(policy):
    sim = Simulator()
    topology = Topology.star(8, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLeastLoaded(random.Random(1)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=50_000,
        datamover_rng=random.Random(0),
        overload_policy=policy,
    )
    grid.place_initial_replicas({"d0": "site00"})
    return sim, grid


def _submit_storm(policy):
    sim, grid = _make_grid(policy)
    for i in range(N_SUBMITS):
        grid.submit(Job(i, "user", "site00", ["d0"], 1_000.0))
    return grid


def test_submit_baseline(benchmark):
    """The no-policy submit path: the cost every default run pays."""
    grid = benchmark(_submit_storm, None)
    assert len(grid.submitted_jobs) == N_SUBMITS
    _record("submit_baseline", benchmark, work_items=N_SUBMITS)


def test_admission_scan_saturated(benchmark):
    """Admission under saturation: every submit scans, deflects, sheds.

    Queues fill within the first few dozen submissions, so nearly every
    one of the 2000 walks the full deflection scan before shedding —
    the worst-case admission cost.
    """
    policy = OverloadPolicy(queue_capacity=8, deflect_budget=2)
    grid = benchmark(_submit_storm, policy)
    assert grid.overload_stats.jobs_shed > N_SUBMITS // 2
    _record("admission_scan_saturated", benchmark, work_items=N_SUBMITS)


def test_admission_uncontended(benchmark):
    """Admission with headroom: the bound is checked but never binds."""
    policy = OverloadPolicy(queue_capacity=N_SUBMITS + 1)
    grid = benchmark(_submit_storm, policy)
    assert grid.overload_stats.jobs_shed == 0
    _record("admission_uncontended", benchmark, work_items=N_SUBMITS)


def test_reservation_ledger_churn(benchmark):
    """reserve -> commit -> remove cycles on one storage element."""
    dataset = Dataset("hot", 400.0)

    def run():
        storage = StorageElement("s", 1_000.0)
        for i in range(N_LEDGER_CYCLES):
            assert storage.reserve(dataset, now=float(i))
            storage.commit_reservation(dataset, now=float(i))
            storage.remove("hot")
        return storage

    storage = benchmark(run)
    assert storage.reserved_mb == 0
    _record("reservation_ledger_churn", benchmark,
            work_items=N_LEDGER_CYCLES)

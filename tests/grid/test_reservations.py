"""Storage reservations: the ledger API and the closed overcommit race.

The latent race: two concurrent inbound transfers both pass ``can_fit``
against the same free space, both fly, and the loser either thrashes the
LRU cache or wedges in the landing retry loop.  The reservation API makes
the promise explicit — reserved MB is unavailable to every other add or
reservation — so the second transfer is refused *before* its bytes move.
"""

import random

import pytest

from repro.grid import Dataset, DatasetCollection, DataGrid, StorageElement
from repro.grid.overload import OverloadPolicy
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def ds(name, size=100):
    return Dataset(name, size)


class TestReserve:
    def test_reserve_books_space(self):
        st = StorageElement("s", 1000)
        assert st.reserve(ds("a", 600), now=0)
        assert st.reserved_mb == 600
        assert st.is_reserved("a")
        assert "a" not in st  # nothing resident yet

    def test_reserved_space_counts_as_occupied(self):
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        assert not st.can_fit(600)
        assert st.can_fit(400)

    def test_reserve_refused_when_space_is_promised(self):
        st = StorageElement("s", 1000)
        assert st.reserve(ds("a", 600), now=0)
        assert not st.reserve(ds("b", 600), now=0)
        assert st.reserved_mb == 600  # refused reservation booked nothing

    def test_reserve_is_idempotent(self):
        st = StorageElement("s", 1000)
        assert st.reserve(ds("a", 600), now=0)
        assert st.reserve(ds("a", 600), now=1)
        assert st.reserved_mb == 600

    def test_reserve_of_resident_file_is_a_noop(self):
        st = StorageElement("s", 1000)
        st.add(ds("a", 600), now=0)
        assert st.reserve(ds("a", 600), now=1)
        assert st.reserved_mb == 0

    def test_reserve_evicts_lru_to_make_room(self):
        st = StorageElement("s", 1000)
        st.add(ds("old", 800), now=0)
        assert st.reserve(ds("new", 600), now=1)
        assert "old" not in st
        assert st.evictions == 1

    def test_reserve_refused_by_pinned_files(self):
        st = StorageElement("s", 1000)
        st.add(ds("pinned", 800), now=0, pin=True)
        assert not st.reserve(ds("new", 600), now=1)
        assert "pinned" in st  # a refused reservation evicts nothing

    def test_oversized_reservation_refused(self):
        st = StorageElement("s", 1000)
        assert not st.reserve(ds("huge", 2000), now=0)


class TestReleaseAndCommit:
    def test_release_returns_the_space(self):
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        st.release_reservation("a")
        assert st.reserved_mb == 0
        assert not st.is_reserved("a")
        assert st.can_fit(1000)

    def test_release_tolerates_unknown_names(self):
        st = StorageElement("s", 1000)
        st.release_reservation("ghost")  # abort paths release blindly
        assert st.reserved_mb == 0

    def test_empty_ledger_has_zero_residue(self):
        st = StorageElement("s", 1000)
        for i, size in enumerate([0.1, 0.2, 0.7]):
            st.reserve(ds(f"f{i}", size), now=i)
        for i in range(3):
            st.release_reservation(f"f{i}")
        assert st.reserved_mb == 0.0

    def test_commit_lands_the_file_and_drops_the_hold(self):
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        st.commit_reservation(ds("a", 600), now=5)
        assert "a" in st
        assert st.used_mb == 600
        assert st.reserved_mb == 0

    def test_commit_can_pin(self):
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        st.commit_reservation(ds("a", 600), now=5, pin=True)
        assert st.is_pinned("a")

    def test_commit_never_needs_eviction(self):
        # Fill the rest of the element after reserving: the invariant
        # used + reserved <= capacity held throughout, so the commit
        # lands without touching the other resident file.
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        st.add(ds("b", 400), now=1)
        st.commit_reservation(ds("a", 600), now=2)
        assert "a" in st and "b" in st
        assert st.evictions == 0

    def test_peaks_track_high_water_marks(self):
        st = StorageElement("s", 1000)
        st.reserve(ds("a", 600), now=0)
        st.commit_reservation(ds("a", 600), now=1)
        st.remove("a")
        assert st.peak_reserved_mb == 600
        assert st.peak_used_mb == 600
        assert st.used_mb == 0


class TestOvercommitRaceRegression:
    """The satellite fix: concurrent can_fit checks can no longer both win."""

    def test_can_fit_race_is_closed(self):
        st = StorageElement("s", 1000)
        # Without reservations, both transfers would pass this check
        # against the same 1000 free MB — the latent race.
        assert st.can_fit(600)
        assert st.can_fit(600)
        # With the ledger, the first promise excludes the second.
        assert st.reserve(ds("a", 600), now=0)
        assert not st.can_fit(600)
        assert not st.reserve(ds("b", 600), now=0)

    def test_interleaved_adds_and_reserves_never_overcommit(self):
        st = StorageElement("s", 1000)
        assert st.reserve(ds("a", 400), now=0)
        st.add(ds("c", 500), now=1, pin=True)
        assert not st.reserve(ds("b", 200), now=2)  # 400 + 500 + 200 > 1000
        assert st.reserve(ds("d", 100), now=3)
        st.commit_reservation(ds("a", 400), now=4)
        assert st.used_mb + st.reserved_mb <= st.capacity_mb


def _instrument_no_overcommit(storage):
    """Record the worst used+reserved the element ever books."""
    peak = {"mb": 0.0}
    original_add = storage.add
    original_reserve = storage.reserve

    def note():
        total = storage.used_mb + storage.reserved_mb
        if total > peak["mb"]:
            peak["mb"] = total

    def add(dataset, now, pin=False):
        original_add(dataset, now, pin=pin)
        note()

    def reserve(dataset, now):
        ok = original_reserve(dataset, now)
        note()
        return ok

    storage.add = add
    storage.reserve = reserve
    return peak


class TestDataMoverReservations:
    """End-to-end: reservations keep concurrent fetches honest."""

    def make_grid(self, policy):
        sim = Simulator()
        topology = Topology.star(3, 10.0)
        datasets = DatasetCollection([
            Dataset("a", 600),
            Dataset("b", 600),
        ])
        grid = DataGrid.create(
            sim=sim,
            topology=topology,
            datasets=datasets,
            external_scheduler=JobLocal(),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataDoNothing(),
            site_processors={name: 2 for name in topology.sites},
            storage_capacity_mb=1000,
            datamover_rng=random.Random(0),
            overload_policy=policy,
        )
        grid.place_initial_replica("a", "site01")
        grid.place_initial_replica("b", "site02")
        return sim, grid

    def test_concurrent_fetches_into_tight_storage_stay_bounded(self):
        # Two simultaneous 600 MB pinned fetches into a 1000 MB element:
        # without the ledger both pass can_fit and both fly.  With it,
        # the second transfer is refused space until the first job is
        # done and its input evictable; used + reserved never exceeds
        # capacity at any instant.
        policy = OverloadPolicy(storage_reservations=True,
                                remote_read_after=0)
        sim, grid = self.make_grid(policy)
        peak = _instrument_no_overcommit(grid.storages["site00"])
        fetch_a = grid.datamover.ensure_local("site00", "a", pin=True)
        fetch_b = grid.datamover.ensure_local("site00", "b", pin=True)
        sim.run(until=fetch_a)
        grid.storages["site00"].unpin("a")  # the "job" finished
        sim.run(until=fetch_b)
        assert peak["mb"] <= 1000 + 1e-6
        storage = grid.storages["site00"]
        assert "b" in storage
        assert storage.reserved_mb == 0  # every hold released
        assert storage.used_mb <= storage.capacity_mb

    def test_reservation_released_when_fetch_is_killed(self):
        policy = OverloadPolicy(storage_reservations=True)
        sim, grid = self.make_grid(policy)
        storage = grid.storages["site00"]
        fetch = grid.datamover.ensure_local("site00", "a", pin=True)
        # Let the transfer start (reservation booked, bytes in flight).
        sim.run(until=sim.timeout(1.0))
        assert storage.reserved_mb == 600
        fetch.callbacks.append(lambda ev: ev.defuse())
        fetch.interrupt("test abort")
        sim.run()
        assert storage.reserved_mb == 0
        assert not storage.is_reserved("a")

    def test_best_effort_fetch_gives_up_instead_of_waiting(self):
        policy = OverloadPolicy(storage_reservations=True)
        sim, grid = self.make_grid(policy)
        storage = grid.storages["site00"]
        filler = Dataset("filler", 1000)
        grid.datasets.add(filler)
        storage.add(filler, now=0.0, pin=True)
        moved = grid.datamover.ensure_local("site00", "a", pin=False,
                                            best_effort=True)
        assert sim.run(until=moved) == 0.0
        assert storage.reserved_mb == 0

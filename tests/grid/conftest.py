"""Shared fixtures for grid-layer tests: a small, fully wired grid."""

import random

import pytest

from repro.grid import DataGrid, Dataset, DatasetCollection
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


@pytest.fixture
def small_grid():
    """A 4-site star grid with 3 datasets, JobLocal/FIFO/DataDoNothing.

    Layout: every site has 2 processors and 10 GB of storage; dataset dN
    (N×500 MB) initially lives at siteN.
    """
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
        Dataset("d2", 1500),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
    )
    grid.place_initial_replicas(
        {"d0": "site00", "d1": "site01", "d2": "site02"})
    return sim, grid

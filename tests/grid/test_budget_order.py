"""Depletion order of the two dispatch budgets.

A job owns two independent recovery budgets: *bounces* (stale-info
misdirection re-dispatches, spent synchronously at hand-off time) and
*retries* (killed execution attempts, spent across simulated time).
These tests pin their ordering contract:

* within one dispatch, the bounce budget is consulted (and spent)
  before the attempt even starts — so every bounce of a job precedes
  its first retry;
* the pools never borrow from each other: exhausting retries leaves
  unspent bounces unspent, and a zero bounce budget leaves the full
  retry budget available.
"""

import random

from repro.faults import FaultPlan, SiteOutage
from repro.grid import DataGrid, Dataset, DatasetCollection, InfoPolicy, Job
from repro.grid.lifecycle import JobState
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler
from repro.scheduling.external import JobDataPresent
from repro.sim import Simulator
from repro.sim.trace import Tracer

MAX_RETRIES = 3


def make_grid(bounce_budget, tracer=None, outage_start=50.0):
    """Stale catalog + a permanent outage of the real replica holder.

    d0's only replica lives at site00, which dies at ``outage_start``
    and never recovers — so every post-outage attempt starves on data
    and burns one retry, until the retry budget is gone.
    """
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500), Dataset("df", 1)])
    plan = FaultPlan(
        site_outages=[SiteOutage("site00", outage_start)],  # permanent
        job_max_retries=MAX_RETRIES,
        redispatch_delay_s=5.0,
    )
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobDataPresent(random.Random(0)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        info_policy=InfoPolicy(catalog_delay_s=200.0,
                               bounce_budget=bounce_budget),
        fault_plan=plan,
        fault_rng=random.Random(0),
        tracer=tracer,
    )
    grid.place_initial_replicas({"d0": "site00", "df": "site00"})
    return sim, grid


def install_phantom(sim, grid, dataset="d0", site="site03"):
    """Advertise a replica at ``site`` that the live catalog lost."""
    ds = grid.datasets.get(dataset)
    grid.storages[site].add(ds, sim.now)
    grid.catalog.register(dataset, site, size_mb=ds.size_mb)
    grid.info.replica_view.sync_all()
    grid.storages[site].remove(dataset)
    grid.catalog.deregister(dataset, site)


def occupy(grid, site, n, start_id=1000):
    for i in range(n):
        # Fillers read a different dataset so they can't consume the
        # phantom's bounce (reconciliation scrubs it after first use).
        grid.submit(Job(job_id=start_id + i, user="filler",
                        origin_site=site, input_files=["df"],
                        runtime_s=100_000))


class TestDepletionOrder:
    def test_bounces_deplete_before_the_first_retry(self):
        tracer = Tracer()
        sim, grid = make_grid(bounce_budget=2, tracer=tracer)
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=100)
        done = grid.submit(job)
        sim.run(until=done)
        # One phantom = one bounce, spent at dispatch; the outage then
        # ate the whole retry budget.
        assert job.bounces == 1
        assert job.state is JobState.FAILED
        assert job.retries == MAX_RETRIES
        records = [r for r in tracer.records
                   if r.detail.get("job") == job.job_id
                   and r.kind in ("job.bounced", "job.retry")]
        kinds = [r.kind for r in records]
        assert "job.bounced" in kinds and "job.retry" in kinds
        # Every bounce strictly precedes the first retry: the bounce
        # budget is consulted at hand-off, before the attempt can fail.
        first_retry = kinds.index("job.retry")
        assert all(kind == "job.retry" for kind in kinds[first_retry:])
        bounce_times = [r.time for r in records if r.kind == "job.bounced"]
        retry_times = [r.time for r in records if r.kind == "job.retry"]
        assert max(bounce_times) < min(retry_times)

    def test_retry_exhaustion_leaves_bounce_budget_unspent(self):
        sim, grid = make_grid(bounce_budget=5)
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=100)
        done = grid.submit(job)
        sim.run(until=done)
        assert job.state is JobState.FAILED
        assert job.retries == MAX_RETRIES
        # One phantom = one bounce; burning every retry consumed no more
        # of the bounce budget (the pools are independent).
        assert job.bounces == 1

    def test_zero_bounce_budget_keeps_full_retry_budget(self):
        sim, grid = make_grid(bounce_budget=0, outage_start=20.0)
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=100)
        done = grid.submit(job)
        sim.run(until=done)
        assert job.state is JobState.FAILED
        assert job.retries == MAX_RETRIES
        assert job.bounces == 0

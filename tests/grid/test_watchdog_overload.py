"""Watchdog overload invariants: clean saturated runs, seeded corruptions.

The three overload invariants (queue-bounded, no-overcommit,
no-starvation) only matter when an :class:`OverloadPolicy` is active, so
they get their own corruption suite: each test hand-breaks exactly one
law on an overloaded grid and asserts the watchdog names it.
"""

import random

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.grid import Dataset, DatasetCollection, DataGrid, Job
from repro.grid.overload import OverloadPolicy
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.scheduling.local import DataAwareFIFOScheduler
from repro.sim import Simulator
from repro.watchdog import InvariantViolation, attach


def make_grid(policy, local_scheduler=None):
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=local_scheduler or FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 1 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        overload_policy=policy,
    )
    grid.place_initial_replicas({"d0": "site00"})
    return sim, grid


def submit(grid, job_id, runtime_s=100.0):
    job = Job(job_id, f"user{job_id}", "site00", ["d0"], runtime_s)
    grid.submit(job)
    return job


def expect_violation(grid, invariant):
    with pytest.raises(InvariantViolation) as err:
        grid.watchdog.check_now()
    assert err.value.invariant == invariant
    return err.value


class TestCleanOverloadedRun:
    def test_saturated_full_run_passes_every_check(self):
        config = SimulationConfig.paper().scaled(0.02).with_(
            watchdog=True,
            queue_capacity=4,
            deflect_budget=2,
            job_deadline_s=4_000.0,
            storage_reservations=True,
            arrival_rate_per_s=0.3,
        )
        workload = make_workload(config, seed=0)
        sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                               workload, seed=0)
        grid.run()
        assert grid.watchdog is not None
        grid.watchdog.check_now()
        # The run actually saturated — the invariants were exercised,
        # not vacuously true.
        stats = grid.overload_stats
        assert stats.jobs_shed + stats.jobs_expired > 0


class TestQueueBounded:
    def test_overfull_pending_queue_detected(self):
        sim, grid = make_grid(OverloadPolicy(queue_capacity=1),
                              local_scheduler=DataAwareFIFOScheduler())
        dog = attach(grid)
        job = submit(grid, 0)
        site = grid.sites["site00"]
        # Forge extra pending entries past the admission check.
        site._pending.extend(site._pending * 2)
        violation = expect_violation(grid, "queue-bounded")
        assert violation.details["site"] == "site00"

    def test_budget_overrun_detected(self):
        sim, grid = make_grid(OverloadPolicy(queue_capacity=8,
                                             deflect_budget=1))
        dog = attach(grid)
        job = submit(grid, 0)
        job.deflections = 99
        violation = expect_violation(grid, "queue-bounded")
        assert violation.details["deflections"] == 99

    def test_unbounded_policy_skips_the_check(self):
        # queue_capacity=0 means unbounded: nothing to assert.
        sim, grid = make_grid(OverloadPolicy(job_deadline_s=10_000.0),
                              local_scheduler=DataAwareFIFOScheduler())
        dog = attach(grid)
        submit(grid, 0)
        grid.sites["site00"]._pending.extend(
            grid.sites["site00"]._pending * 5)
        dog.check_now()  # no violation


class TestNoOvercommit:
    def test_ledger_mismatch_detected(self):
        sim, grid = make_grid(OverloadPolicy(storage_reservations=True))
        dog = attach(grid)
        storage = grid.storages["site01"]
        storage._reserved_mb = 5.0  # booked total with an empty ledger
        violation = expect_violation(grid, "no-overcommit")
        assert violation.details["ledger_mb"] == 0

    def test_overcommitted_element_detected(self):
        sim, grid = make_grid(OverloadPolicy(storage_reservations=True))
        dog = attach(grid)
        storage = grid.storages["site01"]
        # Forge a reservation past capacity, bypassing reserve().
        storage._reservations["huge"] = storage.capacity_mb + 1
        storage._reserved_mb += storage.capacity_mb + 1
        violation = expect_violation(grid, "no-overcommit")
        assert violation.details["capacity_mb"] == storage.capacity_mb

    def test_check_is_trivially_true_without_reservations(self):
        sim, grid = make_grid(None)
        dog = attach(grid)
        dog.check_now()


class TestNoStarvation:
    def test_starved_queued_job_detected(self):
        sim, grid = make_grid(OverloadPolicy(job_deadline_s=50.0))
        dog = attach(grid)
        submit(grid, 0, runtime_s=500.0)  # takes the one processor
        waiter = submit(grid, 1, runtime_s=500.0)
        # Forge a queue wait far past the deadline without advancing the
        # clock (so the expiry timer cannot have fired yet).
        waiter.queued_at = -1_000.0
        violation = expect_violation(grid, "no-starvation")
        assert violation.details["job"] == waiter.job_id
        assert violation.details["deadline_s"] == 50.0

    def test_fresh_waiter_passes(self):
        sim, grid = make_grid(OverloadPolicy(job_deadline_s=50.0))
        dog = attach(grid)
        submit(grid, 0, runtime_s=500.0)
        submit(grid, 1, runtime_s=500.0)
        dog.check_now()  # queued for 0 s: fine

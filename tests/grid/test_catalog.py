"""Unit tests for the replica catalog."""

import random

import pytest

from repro.grid import DatasetCollection, ReplicaCatalog
from repro.grid.files import Dataset


class TestCatalog:
    def test_register_and_locations(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.register("d", "s0")
        assert cat.locations("d") == ["s0", "s1"]  # sorted

    def test_unknown_dataset_empty(self):
        assert ReplicaCatalog().locations("ghost") == []

    def test_has_replica(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        assert cat.has_replica("d", "s1")
        assert not cat.has_replica("d", "s2")

    def test_deregister(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.deregister("d", "s1")
        assert cat.locations("d") == []

    def test_deregister_idempotent(self):
        cat = ReplicaCatalog()
        cat.deregister("d", "s1")  # no exception
        cat.register("d", "s1")
        cat.deregister("d", "s1")
        cat.deregister("d", "s1")
        assert cat.deregistrations == 1

    def test_register_same_replica_twice_counts_once(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.register("d", "s1")
        assert cat.replica_count("d") == 1

    def test_datasets_at(self):
        cat = ReplicaCatalog()
        cat.register("d2", "s1")
        cat.register("d1", "s1")
        cat.register("d3", "s2")
        assert cat.datasets_at("s1") == ["d1", "d2"]

    def test_total_replicas(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1")
        cat.register("d1", "s2")
        cat.register("d2", "s1")
        assert cat.total_replicas() == 3


class TestInitialDistribution:
    def test_every_dataset_placed(self):
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 100) for i in range(50)])
        sites = [f"s{i}" for i in range(5)]
        mapping = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(0))
        assert set(mapping) == set(datasets.names)
        assert set(mapping.values()) <= set(sites)

    def test_deterministic_for_seed(self):
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 100) for i in range(20)])
        sites = ["a", "b", "c"]
        m1 = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(5))
        m2 = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(5))
        assert m1 == m2

    def test_no_sites_rejected(self):
        datasets = DatasetCollection([Dataset("d", 100)])
        with pytest.raises(ValueError):
            ReplicaCatalog.initial_uniform_distribution(
                datasets, [], random.Random(0))

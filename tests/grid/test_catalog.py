"""Unit tests for the replica catalog."""

import random

import pytest

from repro.grid import DatasetCollection, ReplicaCatalog
from repro.grid.files import Dataset


class TestCatalog:
    def test_register_and_locations(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.register("d", "s0")
        assert cat.locations("d") == ["s0", "s1"]  # sorted

    def test_unknown_dataset_empty(self):
        assert ReplicaCatalog().locations("ghost") == []

    def test_has_replica(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        assert cat.has_replica("d", "s1")
        assert not cat.has_replica("d", "s2")

    def test_deregister(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.deregister("d", "s1")
        assert cat.locations("d") == []

    def test_deregister_idempotent(self):
        cat = ReplicaCatalog()
        cat.deregister("d", "s1")  # no exception
        cat.register("d", "s1")
        cat.deregister("d", "s1")
        cat.deregister("d", "s1")
        assert cat.deregistrations == 1

    def test_register_same_replica_twice_counts_once(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.register("d", "s1")
        assert cat.replica_count("d") == 1

    def test_datasets_at(self):
        cat = ReplicaCatalog()
        cat.register("d2", "s1")
        cat.register("d1", "s1")
        cat.register("d3", "s2")
        assert cat.datasets_at("s1") == ["d1", "d2"]

    def test_total_replicas(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1")
        cat.register("d1", "s2")
        cat.register("d2", "s1")
        assert cat.total_replicas() == 3

    def test_locations_stay_sorted_through_churn(self):
        cat = ReplicaCatalog()
        for site in ("s3", "s1", "s4", "s0", "s2"):
            cat.register("d", site)
        assert cat.locations("d") == ["s0", "s1", "s2", "s3", "s4"]
        cat.deregister("d", "s2")
        cat.deregister("d", "s0")
        assert cat.locations("d") == ["s1", "s3", "s4"]
        cat.register("d", "s2")
        assert cat.locations("d") == ["s1", "s2", "s3", "s4"]

    def test_location_set(self):
        cat = ReplicaCatalog()
        cat.register("d", "s1")
        cat.register("d", "s0")
        assert cat.location_set("d") == {"s0", "s1"}
        assert cat.location_set("ghost") == frozenset()


class TestSiteIndex:
    def test_bytes_at_tracks_sizes(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1", size_mb=100.0)
        cat.register("d2", "s1", size_mb=50.0)
        assert cat.bytes_at("s1") == 150.0
        cat.deregister("d1", "s1")
        assert cat.bytes_at("s1") == 50.0
        assert cat.bytes_at("ghost") == 0.0

    def test_bytes_present_by_site(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1", size_mb=100.0)
        cat.register("d1", "s2", size_mb=100.0)
        cat.register("d2", "s2", size_mb=30.0)
        assert cat.bytes_present_by_site(["d1", "d2"]) == {
            "s1": 100.0, "s2": 130.0}
        assert cat.bytes_present_by_site(["ghost"]) == {}

    def test_bytes_present_sizes_override(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1")  # size unknown to the catalog
        assert cat.bytes_present_by_site(["d1"]) == {"s1": 0.0}
        assert cat.bytes_present_by_site(
            ["d1"], sizes={"d1": 70.0}) == {"s1": 70.0}

    def test_duplicate_inputs_count_twice(self):
        cat = ReplicaCatalog()
        cat.register("d1", "s1", size_mb=10.0)
        assert cat.bytes_present_by_site(["d1", "d1"]) == {"s1": 20.0}


class TestInitialDistribution:
    def test_every_dataset_placed(self):
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 100) for i in range(50)])
        sites = [f"s{i}" for i in range(5)]
        mapping = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(0))
        assert set(mapping) == set(datasets.names)
        assert set(mapping.values()) <= set(sites)

    def test_deterministic_for_seed(self):
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 100) for i in range(20)])
        sites = ["a", "b", "c"]
        m1 = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(5))
        m2 = ReplicaCatalog.initial_uniform_distribution(
            datasets, sites, random.Random(5))
        assert m1 == m2

    def test_no_sites_rejected(self):
        datasets = DatasetCollection([Dataset("d", 100)])
        with pytest.raises(ValueError):
            ReplicaCatalog.initial_uniform_distribution(
                datasets, [], random.Random(0))

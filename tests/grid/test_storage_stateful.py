"""Model-based (stateful) property tests for StorageElement.

Hypothesis drives arbitrary interleavings of add/touch/pin/unpin/remove
against a simple reference model, checking after every step that the real
LRU storage agrees with the model on contents, usage, pinning, and the
capacity invariant.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.grid import Dataset, StorageElement, StorageFullError

CAPACITY = 1000.0
NAMES = [f"f{i}" for i in range(8)]
SIZES = {name: 100.0 + 50.0 * i for i, name in enumerate(NAMES)}


class StorageMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.storage = StorageElement(
            "s", CAPACITY, on_evict=lambda ds: self.evicted.append(ds.name))
        self.evicted = []
        # Reference model: name -> (size, pins, last_access)
        self.model = {}
        self.clock = 0.0

    def _tick(self):
        self.clock += 1.0
        return self.clock

    def _model_evict_for(self, size):
        """Mirror LRU eviction in the reference model."""
        def free():
            return CAPACITY - sum(s for s, _, _ in self.model.values())

        victims = sorted(
            ((la, name) for name, (sz, pins, la) in self.model.items()
             if pins == 0),
            key=lambda pair: pair[0])
        for _, name in victims:
            if free() >= size:
                break
            del self.model[name]
        return free() >= size

    @rule(name=st.sampled_from(NAMES), pin=st.booleans())
    def add(self, name, pin):
        now = self._tick()
        size = SIZES[name]
        fits = (name in self.model) or self._can_fit_model(size)
        try:
            self.storage.add(Dataset(name, size), now, pin=pin)
            assert fits, f"add({name}) succeeded but model said no room"
            if name in self.model:
                sz, pins, _ = self.model[name]
                self.model[name] = (sz, pins + (1 if pin else 0), now)
            else:
                assert self._model_evict_for(size)
                self.model[name] = (size, 1 if pin else 0, now)
        except StorageFullError:
            assert not fits, f"add({name}) failed but model had room"

    def _can_fit_model(self, size):
        free = CAPACITY - sum(s for s, _, _ in self.model.values())
        evictable = sum(
            s for s, pins, _ in self.model.values() if pins == 0)
        return size <= free + evictable

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def touch(self, data):
        name = data.draw(st.sampled_from(sorted(self.model)))
        now = self._tick()
        self.storage.touch(name, now)
        size, pins, _ = self.model[name]
        self.model[name] = (size, pins, now)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def pin(self, data):
        name = data.draw(st.sampled_from(sorted(self.model)))
        self.storage.pin(name)
        size, pins, la = self.model[name]
        self.model[name] = (size, pins + 1, la)

    @precondition(lambda self: any(
        pins > 0 for _, pins, _ in self.model.values()))
    @rule(data=st.data())
    def unpin(self, data):
        pinned = sorted(
            name for name, (_, pins, _) in self.model.items() if pins > 0)
        name = data.draw(st.sampled_from(pinned))
        self.storage.unpin(name)
        size, pins, la = self.model[name]
        self.model[name] = (size, pins - 1, la)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        name = data.draw(st.sampled_from(sorted(self.model)))
        self.storage.remove(name)
        del self.model[name]

    @invariant()
    def contents_agree(self):
        assert set(self.storage.files) == set(self.model)

    @invariant()
    def usage_agrees(self):
        expected = sum(s for s, _, _ in self.model.values())
        assert abs(self.storage.used_mb - expected) < 1e-9

    @invariant()
    def capacity_never_exceeded(self):
        assert self.storage.used_mb <= CAPACITY + 1e-9

    @invariant()
    def pins_agree(self):
        for name, (_, pins, _) in self.model.items():
            assert self.storage.is_pinned(name) == (pins > 0)


TestStorageStateful = StorageMachine.TestCase
TestStorageStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)

"""Unit tests for sequential user submission."""

import pytest

from repro.grid import Job, User


def make_jobs(n, origin="site00", runtime=50.0):
    return [
        Job(job_id=i, user="u0", origin_site=origin,
            input_files=["d0"], runtime_s=runtime)
        for i in range(n)
    ]


class TestUser:
    def test_submits_all_jobs(self, small_grid):
        sim, grid = small_grid
        user = User(sim, "u0", "site00", make_jobs(5), grid)
        grid.add_user(user)
        grid.run()
        assert len(user.completed) == 5
        assert user.process.value == 5

    def test_strictly_sequential(self, small_grid):
        sim, grid = small_grid
        jobs = make_jobs(4)
        user = User(sim, "u0", "site00", jobs, grid)
        grid.add_user(user)
        grid.run()
        for prev, nxt in zip(jobs[:-1], jobs[1:]):
            assert nxt.submitted_at >= prev.completed_at

    def test_think_time_inserts_gaps(self, small_grid):
        sim, grid = small_grid
        jobs = make_jobs(3)
        user = User(sim, "u0", "site00", jobs, grid, think_time_s=25.0)
        grid.add_user(user)
        grid.run()
        for prev, nxt in zip(jobs[:-1], jobs[1:]):
            assert nxt.submitted_at >= prev.completed_at + 25.0

    def test_negative_think_time_rejected(self, small_grid):
        sim, grid = small_grid
        with pytest.raises(ValueError):
            User(sim, "u0", "site00", [], grid, think_time_s=-1)

    def test_zero_jobs_user_finishes_immediately(self, small_grid):
        sim, grid = small_grid
        user = User(sim, "u0", "site00", [], grid)
        p = user.start()
        sim.run(until=p)
        assert p.value == 0

    def test_multiple_users_interleave(self, small_grid):
        sim, grid = small_grid
        u0 = User(sim, "u0", "site00", make_jobs(3), grid)
        jobs1 = [
            Job(job_id=100 + i, user="u1", origin_site="site01",
                input_files=["d1"], runtime_s=50)
            for i in range(3)
        ]
        u1 = User(sim, "u1", "site01", jobs1, grid)
        grid.add_user(u0)
        grid.add_user(u1)
        grid.run()
        assert len(u0.completed) == 3
        assert len(u1.completed) == 3

"""Unit tests for the job lifecycle and derived metrics."""

import pytest

from repro.grid import IllegalTransition, Job, JobState


def make_job(**kw):
    defaults = dict(job_id=1, user="u", origin_site="s0",
                    input_files=["f"], runtime_s=300)
    defaults.update(kw)
    return Job(**defaults)


class TestValidation:
    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            make_job(runtime_s=-1)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_job(input_files=[])

    def test_zero_runtime_allowed(self):
        assert make_job(runtime_s=0).runtime_s == 0


class TestLifecycle:
    def test_initial_state(self):
        assert make_job().state is JobState.CREATED

    def test_advance_sets_timestamps(self):
        job = make_job()
        job.advance(JobState.SUBMITTED, 10.0)
        job.advance(JobState.DISPATCHED, 11.0)
        job.advance(JobState.QUEUED, 12.0)
        job.advance(JobState.RUNNING, 20.0)
        job.advance(JobState.COMPLETED, 320.0)
        assert job.submitted_at == 10.0
        assert job.dispatched_at == 11.0
        assert job.queued_at == 12.0
        assert job.started_at == 20.0
        assert job.completed_at == 320.0

    def test_backwards_transition_rejected(self):
        job = make_job()
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 0.5)
        job.advance(JobState.QUEUED, 1.0)
        with pytest.raises(ValueError):
            job.advance(JobState.SUBMITTED, 2.0)

    def test_skipping_states_rejected(self):
        # The transition table declares every legal edge; skipping ahead
        # (CREATED -> RUNNING) is not one of them.
        job = make_job()
        with pytest.raises(IllegalTransition) as excinfo:
            job.advance(JobState.RUNNING, 5.0)
        assert excinfo.value.job_id == job.job_id
        assert excinfo.value.src is JobState.CREATED
        assert excinfo.value.dst is JobState.RUNNING
        assert job.state is JobState.CREATED


class TestDerivedMetrics:
    def _completed_job(self):
        job = make_job()
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 1.0)
        job.advance(JobState.QUEUED, 1.0)
        job.processor_at = 50.0
        job.data_ready_at = 80.0
        job.advance(JobState.RUNNING, 80.0)
        job.advance(JobState.COMPLETED, 380.0)
        return job

    def test_response_time(self):
        assert self._completed_job().response_time == 380.0

    def test_queue_time(self):
        assert self._completed_job().queue_time == 49.0

    def test_transfer_time_is_post_processor_wait(self):
        assert self._completed_job().transfer_time == 30.0

    def test_compute_time(self):
        assert self._completed_job().compute_time == 300.0

    def test_incomplete_job_metrics_raise(self):
        job = make_job()
        with pytest.raises(ValueError):
            _ = job.response_time
        with pytest.raises(ValueError):
            _ = job.queue_time
        with pytest.raises(ValueError):
            _ = job.transfer_time
        with pytest.raises(ValueError):
            _ = job.compute_time

    def test_ran_at_origin(self):
        job = make_job()
        job.execution_site = "s0"
        assert job.ran_at_origin
        job.execution_site = "s1"
        assert not job.ran_at_origin

"""Shared-transfer failover: waiters must never hang on a dead source.

Concurrent ``ensure_local`` calls for the same (site, dataset) share one
wire transfer.  If the source site dies mid-flight, the holder of the
shared transfer retries against an alternate replica while the waiters
stay parked on the in-flight event — these tests pin down that the
waiters are failed over with the holder (file delivered) or failed
loudly with it (no replica left), never left hanging.
"""

import random

import pytest

from repro.faults import FaultPlan, SiteOutage
from repro.grid import DataGrid, Dataset, DatasetCollection
from repro.grid.datamover import DataUnavailableError
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def make_grid(plan):
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        fault_plan=plan,
        fault_rng=random.Random(0),
    )
    # d0 starts only at site00, so the first fetch must source from there.
    grid.place_initial_replicas({"d0": "site00"})
    return sim, grid


def gather(sim, process, results, label):
    """Await a process, recording success or DataUnavailableError."""
    try:
        value = yield process
        results[label] = ("ok", value)
    except DataUnavailableError as err:
        results[label] = ("unavailable", err)


def test_waiter_fails_over_with_holder_when_source_dies():
    # site00 (the only source at t=0) dies at t=10, mid-transfer; a backup
    # replica appears at site03 at t=5.  Both the transfer holder and the
    # waiter sharing it must get the file via the alternate source.
    plan = FaultPlan(
        site_outages=[SiteOutage("site00", 10.0, 100_000.0)],
        transfer_backoff_base_s=5.0,
        transfer_backoff_cap_s=5.0,
    )
    sim, grid = make_grid(plan)

    def seed_backup():
        yield sim.timeout(5.0)
        dataset = grid.datasets.get("d0")
        grid.storages["site03"].add(dataset, sim.now)
        grid.catalog.register("d0", "site03", size_mb=dataset.size_mb)

    sim.process(seed_backup())
    holder = grid.datamover.ensure_local("site01", "d0")
    waiter = grid.datamover.ensure_local("site01", "d0")
    results = {}
    done = sim.all_of([
        sim.process(gather(sim, holder, results, "holder")),
        sim.process(gather(sim, waiter, results, "waiter")),
    ])
    sim.run(until=done)

    assert results["holder"][0] == "ok"
    assert results["waiter"][0] == "ok"
    # Exactly one of the two paid the (single) successful wire move.
    assert sorted(r[1] for r in results.values()) == [0.0, 500.0]
    assert "d0" in grid.storages["site01"]
    assert grid.datamover.transfers_failed >= 1
    assert grid.datamover.failovers >= 1
    # The retry actually sourced from the backup replica, not the corpse.
    assert sim.now > 10.0


def test_waiter_fails_loudly_when_no_replica_survives():
    # The only replica's site dies mid-transfer and nothing replaces it:
    # holder and waiter must both fail with DataUnavailableError within
    # the retry budget instead of hanging forever.
    plan = FaultPlan(
        site_outages=[SiteOutage("site00", 10.0, 100_000.0)],
        transfer_max_retries=2,
        transfer_backoff_base_s=5.0,
        transfer_backoff_cap_s=5.0,
    )
    sim, grid = make_grid(plan)
    holder = grid.datamover.ensure_local("site01", "d0")
    waiter = grid.datamover.ensure_local("site01", "d0")
    results = {}
    done = sim.all_of([
        sim.process(gather(sim, holder, results, "holder")),
        sim.process(gather(sim, waiter, results, "waiter")),
    ])
    sim.run(until=done)

    assert results["holder"][0] == "unavailable"
    assert results["waiter"][0] == "unavailable"
    assert "d0" not in grid.storages["site01"]


def test_waiter_joining_after_source_death_still_completes():
    # A late waiter that joins during the backoff window (transfer dead,
    # holder sleeping before its retry) must also be served eventually.
    plan = FaultPlan(
        site_outages=[SiteOutage("site00", 10.0, 100_000.0)],
        transfer_backoff_base_s=30.0,
        transfer_backoff_cap_s=30.0,
    )
    sim, grid = make_grid(plan)

    def seed_backup():
        yield sim.timeout(5.0)
        dataset = grid.datasets.get("d0")
        grid.storages["site03"].add(dataset, sim.now)
        grid.catalog.register("d0", "site03", size_mb=dataset.size_mb)

    sim.process(seed_backup())
    holder = grid.datamover.ensure_local("site01", "d0")

    results = {}

    def late_waiter():
        yield sim.timeout(20.0)  # source died at t=10; holder is backing off
        waiter = grid.datamover.ensure_local("site01", "d0")
        yield from gather(sim, waiter, results, "waiter")

    done = sim.all_of([
        sim.process(gather(sim, holder, results, "holder")),
        sim.process(late_waiter()),
    ])
    sim.run(until=done)

    assert results["holder"][0] == "ok"
    assert results["waiter"] == ("ok", 0.0)
    assert "d0" in grid.storages["site01"]

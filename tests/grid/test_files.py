"""Unit tests for datasets and collections."""

import random

import pytest

from repro.grid import Dataset, DatasetCollection


class TestDataset:
    def test_immutable(self):
        ds = Dataset("d", 100)
        with pytest.raises(AttributeError):
            ds.size_mb = 200

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Dataset("d", 0)

    def test_size_gb(self):
        assert Dataset("d", 1500).size_gb == pytest.approx(1.5)

    def test_equality_by_value(self):
        assert Dataset("d", 100) == Dataset("d", 100)
        assert Dataset("d", 100) != Dataset("d", 200)


class TestDatasetCollection:
    def test_add_and_get(self):
        coll = DatasetCollection()
        coll.add(Dataset("a", 10))
        assert coll.get("a").size_mb == 10
        assert "a" in coll
        assert len(coll) == 1

    def test_duplicate_rejected(self):
        coll = DatasetCollection([Dataset("a", 10)])
        with pytest.raises(ValueError):
            coll.add(Dataset("a", 20))

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            DatasetCollection().get("ghost")

    def test_names_in_insertion_order(self):
        coll = DatasetCollection([Dataset("b", 1), Dataset("a", 2)])
        assert coll.names == ["b", "a"]

    def test_total_size(self):
        coll = DatasetCollection([Dataset("a", 10), Dataset("b", 15)])
        assert coll.total_size_mb == 25

    def test_iteration(self):
        coll = DatasetCollection([Dataset("a", 1), Dataset("b", 2)])
        assert [d.name for d in coll] == ["a", "b"]


class TestUniformRandom:
    def test_count_and_size_range(self):
        coll = DatasetCollection.uniform_random(
            50, random.Random(0), min_size_mb=500, max_size_mb=2000)
        assert len(coll) == 50
        for ds in coll:
            assert 500 <= ds.size_mb <= 2000

    def test_deterministic(self):
        c1 = DatasetCollection.uniform_random(20, random.Random(7))
        c2 = DatasetCollection.uniform_random(20, random.Random(7))
        assert [d.size_mb for d in c1] == [d.size_mb for d in c2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DatasetCollection.uniform_random(0, random.Random(0))
        with pytest.raises(ValueError):
            DatasetCollection.uniform_random(
                5, random.Random(0), min_size_mb=10, max_size_mb=5)

    def test_prefix(self):
        coll = DatasetCollection.uniform_random(
            3, random.Random(0), prefix="file")
        assert coll.names == ["file0000", "file0001", "file0002"]

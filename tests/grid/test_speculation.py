"""Speculative backup execution: the straggler race, both directions.

Scenario engineering: five quick warm-up jobs build the completed-
duration sample the straggler threshold needs; a deliberately slow job
(long runtime, or a fetch stalled behind a dead link) then crosses the
threshold and gets one backup clone.  First completion wins through the
transition engine's SPECULATED edge, the loser is preempted at the same
timestamp, and the no-double-completion watchdog invariant holds.
"""

import random

import pytest

from repro.faults import FaultPlan, LinkDegradation
from repro.grid import DataGrid, Dataset, DatasetCollection, Job
from repro.grid.health import SPECULATIVE_ID_BASE, HealthPolicy
from repro.grid.lifecycle import JobState
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.watchdog import attach

SPEC = HealthPolicy(speculate_quantile=0.5, speculate_multiplier=2.0,
                    speculate_min_samples=5,
                    speculate_check_interval_s=10.0)


def make_grid(policy=SPEC, plan=None, tracer=None):
    """A 3-site star grid (site00 is the hub and holds d0)."""
    sim = Simulator()
    topology = Topology.star(3, 10.0)
    datasets = DatasetCollection([Dataset("d0", 500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        fault_plan=plan,
        fault_rng=random.Random(0) if plan is not None else None,
        health_policy=policy,
        health_rng=random.Random(0),
        tracer=tracer,
    )
    grid.place_initial_replicas({"d0": "site00"})
    return sim, grid


def warm_up(sim, grid, n=5, runtime=10.0, start_id=100):
    """Complete ``n`` quick local jobs to seed the duration sample."""
    jobs = [Job(job_id=start_id + i, user="w", origin_site="site00",
                input_files=["d0"], runtime_s=runtime) for i in range(n)]
    done = [grid.submit(job) for job in jobs]
    sim.run(until=sim.all_of(done))
    return jobs


class TestPrimaryWins:
    def run_race(self, tracer=None):
        sim, grid = make_grid(tracer=tracer)
        warm_up(sim, grid)
        straggler = Job(job_id=1, user="u", origin_site="site00",
                        input_files=["d0"], runtime_s=300)
        done = grid.submit(straggler)
        sim.run(until=done)
        return sim, grid, straggler

    def test_straggler_gets_one_backup(self):
        sim, grid, straggler = self.run_race()
        stats = grid.health.stats
        assert stats.speculative_launched == 1
        assert straggler.state is JobState.DONE

    def test_loser_clone_is_speculated_not_failed(self):
        sim, grid, straggler = self.run_race()
        clones = [j for j in grid.submitted_jobs
                  if j.speculative_of == straggler.job_id]
        assert len(clones) == 1
        clone = clones[0]
        assert clone.job_id >= SPECULATIVE_ID_BASE
        assert clone.state is JobState.SPECULATED
        assert grid.health.stats.speculative_losers == 1
        assert grid.health.stats.speculative_wasted_s > 0
        assert clone in grid.speculated_jobs

    def test_exactly_one_completion(self):
        sim, grid, straggler = self.run_race()
        family = [j for j in grid.submitted_jobs
                  if j.job_id == straggler.job_id
                  or j.speculative_of == straggler.job_id]
        done = [j for j in family if j.state is JobState.DONE]
        assert len(done) == 1

    def test_watchdog_invariants_hold(self):
        sim, grid, straggler = self.run_race()
        dog = attach(grid)
        dog.check_now()  # raises InvariantViolation on any breakage

    def test_trace_records_the_race(self):
        tracer = Tracer()
        sim, grid, straggler = self.run_race(tracer=tracer)
        kinds = [r.kind for r in tracer.records]
        assert kinds.count("job.speculated") == 1
        assert kinds.count("job.preempted_loser") == 1
        speculated = next(r for r in tracer.records
                          if r.kind == "job.speculated")
        assert speculated.detail["job"] == straggler.job_id
        assert speculated.detail["clone"] >= SPECULATIVE_ID_BASE


class TestBackupWins:
    #: site01's uplink is dead for the whole run: any fetch toward
    #: site01 stalls until the transfer timeout, far beyond the race.
    PLAN = FaultPlan(link_degradations=[
        LinkDegradation("site01", "hub", 0.0, 100_000.0, 0.0)])

    def run_race(self):
        sim, grid = make_grid(plan=self.PLAN)
        warm_up(sim, grid)
        straggler = Job(job_id=1, user="u", origin_site="site01",
                        input_files=["d0"], runtime_s=10)
        done = grid.submit(straggler)
        sim.run(until=done)
        return sim, grid, straggler

    def test_primary_loses_and_backup_completes(self):
        sim, grid, straggler = self.run_race()
        assert straggler.state is JobState.SPECULATED
        clones = [j for j in grid.submitted_jobs
                  if j.speculative_of == straggler.job_id]
        assert len(clones) == 1
        assert clones[0].state is JobState.DONE
        # The backup ran where the data lives, not at the stalled site.
        assert clones[0].execution_site != "site01"

    def test_loser_accounting(self):
        sim, grid, straggler = self.run_race()
        stats = grid.health.stats
        assert stats.speculative_launched == 1
        assert stats.speculative_losers == 1
        assert stats.speculative_wasted_s > 0
        assert straggler in grid.speculated_jobs

    def test_watchdog_invariants_hold(self):
        sim, grid, straggler = self.run_race()
        dog = attach(grid)
        dog.check_now()


class TestBoundedWaste:
    def test_each_logical_job_speculated_at_most_once(self):
        """Many scan ticks pass while the straggler is still running;
        only the first launches a backup."""
        sim, grid = make_grid()
        warm_up(sim, grid)
        straggler = Job(job_id=1, user="u", origin_site="site00",
                        input_files=["d0"], runtime_s=1000)
        done = grid.submit(straggler)
        sim.run(until=done)
        # ~100 scanner ticks happened during the straggler's runtime.
        assert grid.health.stats.speculative_launched == 1

    def test_clones_are_never_cloned(self):
        sim, grid = make_grid(plan=TestBackupWins.PLAN)
        warm_up(sim, grid)
        straggler = Job(job_id=1, user="u", origin_site="site01",
                        input_files=["d0"], runtime_s=10)
        done = grid.submit(straggler)
        sim.run(until=done)
        assert all(j.speculative_of is None or j.job_id >=
                   SPECULATIVE_ID_BASE for j in grid.submitted_jobs)
        # No clone-of-a-clone: every speculative_of names a primary.
        for job in grid.submitted_jobs:
            if job.speculative_of is not None:
                assert job.speculative_of < SPECULATIVE_ID_BASE


class TestNoFalseSpeculation:
    def test_quick_jobs_never_speculate(self):
        sim, grid = make_grid()
        warm_up(sim, grid, n=20)
        assert grid.health.stats.speculative_launched == 0

    def test_below_min_samples_never_speculates(self):
        policy = HealthPolicy(speculate_quantile=0.5,
                              speculate_min_samples=50,
                              speculate_check_interval_s=10.0)
        sim, grid = make_grid(policy=policy)
        warm_up(sim, grid)
        straggler = Job(job_id=1, user="u", origin_site="site00",
                        input_files=["d0"], runtime_s=300)
        done = grid.submit(straggler)
        sim.run(until=done)
        assert grid.health.stats.speculative_launched == 0


class TestConfigGuards:
    def test_speculation_rejected_with_dag_workloads(self):
        from repro.experiments.config import SimulationConfig

        with pytest.raises(ValueError, match="incompatible with DAG"):
            SimulationConfig.paper().with_(speculate_quantile=0.9,
                                           dag_shape="diamond")


class TestCrossValidation:
    def test_trace_agrees_with_metrics_under_speculation(self):
        from repro.experiments.runner import run_single
        from repro.trace.crossval import mismatches
        from repro.trace.golden import golden_config

        config = golden_config().with_(speculate_quantile=0.5,
                                       speculate_multiplier=1.5)
        tracer = Tracer()
        metrics = run_single(config, "JobRandom", "DataDoNothing",
                             tracer=tracer)
        assert mismatches(tracer.records, metrics) == {}

"""Unit tests for the information service (live and stale modes)."""

import random

import pytest

from repro.grid import InfoPolicy, Job
from repro.grid.info import InformationService


class TestLiveQueries:
    def test_site_names_sorted(self, small_grid):
        _, grid = small_grid
        assert grid.info.site_names == sorted(grid.sites)

    def test_site_names_cached_and_stable(self, small_grid):
        """site_names is computed once at construction, not per query."""
        _, grid = small_grid
        first = grid.info.site_names
        assert grid.info.site_names is first  # no per-call re-sort
        snapshot = list(first)
        for i in range(3):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10))
        assert grid.info.site_names == snapshot

    def test_load_of_idle_site_zero(self, small_grid):
        _, grid = small_grid
        assert grid.info.load("site00") == 0

    def test_load_counts_waiting_jobs(self, small_grid):
        sim, grid = small_grid
        # 2 processors at site00: the 3rd+ job waits.
        for i in range(5):
            job = Job(job_id=i, user="u", origin_site="site00",
                      input_files=["d0"], runtime_s=100)
            grid.submit(job)
        assert grid.info.load("site00") == 3

    def test_unknown_site_raises(self, small_grid):
        _, grid = small_grid
        with pytest.raises(KeyError):
            grid.info.load("nowhere")

    def test_loads_returns_all(self, small_grid):
        _, grid = small_grid
        loads = grid.info.loads()
        assert set(loads) == set(grid.sites)

    def test_least_loaded_prefers_min(self, small_grid):
        sim, grid = small_grid
        for i in range(4):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=100))
        # site00 now has waiting jobs; others are empty.
        assert grid.info.least_loaded() != "site00"

    def test_least_loaded_deterministic_without_rng(self, small_grid):
        _, grid = small_grid
        assert grid.info.least_loaded() == "site00"  # alphabetical tie-break

    def test_least_loaded_random_tie_break(self, small_grid):
        _, grid = small_grid
        rng = random.Random(0)
        picks = {grid.info.least_loaded(rng=rng) for _ in range(50)}
        assert len(picks) > 1  # ties spread across sites

    def test_least_loaded_candidates_subset(self, small_grid):
        _, grid = small_grid
        assert grid.info.least_loaded(["site02", "site03"]) in (
            "site02", "site03")

    def test_least_loaded_no_candidates_raises(self, small_grid):
        _, grid = small_grid
        with pytest.raises(ValueError):
            grid.info.least_loaded([])

    def test_dataset_locations_delegates_to_catalog(self, small_grid):
        _, grid = small_grid
        assert grid.info.dataset_locations("d0") == ["site00"]

    def test_sites_with_all(self, small_grid):
        _, grid = small_grid
        grid.catalog.register("d0", "site01")
        assert grid.info.sites_with_all(["d0", "d1"]) == ["site01"]
        assert grid.info.sites_with_all([]) == grid.info.site_names


class TestStaleness:
    def test_negative_interval_rejected(self, small_grid):
        sim, grid = small_grid
        with pytest.raises(ValueError):
            InformationService(sim, grid.sites, grid.catalog,
                               refresh_interval_s=-1)

    def test_stale_load_lags_reality(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        # Real load is 3, but the snapshot was taken at t=0.
        assert grid.sites["site00"].load == 3
        assert info.load("site00") == 0
        sim.run(until=150)  # refresher fired at t=100
        assert info.load("site00") == 3

    def test_stale_unknown_site_raises(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        with pytest.raises(KeyError):
            info.load("nowhere")


class TestAvailabilityFiltering:
    """Down sites must vanish from every query, even from stale caches.

    Regression tests: ``loads()`` used to return raw snapshot entries
    (including sites already marked down) and ``least_loaded`` with
    explicit candidates never consulted availability at all.
    """

    def test_loads_excludes_down_site_in_snapshot_mode(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        info.mark_site_down("site01")
        loads = info.loads()
        assert "site01" not in loads
        assert set(loads) == {"site00", "site02", "site03"}

    def test_loads_excludes_down_site_in_live_mode(self, small_grid):
        sim, grid = small_grid
        grid.info.mark_site_down("site01")
        assert "site01" not in grid.info.loads()

    def test_least_loaded_skips_down_candidate(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        info.mark_site_down("site00")
        # site00 is the alphabetical tie-winner; down it must lose.
        assert info.least_loaded(["site00", "site02"]) == "site02"

    def test_least_loaded_all_candidates_down_raises(self, small_grid):
        _, grid = small_grid
        grid.info.mark_site_down("site00")
        with pytest.raises(ValueError):
            grid.info.least_loaded(["site00"])

    def test_snapshot_survives_down_up_cycle(self, small_grid):
        """mark_site_down/up with a periodic refresher in play.

        The snapshot may be mid-interval when the outage toggles; the
        availability filter must win while down, and recovery must serve
        the (possibly stale) snapshot value again, not a half-updated
        hybrid.
        """
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        sim.run(until=150)  # snapshot refreshed at t=100: site00 load 3
        assert info.load("site00") == 3
        info.mark_site_down("site00")
        assert "site00" not in info.loads()
        assert "site00" not in info.site_names
        assert not info.is_available("site00")
        info.mark_site_up("site00")
        assert info.is_available("site00")
        assert info.loads()["site00"] == 3  # snapshot value, not a reset
        assert info.site_names == sorted(grid.sites)

    def test_mark_unknown_site_down_raises(self, small_grid):
        _, grid = small_grid
        with pytest.raises(KeyError):
            grid.info.mark_site_down("nowhere")


class TestQueryTimeoutFallback:
    def make_info(self, sim, grid, timeout_s=50.0, refresh=0.0):
        return InformationService(
            sim, grid.sites, grid.catalog,
            policy=InfoPolicy(refresh_interval_s=refresh,
                              query_timeout_s=timeout_s))

    def test_marked_site_serves_last_known(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid)
        assert info.load("site00") == 0  # records last-known
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        info.mark_stale("site00")
        assert info.load("site00") == 0  # timed-out query, cached answer
        assert info.stale_load_reads == 1
        assert grid.sites["site00"].load == 3  # reality moved on

    def test_fallback_expires_after_timeout(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid, timeout_s=50.0)
        info.load("site00")
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        info.mark_stale("site00")
        sim.run(until=60.0)  # cached record is now older than the timeout
        assert info.load("site00") == 3  # fell through to fresh state

    def test_refresh_drops_the_mark(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid)
        info.load("site00")
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        info.mark_stale("site00")
        info.refresh("site00")
        assert info.load("site00") == 3
        assert info.stale_load_reads == 0

    def test_mark_without_history_reads_fresh(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid)
        info.mark_stale("site02")  # no last-known value recorded yet
        assert info.load("site02") == 0
        assert info.stale_load_reads == 0

    def test_mark_is_noop_when_policy_disables_timeout(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog)
        info.mark_stale("site00")
        assert info._stale_marked == set()

    def test_mark_unknown_site_raises(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid)
        with pytest.raises(KeyError):
            info.mark_stale("nowhere")

    def test_loads_consistent_with_marked_sites(self, small_grid):
        sim, grid = small_grid
        info = self.make_info(sim, grid)
        info.load("site00")
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        info.mark_stale("site00")
        loads = info.loads()
        assert loads["site00"] == 0  # served from the cached record
        assert loads["site01"] == 0

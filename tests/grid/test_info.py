"""Unit tests for the information service (live and stale modes)."""

import random

import pytest

from repro.grid import Job
from repro.grid.info import InformationService


class TestLiveQueries:
    def test_site_names_sorted(self, small_grid):
        _, grid = small_grid
        assert grid.info.site_names == sorted(grid.sites)

    def test_site_names_cached_and_stable(self, small_grid):
        """site_names is computed once at construction, not per query."""
        _, grid = small_grid
        first = grid.info.site_names
        assert grid.info.site_names is first  # no per-call re-sort
        snapshot = list(first)
        for i in range(3):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10))
        assert grid.info.site_names == snapshot

    def test_load_of_idle_site_zero(self, small_grid):
        _, grid = small_grid
        assert grid.info.load("site00") == 0

    def test_load_counts_waiting_jobs(self, small_grid):
        sim, grid = small_grid
        # 2 processors at site00: the 3rd+ job waits.
        for i in range(5):
            job = Job(job_id=i, user="u", origin_site="site00",
                      input_files=["d0"], runtime_s=100)
            grid.submit(job)
        assert grid.info.load("site00") == 3

    def test_unknown_site_raises(self, small_grid):
        _, grid = small_grid
        with pytest.raises(KeyError):
            grid.info.load("nowhere")

    def test_loads_returns_all(self, small_grid):
        _, grid = small_grid
        loads = grid.info.loads()
        assert set(loads) == set(grid.sites)

    def test_least_loaded_prefers_min(self, small_grid):
        sim, grid = small_grid
        for i in range(4):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=100))
        # site00 now has waiting jobs; others are empty.
        assert grid.info.least_loaded() != "site00"

    def test_least_loaded_deterministic_without_rng(self, small_grid):
        _, grid = small_grid
        assert grid.info.least_loaded() == "site00"  # alphabetical tie-break

    def test_least_loaded_random_tie_break(self, small_grid):
        _, grid = small_grid
        rng = random.Random(0)
        picks = {grid.info.least_loaded(rng=rng) for _ in range(50)}
        assert len(picks) > 1  # ties spread across sites

    def test_least_loaded_candidates_subset(self, small_grid):
        _, grid = small_grid
        assert grid.info.least_loaded(["site02", "site03"]) in (
            "site02", "site03")

    def test_least_loaded_no_candidates_raises(self, small_grid):
        _, grid = small_grid
        with pytest.raises(ValueError):
            grid.info.least_loaded([])

    def test_dataset_locations_delegates_to_catalog(self, small_grid):
        _, grid = small_grid
        assert grid.info.dataset_locations("d0") == ["site00"]

    def test_sites_with_all(self, small_grid):
        _, grid = small_grid
        grid.catalog.register("d0", "site01")
        assert grid.info.sites_with_all(["d0", "d1"]) == ["site01"]
        assert grid.info.sites_with_all([]) == grid.info.site_names


class TestStaleness:
    def test_negative_interval_rejected(self, small_grid):
        sim, grid = small_grid
        with pytest.raises(ValueError):
            InformationService(sim, grid.sites, grid.catalog,
                               refresh_interval_s=-1)

    def test_stale_load_lags_reality(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        for i in range(5):
            grid.submit(Job(job_id=i, user="u", origin_site="site00",
                            input_files=["d0"], runtime_s=10_000))
        # Real load is 3, but the snapshot was taken at t=0.
        assert grid.sites["site00"].load == 3
        assert info.load("site00") == 0
        sim.run(until=150)  # refresher fired at t=100
        assert info.load("site00") == 3

    def test_stale_unknown_site_raises(self, small_grid):
        sim, grid = small_grid
        info = InformationService(sim, grid.sites, grid.catalog,
                                  refresh_interval_s=100.0)
        with pytest.raises(KeyError):
            info.load("nowhere")

"""Unit tests for the job-output storage extension.

The paper's evaluation ignores output costs (outputs are "of negligible
size as compared to input"); with ``output_fraction > 0`` jobs write an
output file to their execution site's storage on completion.
"""

import pytest

from repro import SimulationConfig, run_single
from repro.grid import Dataset, Job, JobState


def make_job(job_id=0, origin="site00", inputs=("d0",), runtime=100.0,
             output_mb=0.0):
    job = Job(job_id=job_id, user="u", origin_site=origin,
              input_files=list(inputs), runtime_s=runtime,
              output_size_mb=output_mb)
    job.advance(JobState.SUBMITTED, 0.0)
    job.advance(JobState.DISPATCHED, 0.0)
    job.execution_site = origin
    return job


class TestOutputStorage:
    def test_negative_output_rejected(self):
        with pytest.raises(ValueError):
            make_job(output_mb=-1)

    def test_output_written_and_registered(self, small_grid):
        sim, grid = small_grid
        job = make_job(job_id=7, output_mb=250)
        p = grid.sites["site00"].enqueue(job)
        sim.run(until=p)
        assert "output-job7" in grid.storages["site00"]
        assert grid.catalog.has_replica("output-job7", "site00")
        assert grid.sites["site00"].outputs["output-job7"].size_mb == 250

    def test_zero_output_writes_nothing(self, small_grid):
        sim, grid = small_grid
        p = grid.sites["site00"].enqueue(make_job(job_id=8))
        sim.run(until=p)
        assert "output-job8" not in grid.storages["site00"]
        assert grid.sites["site00"].outputs == {}

    def test_output_evictable_under_lru(self, small_grid):
        sim, grid = small_grid
        job = make_job(job_id=9, output_mb=500)
        p = grid.sites["site00"].enqueue(job)
        sim.run(until=p)
        # Force pressure: a 9.2 GB file on the 10 GB site (d0 = 500 MB
        # primary is pinned; the output is not).
        filler = Dataset("filler", 9200)
        grid.datasets.add(filler)
        grid.storages["site00"].add(filler, now=sim.now)
        assert "output-job9" not in grid.storages["site00"]
        assert not grid.catalog.has_replica("output-job9", "site00")

    def test_dropped_when_storage_all_pinned(self, small_grid):
        sim, grid = small_grid
        storage = grid.storages["site03"]
        for i in range(9):
            blk = Dataset(f"blk{i}", 1000)
            grid.datasets.add(blk)
            storage.add(blk, now=0, pin=True)
        # 9.0 of 10 GB pinned; a 1.5 GB output cannot fit.
        job = make_job(job_id=10, origin="site03", inputs=("d3",),
                       output_mb=1500)
        grid.datasets.add(Dataset("d3", 400))
        grid.place_initial_replica("d3", "site03")
        p = grid.sites["site03"].enqueue(job)
        sim.run(until=p)
        assert grid.sites["site03"].outputs_dropped == 1
        assert job.state is JobState.COMPLETED  # job itself succeeds


class TestOutputWorkload:
    def test_generator_sets_output_sizes(self):
        config = SimulationConfig.paper().scaled(0.05).with_(
            output_fraction=0.1)
        from repro.experiments.runner import make_workload
        workload = make_workload(config, seed=0)
        for jobs in workload.user_jobs.values():
            for job in jobs:
                input_mb = sum(workload.datasets.get(f).size_mb
                               for f in job.input_files)
                assert job.output_size_mb == pytest.approx(0.1 * input_mb)

    def test_full_run_with_outputs(self):
        config = SimulationConfig.paper().scaled(0.05).with_(
            output_fraction=0.05)
        m = run_single(config, "JobDataPresent", "DataRandom", seed=0)
        assert m.n_jobs == config.n_jobs
        assert m.outputs_dropped == 0  # plenty of space at this scale

    def test_outputs_do_not_change_response_ordering(self):
        """Outputs occupy storage but cost no time; response times of a
        run with and without small outputs match exactly unless storage
        pressure forces different evictions."""
        config = SimulationConfig.paper().scaled(0.05)
        base = run_single(config, "JobLocal", "DataDoNothing", seed=0)
        with_out = run_single(config.with_(output_fraction=0.01),
                              "JobLocal", "DataDoNothing", seed=0)
        assert with_out.avg_response_time_s == pytest.approx(
            base.avg_response_time_s, rel=0.05)

"""Unit tests for site job execution: FIFO, data waits, idle accounting."""

import pytest

from repro.grid import Job, JobState


def make_job(job_id=0, origin="site00", inputs=("d0",), runtime=100.0):
    job = Job(job_id=job_id, user="u", origin_site=origin,
              input_files=list(inputs), runtime_s=runtime)
    job.advance(JobState.SUBMITTED, 0.0)
    job.advance(JobState.DISPATCHED, 0.0)
    job.execution_site = origin
    return job


class TestExecution:
    def test_local_data_job_runs_immediately(self, small_grid):
        sim, grid = small_grid
        job = make_job()
        p = grid.sites["site00"].enqueue(job)
        result = sim.run(until=p)
        assert result is job
        assert job.state is JobState.COMPLETED
        assert job.completed_at == pytest.approx(100.0)
        assert job.queue_time == 0.0
        assert job.transfer_time == 0.0
        assert job.fetched_mb == 0.0

    def test_remote_data_job_waits_for_fetch(self, small_grid):
        sim, grid = small_grid
        job = make_job(origin="site01", inputs=("d0",))
        p = grid.sites["site01"].enqueue(job)
        sim.run(until=p)
        # 500 MB over 2 hops at 10 MB/s = 50 s fetch, then 100 s compute.
        assert job.completed_at == pytest.approx(150.0)
        assert job.transfer_time == pytest.approx(50.0)
        assert job.fetched_mb == 500.0

    def test_fifo_jobs_share_processors(self, small_grid):
        sim, grid = small_grid
        site = grid.sites["site00"]
        jobs = [make_job(job_id=i) for i in range(4)]
        procs = [site.enqueue(j) for j in jobs]
        sim.run(until=sim.all_of(procs))
        # 2 processors, 4 jobs of 100 s: two waves.
        assert sorted(j.completed_at for j in jobs) == [100, 100, 200, 200]
        assert jobs[2].queue_time == pytest.approx(100.0)

    def test_transfer_overlaps_queueing(self, small_grid):
        sim, grid = small_grid
        site = grid.sites["site01"]
        # Two long local-data jobs occupy both processors...
        blockers = [
            make_job(job_id=i, origin="site01", inputs=("d1",), runtime=200)
            for i in range(2)
        ]
        # ...while a remote-data job queues; its 50 s fetch overlaps the
        # 200 s queue wait entirely.
        fetcher = make_job(job_id=9, origin="site01", inputs=("d0",),
                           runtime=100)
        procs = [site.enqueue(j) for j in blockers]
        procs.append(site.enqueue(fetcher))
        sim.run(until=sim.all_of(procs))
        assert fetcher.queue_time == pytest.approx(200.0)
        assert fetcher.transfer_time == pytest.approx(0.0)  # overlapped
        assert fetcher.completed_at == pytest.approx(300.0)

    def test_completion_listener_called(self, small_grid):
        sim, grid = small_grid
        done = []
        grid.sites["site00"].completion_listeners.append(
            lambda j: done.append(j.job_id))
        p = grid.sites["site00"].enqueue(make_job(job_id=42))
        sim.run(until=p)
        assert done == [42]

    def test_jobs_completed_counter(self, small_grid):
        sim, grid = small_grid
        site = grid.sites["site00"]
        procs = [site.enqueue(make_job(job_id=i)) for i in range(3)]
        sim.run(until=sim.all_of(procs))
        assert site.jobs_completed == 3
        assert site.jobs_in_system == 0

    def test_input_unpinned_after_completion(self, small_grid):
        # Use a *cached* replica (primaries at their home site are pinned
        # forever by design): run a d0 job at site01.
        sim, grid = small_grid
        job = make_job(origin="site01", inputs=("d0",))
        p = grid.sites["site01"].enqueue(job)
        sim.run(until=p)
        assert "d0" in grid.storages["site01"]
        assert not grid.storages["site01"].is_pinned("d0")

    def test_input_pinned_while_running(self, small_grid):
        sim, grid = small_grid
        site = grid.sites["site01"]
        job = make_job(origin="site01", inputs=("d0",), runtime=100)
        site.enqueue(job)
        sim.run(until=100)  # fetch done at 50, compute until 150
        assert grid.storages["site01"].is_pinned("d0")

    def test_multi_input_job_waits_for_all(self, small_grid):
        sim, grid = small_grid
        job = make_job(origin="site03", inputs=("d0", "d1"), runtime=10)
        p = grid.sites["site03"].enqueue(job)
        sim.run(until=p)
        # d0: 500 MB, d1: 1000 MB share site03's downlink; the pair
        # completes when the slower one lands.  Both also cross their
        # own source uplinks.  Bottleneck share: 5 MB/s each while both
        # are active.
        assert job.fetched_mb == 1500.0
        assert job.completed_at > 100.0

    def test_load_counts_only_processorless_jobs(self, small_grid):
        sim, grid = small_grid
        site = grid.sites["site00"]
        for i in range(5):
            site.enqueue(make_job(job_id=i, runtime=1000))
        assert site.load == 3  # 2 running on processors

    def test_compute_busy_time_excludes_data_wait(self, small_grid):
        sim, grid = small_grid
        job = make_job(origin="site01", inputs=("d0",), runtime=100)
        p = grid.sites["site01"].enqueue(job)
        sim.run(until=p)
        ce = grid.sites["site01"].compute
        assert ce.busy_processor_seconds() == pytest.approx(100.0)
        # 50 s of the 150 s horizon was data wait on one processor.
        assert ce.idle_fraction() == pytest.approx(1 - 100 / (2 * 150))

"""Model-based (stateful) property tests for the replica catalog."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.grid import ReplicaCatalog

DATASETS = [f"d{i}" for i in range(5)]
SITES = [f"s{i}" for i in range(4)]


class CatalogMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.catalog = ReplicaCatalog()
        self.model = {}  # name -> set of sites

    @rule(name=st.sampled_from(DATASETS), site=st.sampled_from(SITES))
    def register(self, name, site):
        self.catalog.register(name, site)
        self.model.setdefault(name, set()).add(site)

    @rule(name=st.sampled_from(DATASETS), site=st.sampled_from(SITES))
    def deregister(self, name, site):
        self.catalog.deregister(name, site)
        if name in self.model:
            self.model[name].discard(site)

    @invariant()
    def locations_agree(self):
        for name in DATASETS:
            assert self.catalog.locations(name) == sorted(
                self.model.get(name, ()))

    @invariant()
    def membership_agrees(self):
        for name in DATASETS:
            for site in SITES:
                assert self.catalog.has_replica(name, site) == (
                    site in self.model.get(name, set()))

    @invariant()
    def counts_agree(self):
        for name in DATASETS:
            assert self.catalog.replica_count(name) == len(
                self.model.get(name, set()))
        assert self.catalog.total_replicas() == sum(
            len(sites) for sites in self.model.values())

    @invariant()
    def per_site_view_agrees(self):
        for site in SITES:
            expected = sorted(
                name for name, sites in self.model.items() if site in sites)
            assert self.catalog.datasets_at(site) == expected


TestCatalogStateful = CatalogMachine.TestCase
TestCatalogStateful.settings = settings(
    max_examples=50, stateful_step_count=30, deadline=None)

"""The observed failure detector: heartbeats, breakers, probes.

Scenario engineering notes: sites beat every 10 s; a scripted outage
silences one site, so the detector's phi (silence over windowed mean
interval) crosses its threshold a few ticks later — *detection latency*,
not oracle knowledge.  Recovery is probed through the half-open breaker
with capped-exponential backoff and closes only after consecutive
successes.
"""

import random

import pytest

from repro.faults import FaultPlan, SiteOutage
from repro.grid import DataGrid, Dataset, DatasetCollection, Job
from repro.grid.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    HealthMonitor,
    HealthPolicy,
)
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator
from repro.sim.trace import Tracer


def make_grid(policy, plan=None, tracer=None, health_seed=0):
    """A 4-site star grid with the health monitor installed."""
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        fault_plan=plan,
        fault_rng=random.Random(0) if plan is not None else None,
        health_policy=policy,
        health_rng=random.Random(health_seed),
        tracer=tracer,
    )
    grid.place_initial_replicas({"d0": "site00", "d1": "site01"})
    return sim, grid


BEAT = HealthPolicy(heartbeat_interval_s=10.0, phi_threshold=3.0,
                    probe_interval_s=15.0, probe_backoff_cap_s=30.0)


class TestPolicyValidation:
    def test_defaults_are_null(self):
        assert HealthPolicy().is_null

    def test_monitor_rejects_null_policy(self):
        sim, grid = make_grid(None)
        with pytest.raises(ValueError, match="null health policy"):
            HealthMonitor(sim, grid, HealthPolicy())

    def test_negative_heartbeat_rejected(self):
        with pytest.raises(ValueError, match="heartbeat interval"):
            HealthPolicy(heartbeat_interval_s=-1.0)

    def test_phi_must_exceed_one(self):
        with pytest.raises(ValueError, match="phi threshold"):
            HealthPolicy(heartbeat_interval_s=10.0, phi_threshold=1.0)

    def test_observed_only_needs_heartbeats(self):
        with pytest.raises(ValueError, match="observed_only"):
            HealthPolicy(observed_only=True)

    def test_probe_cap_below_interval_rejected(self):
        with pytest.raises(ValueError, match="probe backoff cap"):
            HealthPolicy(heartbeat_interval_s=10.0, probe_interval_s=60.0,
                         probe_backoff_cap_s=30.0)


class TestInstallation:
    def test_no_policy_leaves_every_layer_bare(self):
        _, grid = make_grid(None)
        assert grid.health is None
        assert grid.datamover.health is None
        assert all(s.health is None for s in grid.sites.values())

    def test_monitor_wires_every_layer(self):
        _, grid = make_grid(BEAT)
        monitor = grid.health
        assert monitor is not None
        assert grid.datamover.health is monitor
        assert all(s.health is monitor for s in grid.sites.values())
        assert sorted(monitor.site_breakers) == sorted(grid.sites)
        assert all(b.state is CLOSED
                   for b in monitor.site_breakers.values())


class TestDetection:
    PLAN = FaultPlan(site_outages=[SiteOutage("site02", 100.0, 400.0)])

    def test_outage_is_detected_with_latency(self):
        sim, grid = make_grid(BEAT, plan=self.PLAN)
        monitor = grid.health
        sim.run(until=99.0)
        assert monitor.site_breakers["site02"].state is CLOSED
        sim.run(until=200.0)
        # Silence since the last beat (~100 s) crossed 3x the ~10 s mean
        # interval around t=130; the breaker is open well before 200.
        assert monitor.site_breakers["site02"].state is OPEN
        assert monitor.stats.suspicions >= 1
        assert monitor.stats.detections >= 1
        assert monitor.stats.false_suspicions == 0
        # Latency is positive (observed, not oracle) and bounded by the
        # phi threshold: ~3 heartbeat intervals plus one detector tick.
        latency = monitor.stats.mean_detection_latency_s
        assert 0.0 < latency <= 4 * BEAT.heartbeat_interval_s

    def test_healthy_sites_stay_closed(self):
        sim, grid = make_grid(BEAT, plan=self.PLAN)
        sim.run(until=600.0)
        for name in ("site00", "site01", "site03"):
            assert grid.health.site_breakers[name].state is CLOSED

    def test_probes_restore_after_recovery(self):
        sim, grid = make_grid(BEAT, plan=self.PLAN)
        monitor = grid.health
        sim.run(until=390.0)
        assert monitor.site_breakers["site02"].state in (OPEN, HALF_OPEN)
        assert monitor.stats.probes >= 1
        sim.run(until=600.0)
        # The outage ended at 400; two consecutive probe successes (15 s
        # base, 30 s cap) close the breaker shortly after.
        assert monitor.site_breakers["site02"].state is CLOSED
        assert monitor.stats.breaker_restores >= 1
        assert "site02" in grid.info.site_names

    def test_suspect_site_hidden_from_info(self):
        sim, grid = make_grid(BEAT, plan=self.PLAN)
        sim.run(until=200.0)
        assert "site02" not in grid.info.site_names
        assert not grid.health.allows("site02")
        assert not grid.health.allow_replication("site02")

    def test_trace_records_full_cycle(self):
        tracer = Tracer()
        sim, grid = make_grid(BEAT, plan=self.PLAN, tracer=tracer)
        sim.run(until=600.0)
        kinds = [r.kind for r in tracer.records]
        suspect = kinds.index("health.suspect")
        trip = kinds.index("health.trip")
        probe = kinds.index("health.probe")
        restore = kinds.index("health.restore")
        assert suspect < trip < probe < restore


class TestFalsePositives:
    def test_jittered_beats_with_tight_threshold_cry_wolf(self):
        policy = HealthPolicy(heartbeat_interval_s=10.0,
                              heartbeat_jitter=0.4,
                              phi_threshold=1.5,
                              probe_interval_s=15.0,
                              probe_backoff_cap_s=30.0)
        sim, grid = make_grid(policy)  # no faults: every suspicion wrong
        sim.run(until=5000.0)
        stats = grid.health.stats
        assert stats.suspicions >= 1
        assert stats.false_suspicions == stats.suspicions
        assert stats.false_positive_rate == 1.0
        assert stats.detections == 0
        # Probes against a reachable site succeed immediately, so every
        # false trip was also restored.
        assert stats.breaker_restores >= 1

    def test_generous_threshold_stays_quiet(self):
        policy = HealthPolicy(heartbeat_interval_s=10.0,
                              heartbeat_jitter=0.4,
                              phi_threshold=6.0)
        sim, grid = make_grid(policy)
        sim.run(until=5000.0)
        assert grid.health.stats.suspicions == 0
        assert grid.health.stats.false_positive_rate == 0.0


class TestDispatchFeedback:
    def test_dispatch_failure_trips_the_breaker(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        monitor.record_dispatch_failure("site03")
        assert monitor.site_breakers["site03"].state is OPEN
        assert monitor.stats.breaker_trips == 1
        assert "site03" not in grid.info.site_names

    def test_second_trip_is_idempotent(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        monitor.record_dispatch_failure("site03")
        monitor.record_dispatch_failure("site03")
        assert monitor.stats.breaker_trips == 1


class TestLinkBreakers:
    def test_opens_after_threshold_consecutive_failures(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        for _ in range(BEAT.link_failure_threshold - 1):
            monitor.record_transfer_failure("site00", "site01")
        assert not monitor.link_open("site00", "site01")
        monitor.record_transfer_failure("site01", "site00")  # either order
        assert monitor.link_open("site00", "site01")
        assert monitor.link_open("site01", "site00")

    def test_success_resets_and_closes(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        for _ in range(BEAT.link_failure_threshold):
            monitor.record_transfer_failure("site00", "site01")
        assert monitor.link_open("site00", "site01")
        monitor.record_transfer_success("site00", "site01")
        assert not monitor.link_open("site00", "site01")
        breaker = monitor.link_breakers[("site00", "site01")]
        assert breaker.failures == 0

    def test_success_interleaved_prevents_trip(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        for _ in range(10):
            monitor.record_transfer_failure("site00", "site01")
            monitor.record_transfer_success("site00", "site01")
        assert not monitor.link_open("site00", "site01")

    def test_local_copies_ignored(self):
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        for _ in range(10):
            monitor.record_transfer_failure("site00", "site00")
        assert not monitor.link_breakers

    def test_open_link_deprioritizes_source_not_bans_it(self):
        """A source behind an open link is still used when it holds the
        only replica — and the successful fetch closes the breaker."""
        sim, grid = make_grid(BEAT)
        monitor = grid.health
        for _ in range(BEAT.link_failure_threshold):
            monitor.record_transfer_failure("site00", "site03")
        assert monitor.link_open("site00", "site03")
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=10)  # d0 only at site00
        done = grid.submit(job)
        sim.run(until=done)
        assert job.response_time > 0
        assert not monitor.link_open("site00", "site03")


class TestObservedOnly:
    PLAN = FaultPlan(site_outages=[SiteOutage("site02", 100.0, 400.0)])
    POLICY = HealthPolicy(heartbeat_interval_s=10.0, phi_threshold=3.0,
                          probe_interval_s=15.0, probe_backoff_cap_s=30.0,
                          observed_only=True)

    def test_oracle_channel_is_cut(self):
        """The outage itself no longer hides the site — only the
        detector's trip does, a few intervals later."""
        sim, grid = make_grid(self.POLICY, plan=self.PLAN)
        sim.run(until=110.0)
        # Down since t=100, but the schedulers don't know yet.
        assert not grid.faults.is_up("site02")
        assert "site02" in grid.info.site_names
        sim.run(until=200.0)
        # Now the detector noticed.
        assert "site02" not in grid.info.site_names

    def test_oracle_mode_marks_down_immediately(self):
        policy = HealthPolicy(heartbeat_interval_s=10.0, phi_threshold=3.0)
        sim, grid = make_grid(policy, plan=self.PLAN)
        sim.run(until=110.0)
        assert "site02" not in grid.info.site_names

    def test_jobs_complete_through_observed_detection(self):
        sim, grid = make_grid(self.POLICY, plan=self.PLAN)
        jobs = [Job(job_id=i, user="u", origin_site="site02",
                    input_files=["d0"], runtime_s=20) for i in range(4)]
        done = [grid.submit(job) for job in jobs]
        sim.run(until=sim.all_of(done))
        assert all(job.state.value == "done" for job in jobs)


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        def run(seed):
            tracer = Tracer()
            plan = FaultPlan(site_outages=[SiteOutage("site02", 100.0,
                                                      400.0)])
            policy = HealthPolicy(heartbeat_interval_s=10.0,
                                  heartbeat_jitter=0.3,
                                  phi_threshold=2.0,
                                  probe_interval_s=15.0,
                                  probe_backoff_cap_s=30.0,
                                  probe_jitter=0.2)
            sim, grid = make_grid(policy, plan=plan, tracer=tracer,
                                  health_seed=seed)
            sim.run(until=2000.0)
            return [(r.time, r.kind, tuple(sorted(r.detail.items())))
                    for r in tracer.records]

        assert run(7) == run(7)
        assert run(7) != run(8)

"""Property tests: every run's state sequences fit the transition model.

Randomized small workloads are run across the fault × staleness ×
overload × DAG knob space with a hook installed on the grid's transition
engine.  Whatever path a job takes — retries after a site crash, a
deflection chain ending in shedding, a queue-deadline expiry — every
observed edge must be declared in ``TRANSITIONS``, terminal states must
absorb, timestamps must be monotone, and the engine's per-state counts
must always sum to the total registered jobs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_grid, make_workload
from repro.faults.plan import FaultPlan
from repro.grid import JobState
from repro.grid.lifecycle import TERMINAL_STATES, TRANSITIONS

FAULTY = FaultPlan.none().with_(site_mtbf_s=4000.0, site_mttr_s=600.0,
                                transfer_fail_prob=0.05)


def small_config(seed, catalog_delay, queue_capacity, deadline, faulty,
                 dag_shape):
    return SimulationConfig(
        n_users=6,
        n_sites=4,
        n_datasets=10,
        n_jobs=18,
        bandwidth_mbps=10.0,
        storage_capacity_mb=8000.0,
        topology="star",
        catalog_delay_s=catalog_delay,
        queue_capacity=queue_capacity,
        job_deadline_s=deadline,
        fault_plan=FAULTY if faulty else None,
        dag_shape=dag_shape,
        seed=seed,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=999),
    es=st.sampled_from(["JobLocal", "JobLeastLoaded", "JobDataPresent"]),
    ds=st.sampled_from(["DataDoNothing", "DataRandom"]),
    catalog_delay=st.sampled_from([0.0, 120.0]),
    queue_capacity=st.sampled_from([0, 2]),
    deadline=st.sampled_from([0.0, 400.0]),
    faulty=st.booleans(),
    dag_shape=st.sampled_from(["none", "diamond", "mapreduce"]),
)
def test_observed_sequences_fit_the_model(seed, es, ds, catalog_delay,
                                          queue_capacity, deadline,
                                          faulty, dag_shape):
    config = small_config(seed, catalog_delay, queue_capacity, deadline,
                          faulty, dag_shape)
    workload = make_workload(config, seed)
    sim, grid = build_grid(config, es, ds, workload, seed)
    observed = {}

    def record(job, src, dst, edge, now):
        observed.setdefault(job.job_id, []).append((src, dst, edge, now))

    grid.lifecycle.hooks.append(record)
    grid.run()
    engine = grid.lifecycle

    total = len(engine.jobs)
    assert total == config.n_jobs
    assert observed, "no transitions were recorded at all"

    for job_id, edges in observed.items():
        last_time = float("-inf")
        for i, (src, dst, edge, now) in enumerate(edges):
            assert (src, dst) in TRANSITIONS, (
                f"job {job_id} took undeclared edge "
                f"{src.value} -> {dst.value}")
            assert TRANSITIONS[(src, dst)] == edge
            assert src not in TERMINAL_STATES, (
                f"job {job_id} left terminal state {src.value}")
            assert now >= last_time, (
                f"job {job_id} transitioned backwards in time")
            last_time = now
            if i + 1 < len(edges):
                assert edges[i + 1][0] is dst, (
                    f"job {job_id}: sequence is not a connected path")

    # Conservation: per-state counts sum to the registered total, and the
    # set-based bookkeeping agrees with the counters exactly.
    assert sum(engine.counts.values()) == total
    assert engine.audit() == []
    for state in JobState:
        assert engine.counts[state] == len(engine.by_state[state])

    # A finished closed-loop (or DAG) run leaves every job settled.
    for job in engine.jobs.values():
        assert job.state in TERMINAL_STATES, (
            f"job {job.job_id} ended the run in {job.state.value}")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999),
       faulty=st.booleans())
def test_done_jobs_walked_the_happy_chain(seed, faulty):
    """Every completed job's path ends with the canonical tail."""
    config = small_config(seed, 0.0, 0, 0.0, faulty, "none")
    workload = make_workload(config, seed)
    sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                           workload, seed)
    observed = {}
    grid.lifecycle.hooks.append(
        lambda job, src, dst, edge, now:
        observed.setdefault(job.job_id, []).append(edge))
    grid.run()
    for job in grid.lifecycle.jobs.values():
        if job.state is JobState.DONE:
            assert observed[job.job_id][-4:] == [
                "dispatch", "enqueue", "start", "finish"]

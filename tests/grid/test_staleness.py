"""Unit tests for InfoPolicy and the StaleReplicaView delayed mirror."""

import pytest

from repro.grid import InfoPolicy, ReplicaCatalog, StaleReplicaView
from repro.sim import Simulator
from repro.sim.trace import Tracer


def make_view(delay=100.0):
    sim = Simulator()
    catalog = ReplicaCatalog()
    view = StaleReplicaView(sim, catalog, delay)
    catalog.add_listener(view)
    return sim, catalog, view


class TestInfoPolicy:
    def test_defaults_are_live(self):
        policy = InfoPolicy()
        assert policy.is_live
        assert policy.bounce_budget == 1

    @pytest.mark.parametrize("field", [
        "refresh_interval_s", "catalog_delay_s", "query_timeout_s",
        "bounce_budget"])
    def test_negative_values_rejected(self, field):
        with pytest.raises(ValueError):
            InfoPolicy(**{field: -1})

    @pytest.mark.parametrize("changes", [
        {"refresh_interval_s": 60.0},
        {"catalog_delay_s": 30.0},
        {"query_timeout_s": 10.0},
    ])
    def test_any_staleness_knob_breaks_liveness(self, changes):
        assert not InfoPolicy(**changes).is_live

    def test_zero_bounce_budget_is_still_live(self):
        # The budget only matters once misdirections happen, which needs
        # a catalog delay; on its own it does not make answers stale.
        assert InfoPolicy(bounce_budget=0).is_live

    def test_hashable_for_config_caching(self):
        assert hash(InfoPolicy()) == hash(InfoPolicy())


class TestConstruction:
    def test_nonpositive_delay_rejected(self):
        sim = Simulator()
        catalog = ReplicaCatalog()
        for delay in (0.0, -5.0):
            with pytest.raises(ValueError):
                StaleReplicaView(sim, catalog, delay)

    def test_existing_records_visible_immediately(self):
        sim = Simulator()
        catalog = ReplicaCatalog()
        catalog.register("d0", "site00", 500.0)
        view = StaleReplicaView(sim, catalog, 100.0)
        assert view.has_replica("d0", "site00")
        assert view.locations("d0") == ["site00"]


class TestDelayedVisibility:
    def test_register_invisible_before_delay(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        assert not view.has_replica("d0", "site00")
        assert view.locations("d0") == []
        assert view.replica_count("d0") == 0

    def test_register_visible_after_delay(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        sim.run(until=100.0)
        assert view.has_replica("d0", "site00")
        assert view.locations("d0") == ["site00"]

    def test_deregister_leaves_phantom_until_delay(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        catalog.deregister("d0", "site00")
        assert view.has_replica("d0", "site00")  # phantom
        assert not catalog.has_replica("d0", "site00")
        sim.run(until=100.0)
        assert not view.has_replica("d0", "site00")

    def test_updates_apply_in_order(self):
        sim, catalog, view = make_view(delay=50.0)
        catalog.register("d0", "site00", 500.0)
        catalog.deregister("d0", "site00")
        catalog.register("d0", "site00", 500.0)
        sim.run(until=50.0)
        assert view.has_replica("d0", "site00")

    def test_idempotent_reregistration_not_queued(self):
        sim, catalog, view = make_view(delay=50.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        catalog.register("d0", "site00", 500.0)  # no membership change
        assert view.pending_count() == 0

    def test_pending_count_drains_with_time(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        sim.run(until=10.0)
        catalog.register("d1", "site01", 700.0)
        assert view.pending_count() == 2
        sim.run(until=100.0)
        assert view.pending_count() == 1
        sim.run(until=110.0)
        assert view.pending_count() == 0

    def test_bytes_present_by_site_uses_stale_state(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        catalog.register("d0", "site01", 500.0)
        present = view.bytes_present_by_site(["d0"])
        assert present == {"site00": 500.0}
        sim.run(until=100.0)
        present = view.bytes_present_by_site(["d0"])
        assert present == {"site00": 500.0, "site01": 500.0}

    def test_location_set_matches_locations(self):
        sim, catalog, view = make_view(delay=10.0)
        catalog.register("d0", "site00", 500.0)
        sim.run(until=10.0)
        assert view.location_set("d0") == {"site00"}
        assert view.location_set("unknown") == frozenset()


class TestSyncAndReconcile:
    def test_sync_all_applies_everything(self):
        sim, catalog, view = make_view(delay=1000.0)
        catalog.register("d0", "site00", 500.0)
        catalog.register("d1", "site01", 700.0)
        view.sync_all()
        assert view.has_replica("d0", "site00")
        assert view.has_replica("d1", "site01")
        assert view.pending_count() == 0

    def test_reconcile_purges_phantom(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        catalog.deregister("d0", "site00")
        view.reconcile("d0", "site00")
        assert not view.has_replica("d0", "site00")
        # The queued deregister was superseded; replaying it must not
        # resurrect anything.
        sim.run(until=100.0)
        assert not view.has_replica("d0", "site00")
        assert view.audit() == []

    def test_reconcile_reveals_fresh_replica(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)  # pending, invisible
        view.reconcile("d0", "site00")
        assert view.has_replica("d0", "site00")
        sim.run(until=100.0)
        assert view.has_replica("d0", "site00")
        assert view.audit() == []

    def test_reconcile_leaves_other_pairs_pending(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        catalog.register("d1", "site01", 700.0)
        view.reconcile("d0", "site00")
        assert view.has_replica("d0", "site00")
        assert not view.has_replica("d1", "site01")  # still pending
        sim.run(until=100.0)
        assert view.has_replica("d1", "site01")


class TestStaleReadAccounting:
    def test_fresh_answer_not_counted(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        view.locations("d0")
        assert view.stale_reads == 0

    def test_differing_answer_counted(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)  # invisible for 100 s
        assert view.locations("d0") == []
        assert view.stale_reads == 1

    def test_stale_read_emits_trace_record(self):
        sim, catalog, view = make_view(delay=100.0)
        tracer = Tracer()
        view.tracer = tracer
        catalog.register("d0", "site00", 500.0)
        view.has_replica("d0", "site00")
        kinds = [r.kind for r in tracer.records]
        assert kinds == ["info.stale_read"]


class TestAudit:
    def test_clean_view_audits_clean(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view.sync_all()
        catalog.deregister("d0", "site00")
        catalog.register("d0", "site01", 500.0)
        assert view.audit() == []

    def test_audit_detects_lost_update(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        view._pending.clear()  # corrupt: drop the queued registration
        problems = view.audit()
        assert problems
        assert "disagrees" in problems[0]

    def test_audit_detects_overdelayed_update(self):
        sim, catalog, view = make_view(delay=100.0)
        catalog.register("d0", "site00", 500.0)
        bad = view._pending[0]._replace(visible_at=1e9)
        view._pending[0] = bad
        problems = view.audit()
        assert any("beyond the staleness bound" in p for p in problems)

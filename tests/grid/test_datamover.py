"""Unit tests for the data mover: fetches, dedup, pinning, replication."""

import pytest

from repro.grid.datamover import DataUnavailableError
from repro.grid.files import Dataset


class TestEnsureLocal:
    def test_present_file_returns_zero_traffic(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.ensure_local("site00", "d0")
        assert sim.run(until=p) == 0.0
        assert grid.transfers.total_mb_moved == 0.0

    def test_remote_fetch_moves_file(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.ensure_local("site01", "d0")
        moved = sim.run(until=p)
        assert moved == 500
        assert "d0" in grid.storages["site01"]
        assert grid.catalog.has_replica("d0", "site01")
        # 500 MB over two 10 MB/s hops -> 50 s.
        assert sim.now == pytest.approx(50.0)

    def test_pin_flag_pins_after_arrival(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.ensure_local("site01", "d0", pin=True)
        sim.run(until=p)
        assert grid.storages["site01"].is_pinned("d0")

    def test_concurrent_fetches_share_one_transfer(self, small_grid):
        sim, grid = small_grid
        p1 = grid.datamover.ensure_local("site01", "d0")
        p2 = grid.datamover.ensure_local("site01", "d0")
        done = sim.all_of([p1, p2])
        sim.run(until=done)
        # Only one initiator pays; the wire moved the file exactly once.
        assert sorted([p1.value, p2.value]) == [0.0, 500.0]
        assert grid.transfers.total_mb_moved == 500

    def test_inflight_query(self, small_grid):
        sim, grid = small_grid
        grid.datamover.ensure_local("site01", "d0")
        sim.step()  # let the fetch process start
        assert grid.datamover.is_inflight("site01", "d0")

    def test_unavailable_dataset_fails(self, small_grid):
        sim, grid = small_grid
        grid.catalog.deregister("d0", "site00")
        p = grid.datamover.ensure_local("site01", "d0")
        with pytest.raises(DataUnavailableError):
            sim.run(until=p)

    def test_unknown_dataset_fails(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.ensure_local("site01", "ghost")
        with pytest.raises(KeyError):
            sim.run(until=p)

    def test_fetch_waits_for_pinned_space(self, small_grid):
        sim, grid = small_grid
        storage = grid.storages["site03"]
        # Fill site03 with pinned files: 10 GB capacity.
        for i in range(10):
            big = Dataset(f"blk{i}", 999)
            grid.datasets.add(big)
            storage.add(big, now=0, pin=True)
        p = grid.datamover.ensure_local("site03", "d0")

        def unpin_later():
            yield sim.timeout(500)
            storage.unpin("blk0")
            storage.remove("blk0")

        sim.process(unpin_later())
        moved = sim.run(until=p)
        assert moved == 500
        assert sim.now >= 500  # had to wait for space


class TestSourceSelection:
    def test_prefers_closest_replica(self, small_grid):
        sim, grid = small_grid
        # In a star, all sites are equidistant, so use traffic to verify
        # the source actually used: put d0 at site02 too and check whose
        # uplink carried the bytes.
        grid.place_initial_replica("d0", "site02")
        p = grid.datamover.ensure_local("site01", "d0")
        sim.run(until=p)
        carried = {
            link.endpoints: link.bytes_carried
            for link in grid.topology.links
        }
        used = [ep for ep, mb in carried.items() if mb > 0]
        # One source uplink and the destination downlink.
        assert len(used) == 2

    def test_tie_break_spreads_sources(self, small_grid):
        sim, grid = small_grid
        grid.place_initial_replica("d0", "site02")
        sources = set()
        for _ in range(20):
            src = grid.datamover._pick_source("site01", "d0", None)
            sources.add(src)
        assert sources == {"site00", "site02"}


class TestReplicate:
    def test_creates_replica(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.replicate("d0", "site00", "site02")
        moved = sim.run(until=p)
        assert moved == 500
        assert grid.catalog.has_replica("d0", "site02")
        assert grid.datamover.replications_done == 1
        by = grid.transfers.mb_moved_by_purpose()
        assert by == {"replication": 500}

    def test_skips_if_target_has_replica(self, small_grid):
        sim, grid = small_grid
        p = grid.datamover.replicate("d0", "site00", "site00")
        assert sim.run(until=p) == 0.0
        assert grid.datamover.replications_skipped == 1

    def test_skips_if_target_full_of_pins(self, small_grid):
        sim, grid = small_grid
        storage = grid.storages["site03"]
        for i in range(10):
            big = Dataset(f"blk{i}", 999)
            grid.datasets.add(big)
            storage.add(big, now=0, pin=True)
        p = grid.datamover.replicate("d0", "site00", "site03")
        assert sim.run(until=p) == 0.0
        assert grid.datamover.replications_skipped == 1

    def test_skips_if_already_inflight(self, small_grid):
        sim, grid = small_grid
        grid.datamover.ensure_local("site02", "d0")
        sim.step()  # fetch started
        p = grid.datamover.replicate("d0", "site00", "site02")
        assert sim.run(until=p) == 0.0
        assert grid.datamover.replications_skipped == 1

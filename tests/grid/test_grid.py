"""Unit tests for the DataGrid aggregate: wiring, submission, placement."""

import random

import pytest

from repro.grid import DataGrid, Dataset, DatasetCollection, Job, JobState, User
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


class TestCreate:
    def test_missing_processor_counts_rejected(self):
        sim = Simulator()
        topo = Topology.star(3, 10)
        with pytest.raises(ValueError, match="no processor counts"):
            DataGrid.create(
                sim=sim, topology=topo,
                datasets=DatasetCollection([Dataset("d", 100)]),
                external_scheduler=JobLocal(),
                local_scheduler=FIFOLocalScheduler(),
                dataset_scheduler=DataDoNothing(),
                site_processors={"site00": 2},
            )

    def test_invalid_topology_rejected(self):
        sim = Simulator()
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")  # disconnected
        with pytest.raises(ValueError):
            DataGrid.create(
                sim=sim, topology=topo,
                datasets=DatasetCollection(),
                external_scheduler=JobLocal(),
                local_scheduler=FIFOLocalScheduler(),
                dataset_scheduler=DataDoNothing(),
                site_processors={"a": 1, "b": 1},
            )

    def test_eviction_deregisters_replica(self, small_grid):
        sim, grid = small_grid
        storage = grid.storages["site03"]
        extra = Dataset("filler", 9800)  # 500 + 9800 > 10 GB: evicts d0
        grid.datasets.add(extra)
        p = grid.datamover.ensure_local("site03", "d0")
        sim.run(until=p)
        assert grid.catalog.has_replica("d0", "site03")
        storage.add(extra, now=sim.now)  # forces LRU eviction of d0
        assert not grid.catalog.has_replica("d0", "site03")
        # The primary at site00 is untouched.
        assert grid.catalog.locations("d0") == ["site00"]

    def test_total_processors(self, small_grid):
        _, grid = small_grid
        assert grid.total_processors == 8


class TestPlacement:
    def test_primary_is_pinned(self, small_grid):
        _, grid = small_grid
        assert grid.storages["site00"].is_pinned("d0")

    def test_overflow_to_freest_site(self):
        sim = Simulator()
        topo = Topology.star(2, 10)
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 1000) for i in range(6)])
        grid = DataGrid.create(
            sim=sim, topology=topo, datasets=datasets,
            external_scheduler=JobLocal(),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataDoNothing(),
            site_processors={s: 1 for s in topo.sites},
            storage_capacity_mb=5000,
        )
        # All six mapped to site00 (6000 MB > 5000 MB capacity): some
        # must overflow to site01 while keeping 1000 MB headroom each.
        grid.place_initial_replicas({f"d{i}": "site00" for i in range(6)})
        assert grid.catalog.total_replicas() == 6
        assert grid.storages["site00"].used_mb <= 4000
        assert grid.storages["site01"].used_mb >= 2000

    def test_impossible_placement_raises(self):
        sim = Simulator()
        topo = Topology.star(2, 10)
        datasets = DatasetCollection(
            [Dataset(f"d{i}", 2000) for i in range(10)])
        grid = DataGrid.create(
            sim=sim, topology=topo, datasets=datasets,
            external_scheduler=JobLocal(),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataDoNothing(),
            site_processors={s: 1 for s in topo.sites},
            storage_capacity_mb=5000,
        )
        with pytest.raises(ValueError, match="storage too small"):
            grid.place_initial_replicas(
                {f"d{i}": "site00" for i in range(10)})


class TestSubmit:
    def test_submit_routes_through_es(self, small_grid):
        sim, grid = small_grid
        job = Job(job_id=0, user="u", origin_site="site02",
                  input_files=["d2"], runtime_s=10)
        p = grid.submit(job)
        sim.run(until=p)
        assert job.execution_site == "site02"  # JobLocal
        assert job.state is JobState.COMPLETED
        assert grid.submitted_jobs == [job]
        assert grid.completed_jobs == [job]

    def test_es_returning_unknown_site_rejected(self, small_grid):
        sim, grid = small_grid

        class BadES:
            def select_site(self, job, grid):
                return "mars"

        grid.external_scheduler = BadES()
        job = Job(job_id=0, user="u", origin_site="site00",
                  input_files=["d0"], runtime_s=10)
        with pytest.raises(ValueError, match="unknown site"):
            grid.submit(job)


class TestRun:
    def test_run_without_users_rejected(self, small_grid):
        _, grid = small_grid
        with pytest.raises(ValueError, match="no users"):
            grid.run()

    def test_run_returns_makespan(self, small_grid):
        sim, grid = small_grid
        jobs = [
            Job(job_id=i, user="u0", origin_site="site00",
                input_files=["d0"], runtime_s=100)
            for i in range(2)
        ]
        grid.add_user(User(sim, "u0", "site00", jobs, grid))
        makespan = grid.run()
        assert makespan == pytest.approx(200.0)  # sequential submission

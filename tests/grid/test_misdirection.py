"""Misdirected-job detection and recovery under a stale catalog view.

Scenario engineering: a cached (unpinned) replica is installed and then
evicted while the catalog delay hides the eviction, so the External
Scheduler — consulting the stale view — still routes jobs at the phantom.
The hand-off check must notice, count the misdirection, reconcile the
view, and either bounce the job back to the ES or let the data mover
fetch remotely.
"""

import random

import pytest

from repro.grid import (
    DataGrid,
    Dataset,
    DatasetCollection,
    InfoPolicy,
    Job,
)
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler
from repro.scheduling.external import JobDataPresent
from repro.sim import Simulator
from repro.sim.trace import Tracer


def make_stale_grid(policy=None, tracer=None):
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobDataPresent(random.Random(0)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        info_policy=policy or InfoPolicy(catalog_delay_s=200.0),
        tracer=tracer,
    )
    grid.place_initial_replicas({"d0": "site00", "d1": "site01"})
    return sim, grid


def install_phantom(sim, grid, dataset="d0", site="site03"):
    """Cache a replica at ``site``, make it visible, then evict it.

    The deregistration is trapped in the stale view's pending queue, so
    for the next ``delay_s`` seconds the view advertises a replica the
    live catalog (and storage) no longer has.
    """
    ds = grid.datasets.get(dataset)
    grid.storages[site].add(ds, sim.now)
    grid.catalog.register(dataset, site, size_mb=ds.size_mb)
    grid.info.replica_view.sync_all()
    grid.storages[site].remove(dataset)
    grid.catalog.deregister(dataset, site)
    assert grid.info.replica_view.has_replica(dataset, site)
    assert not grid.catalog.has_replica(dataset, site)


def occupy(grid, site, n, start_id=1000):
    """Queue ``n`` long jobs at ``site`` so it stops being least-loaded."""
    for i in range(n):
        grid.submit(Job(job_id=start_id + i, user="filler",
                        origin_site=site, input_files=["d0"],
                        runtime_s=100_000))


class TestDetection:
    def test_phantom_dispatch_is_detected_and_bounced(self):
        sim, grid = make_stale_grid()
        occupy(grid, "site00", 3)  # real holder now has queue depth
        install_phantom(sim, grid)
        view = grid.info.replica_view
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=10)
        grid.submit(job)
        assert view.misdirected_jobs == 1
        assert view.bounced_jobs == 1
        assert job.bounces == 1
        # The bounce re-dispatched onto the real holder.
        assert job.execution_site == "site00"

    def test_reconcile_prevents_repeat_misdirection(self):
        sim, grid = make_stale_grid()
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        view = grid.info.replica_view
        for job_id in (1, 2):
            grid.submit(Job(job_id=job_id, user="u", origin_site="site03",
                            input_files=["d0"], runtime_s=10))
        # Only the first job chased the phantom; reconciliation fixed the
        # view so the second dispatch went straight to the real holder.
        assert view.misdirected_jobs == 1

    def test_no_misdirection_without_phantom(self):
        sim, grid = make_stale_grid()
        view = grid.info.replica_view
        job = Job(job_id=1, user="u", origin_site="site02",
                  input_files=["d0"], runtime_s=10)
        grid.submit(job)
        assert view.misdirected_jobs == 0
        assert view.bounced_jobs == 0


class TestBounceBudget:
    def test_zero_budget_falls_back_to_remote_fetch(self):
        sim, grid = make_stale_grid(
            policy=InfoPolicy(catalog_delay_s=200.0, bounce_budget=0))
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        view = grid.info.replica_view
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=10)
        done = grid.submit(job)
        assert view.misdirected_jobs == 1
        assert view.bounced_jobs == 0
        # Budget spent: the job stays at the phantom site...
        assert job.execution_site == "site03"
        sim.run(until=done)
        # ...and the mechanism fetched d0 remotely to complete it.
        assert job.transfer_time > 0
        assert grid.catalog.has_replica("d0", "site03")

    def test_bounced_job_completes(self):
        sim, grid = make_stale_grid()
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        job = Job(job_id=1, user="u", origin_site="site03",
                  input_files=["d0"], runtime_s=10)
        done = grid.submit(job)
        sim.run(until=done)
        assert job.response_time > 0
        assert job.execution_site == "site00"


class TestTracing:
    def test_misdirection_and_bounce_traced(self):
        tracer = Tracer()
        sim, grid = make_stale_grid(tracer=tracer)
        occupy(grid, "site00", 3)
        install_phantom(sim, grid)
        grid.submit(Job(job_id=1, user="u", origin_site="site03",
                        input_files=["d0"], runtime_s=10))
        kinds = [r.kind for r in tracer.records]
        assert "job.misdirected" in kinds
        assert "job.bounced" in kinds
        misdirected = next(r for r in tracer.records
                           if r.kind == "job.misdirected")
        assert misdirected.detail["site"] == "site03"
        assert misdirected.detail["missing"] == ["d0"]
        bounced = next(r for r in tracer.records if r.kind == "job.bounced")
        assert bounced.detail["origin"] == "site03"
        assert bounced.detail["site"] == "site00"


class TestSchedulerTolerance:
    def test_dataset_scheduler_tolerates_phantom_replicas(self):
        """Replication eligibility consults the (stale) info service.

        A phantom replica makes the DS skip that site as a target —
        conservative but safe; a hidden fresh replica at worst triggers a
        duplicate replication that the data mover then skips.  Either
        way the run completes and books stay consistent.
        """
        from repro.scheduling import DataRandom

        sim = Simulator()
        topology = Topology.star(3, 10.0)
        datasets = DatasetCollection([Dataset("d0", 500)])
        grid = DataGrid.create(
            sim=sim,
            topology=topology,
            datasets=datasets,
            external_scheduler=JobDataPresent(random.Random(0)),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataRandom(
                random.Random(0), popularity_threshold=1,
                check_interval_s=50.0),
            site_processors={name: 2 for name in topology.sites},
            storage_capacity_mb=10_000,
            datamover_rng=random.Random(0),
            info_policy=InfoPolicy(catalog_delay_s=500.0),
        )
        grid.place_initial_replicas({"d0": "site00"})
        jobs = [Job(job_id=i, user="u", origin_site="site00",
                    input_files=["d0"], runtime_s=10) for i in range(6)]
        done = [grid.submit(job) for job in jobs]
        sim.run(until=sim.all_of(done))
        sim.run(until=sim.now + 200.0)  # let the DS loop react
        # Any replica the DS pushed is consistently booked despite the
        # stale view lagging 500 s behind.
        for site, storage in grid.storages.items():
            for name in storage.files:
                assert grid.catalog.has_replica(name, site)
        for name, site, _size in grid.catalog.replica_records():
            assert name in grid.storages[site]

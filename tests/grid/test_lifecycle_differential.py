"""Differential tests: the transition engine changes *nothing* observable.

The engine refactor replaced scattered state flags with a central
transition table — these tests pin down that engine-driven runs are
bitwise-identical to the pre-refactor behaviour: all 12 committed golden
digests still match byte-for-byte, trace-derived counters still agree
exactly with the metrics layer, and running with the watchdog (which now
audits through the engine) changes no result.

No new trace kind was added by the refactor (DAG dependencies ride in
the existing ``job.submit`` record, emitted only when present), so the
golden regeneration flow needed no extension.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_single
from repro.metrics.collector import RunMetrics
from repro.scheduling.registry import ALL_DS, ALL_ES
from repro.sim.trace import Tracer
from repro.trace.crossval import mismatches
from repro.trace.golden import (
    describe_divergence,
    fingerprint,
    golden_config,
)

GOLDEN_PATH = (Path(__file__).parent.parent / "trace" / "golden"
               / "digests.json")
COMBOS = [(es, ds) for es in ALL_ES for ds in ALL_DS]

# One traced engine-driven run per combo, shared across the test classes.
_RUNS = {}


def _traced_run(es, ds):
    if (es, ds) not in _RUNS:
        tracer = Tracer()
        metrics = run_single(golden_config(), es, ds, tracer=tracer)
        _RUNS[(es, ds)] = (tracer.records, metrics)
    return _RUNS[(es, ds)]


@pytest.fixture(scope="module")
def golden_digests():
    assert GOLDEN_PATH.exists(), (
        "golden digests are not committed; the differential test has "
        "no pre-refactor baseline to compare against")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("es,ds", COMBOS,
                         ids=[f"{es}-{ds}" for es, ds in COMBOS])
def test_engine_reproduces_golden_digest(es, ds, golden_digests):
    records, _ = _traced_run(es, ds)
    fp = fingerprint(records)
    stored = golden_digests[f"{es}/{ds}"]
    assert (fp["digest"], fp["count"]) == (stored["digest"],
                                           stored["count"]), \
        describe_divergence(stored, records)


@pytest.mark.parametrize("es,ds", COMBOS,
                         ids=[f"{es}-{ds}" for es, ds in COMBOS])
def test_trace_and_metrics_agree_exactly(es, ds):
    records, metrics = _traced_run(es, ds)
    assert mismatches(records, metrics) == {}


@pytest.mark.parametrize("es,ds", [
    ("JobDataPresent", "DataRandom"),
    ("JobLeastLoaded", "DataLeastLoaded"),
])
def test_watchdog_run_is_bitwise_identical(es, ds):
    """Engine-backed invariant auditing must stay read-only.

    The watchdog adds its own ``watchdog.check`` heartbeat records;
    every *domain* record — and every metric — must be unchanged.
    """
    records, metrics = _traced_run(es, ds)
    tracer = Tracer()
    watched = run_single(golden_config().with_(watchdog=True), es, ds,
                         tracer=tracer)
    domain = [r for r in tracer.records if r.kind != "watchdog.check"]
    assert fingerprint(domain) == fingerprint(records)
    for field in RunMetrics.__dataclass_fields__:
        assert getattr(watched, field) == getattr(metrics, field), field

"""DAG workloads: validation, shape wiring, release order, bulk placement.

The integration tests run real campaigns and cross-validate dependency
order two independent ways: from the job objects (child never dispatched
before every parent completed) and from the trace stream
(:func:`repro.trace.crossval.dag_violations`).
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_grid, make_workload, run_matrix
from repro.grid import JobState
from repro.grid.job import Job
from repro.sim.trace import Tracer
from repro.trace.crossval import dag_violations, mismatches
from repro.workload.dag import DagDriver, validate_dag, wire_shape


def make_jobs(n, deps=None, input_file="d0"):
    deps = deps or {}
    return [
        Job(job_id=i, user="u", origin_site="site00",
            input_files=[input_file], runtime_s=10,
            depends_on=list(deps.get(i, [])))
        for i in range(n)
    ]


class TestValidateDag:
    def test_topo_order_is_deterministic(self):
        jobs = make_jobs(4, deps={3: [1, 2], 1: [0], 2: [0]})
        assert validate_dag(jobs) == [0, 1, 2, 3]
        assert validate_dag(list(reversed(jobs))) == [0, 1, 2, 3]

    def test_cycle_rejected_with_clear_error(self):
        jobs = make_jobs(3, deps={0: [2], 1: [0], 2: [1]})
        with pytest.raises(ValueError, match="dependency cycle among jobs "
                                             r"\[0, 1, 2\]"):
            validate_dag(jobs)

    def test_two_node_cycle_rejected(self):
        jobs = make_jobs(4, deps={1: [2], 2: [1]})
        with pytest.raises(ValueError, match="cycle"):
            validate_dag(jobs)

    def test_self_dependency_rejected_at_construction(self):
        with pytest.raises(ValueError, match="depends on itself"):
            make_jobs(2, deps={1: [1]})

    def test_unknown_parent_rejected(self):
        jobs = make_jobs(2, deps={1: [99]})
        with pytest.raises(ValueError, match="unknown job 99"):
            validate_dag(jobs)

    def test_duplicate_ids_rejected(self):
        jobs = make_jobs(2) + make_jobs(1)
        with pytest.raises(ValueError, match="duplicate job id 0"):
            validate_dag(jobs)


class TestWireShape:
    def test_chain(self):
        jobs = make_jobs(4)
        wire_shape(jobs, "chain")
        assert [j.depends_on for j in jobs] == [[], [0], [1], [2]]

    def test_diamond_groups(self):
        jobs = make_jobs(8)
        wire_shape(jobs, "diamond")
        assert [j.depends_on for j in jobs[:4]] == [[], [0], [0], [1, 2]]
        assert [j.depends_on for j in jobs[4:]] == [[], [4], [4], [5, 6]]

    def test_fanout(self):
        jobs = make_jobs(5)
        wire_shape(jobs, "fanout", width=3)
        assert jobs[0].depends_on == []
        assert all(j.depends_on == [0] for j in jobs[1:4])
        assert jobs[4].depends_on == [1, 2, 3]

    def test_mapreduce(self):
        jobs = make_jobs(6)
        wire_shape(jobs, "mapreduce", width=4)
        assert all(j.depends_on == [] for j in jobs[:4])
        assert all(j.depends_on == [0, 1, 2, 3] for j in jobs[4:])

    def test_partial_final_group_runs_as_chain(self):
        jobs = make_jobs(6)  # one diamond + 2 leftovers
        wire_shape(jobs, "diamond")
        assert jobs[4].depends_on == []
        assert jobs[5].depends_on == [4]

    def test_every_shape_is_acyclic(self):
        for shape in ("chain", "diamond", "fanout", "mapreduce"):
            jobs = make_jobs(11)
            wire_shape(jobs, shape, width=3)
            validate_dag(jobs)  # must not raise

    def test_bad_shape_and_width_rejected(self):
        with pytest.raises(ValueError, match="unknown DAG shape"):
            wire_shape(make_jobs(3), "butterfly")
        with pytest.raises(ValueError, match="width must be >= 1"):
            wire_shape(make_jobs(3), "fanout", width=0)


class TestConfigValidation:
    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown DAG shape"):
            SimulationConfig(dag_shape="butterfly")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="width must be >= 1"):
            SimulationConfig(dag_width=0)

    def test_bulk_requires_a_shape(self):
        with pytest.raises(ValueError, match="bulk submission requires"):
            SimulationConfig(bulk_submission=True)
        SimulationConfig(bulk_submission=True, dag_shape="chain")

    def test_dag_incompatible_with_open_arrivals(self):
        with pytest.raises(ValueError, match="incompatible"):
            SimulationConfig(dag_shape="diamond", arrival_rate_per_s=0.1)


def dag_config(shape, n_jobs=24, **kw):
    return SimulationConfig(
        n_users=6, n_sites=4, n_datasets=10, n_jobs=n_jobs,
        bandwidth_mbps=10.0, storage_capacity_mb=8000.0,
        topology="star", dag_shape=shape, seed=0, **kw)


def run_campaign(config, es="JobDataPresent", ds="DataRandom"):
    workload = make_workload(config, config.seed)
    tracer = Tracer()
    sim, grid = build_grid(config, es, ds, workload, config.seed,
                           tracer=tracer)
    grid.run()
    jobs = {job.job_id: job
            for jobs in workload.user_jobs.values() for job in jobs}
    return grid, tracer.records, jobs


class TestCampaigns:
    @pytest.mark.parametrize("shape", ["diamond", "mapreduce"])
    def test_children_never_run_before_parents(self, shape):
        config = dag_config(shape)
        grid, records, jobs = run_campaign(config)
        done = [j for j in jobs.values() if j.state is JobState.DONE]
        assert len(done) == config.n_jobs
        with_deps = [j for j in jobs.values() if j.depends_on]
        assert with_deps, "shape wiring produced no dependencies"
        for job in with_deps:
            for parent_id in job.depends_on:
                parent = jobs[parent_id]
                assert job.dispatched_at >= parent.completed_at, (
                    f"job {job.job_id} dispatched at {job.dispatched_at} "
                    f"before parent {parent_id} completed at "
                    f"{parent.completed_at}")
        # Independent check straight from the trace stream.
        assert dag_violations(records) == []

    def test_release_happens_in_batches(self):
        config = dag_config("diamond")
        grid, _, _ = run_campaign(config)
        # Diamonds release in (at least) source / middles / sink waves.
        assert grid.dag.batches_submitted >= 3
        assert grid.dag.jobs_abandoned == 0

    def test_dependency_free_dag_run_matches_trace_counters(self):
        from repro.metrics.collector import RunMetrics

        config = dag_config("mapreduce", dag_width=4)
        workload = make_workload(config, 0)
        tracer = Tracer()
        sim, grid = build_grid(config, "JobLeastLoaded", "DataLeastLoaded",
                               workload, 0, tracer=tracer)
        makespan = grid.run()
        metrics = RunMetrics.from_grid(grid, makespan)
        assert mismatches(tracer.records, metrics) == {}


class TestBulkSubmission:
    def test_same_signature_jobs_follow_the_leader(self, small_grid):
        sim, grid = small_grid
        # Five independent jobs over two input signatures; JobLocal would
        # scatter them by origin, but bulk placement pins each signature
        # group to its leader's site.
        jobs = [
            Job(job_id=i, user="u", origin_site=f"site0{i % 4}",
                input_files=["d1"] if i < 3 else ["d2"], runtime_s=10)
            for i in range(5)
        ]
        driver = DagDriver(sim, grid, jobs, bulk=True)
        grid.dag = driver
        grid.run()
        assert all(j.state is JobState.DONE for j in jobs)
        assert len({j.execution_site for j in jobs[:3]}) == 1
        assert len({j.execution_site for j in jobs[3:]}) == 1
        assert driver.batches_submitted == 1

    def test_bulk_campaign_completes_and_respects_order(self):
        config = dag_config("fanout", n_jobs=36, dag_width=4,
                            bulk_submission=True)
        grid, records, jobs = run_campaign(config, es="JobLeastLoaded")
        assert all(j.state is JobState.DONE for j in jobs.values())
        assert dag_violations(records) == []


class TestCascadeAbandonment:
    def test_shed_parent_abandons_descendants(self):
        # 6 jobs per user = exactly one full fanout group each; the
        # 24-job middle wave overwhelms capacity-1 queues.
        config = dag_config("fanout", n_jobs=36, dag_width=4,
                            queue_capacity=1, deflect_budget=0)
        grid, records, jobs = run_campaign(config, es="JobLeastLoaded")
        shed = [j for j in jobs.values() if j.state is JobState.SHED]
        assert shed, "overload knobs did not shed any job"
        assert grid.dag.jobs_abandoned > 0
        # Every descendant of a shed job must be failed, never dispatched.
        for job in jobs.values():
            if any(jobs[p].state is not JobState.DONE
                   for p in job.depends_on):
                assert job.state is JobState.FAILED
                assert job.dispatched_at is None
                assert "dependency job" in job.failure_reason
        # Everything is settled: done + shed + failed covers the workload.
        by_state = {}
        for job in jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        assert sum(by_state.values()) == config.n_jobs
        assert set(by_state) <= {JobState.DONE, JobState.SHED,
                                 JobState.FAILED}
        assert dag_violations(records) == []


class TestDeterminism:
    def test_worker_count_and_cache_replay_invariance(self, tmp_path):
        config = dag_config("diamond")
        es_names = ("JobLocal", "JobDataPresent")
        ds_names = ("DataDoNothing", "DataRandom")
        serial = run_matrix(config, es_names, ds_names, seeds=(0,), jobs=1)
        fanned = run_matrix(config, es_names, ds_names, seeds=(0,), jobs=2,
                            cache_dir=tmp_path)
        replayed = run_matrix(config, es_names, ds_names, seeds=(0,),
                              jobs=1, cache_dir=tmp_path)
        assert serial.runs == fanned.runs
        assert serial.runs == replayed.runs

"""Unit tests for LRU storage with pinning."""

import pytest

from repro.grid import Dataset, StorageElement, StorageFullError


def ds(name, size=100):
    return Dataset(name, size)


class TestBasics:
    def test_add_and_contains(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        assert "a" in st
        assert st.used_mb == 100
        assert st.free_mb == 900

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            StorageElement("s", 0)

    def test_re_add_refreshes_not_duplicates(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        st.add(ds("a"), now=5)
        assert st.used_mb == 100
        assert len(st) == 1

    def test_oversized_file_rejected(self):
        st = StorageElement("s", 50)
        with pytest.raises(StorageFullError):
            st.add(ds("big", 100), now=0)

    def test_remove(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        st.remove("a")
        assert "a" not in st
        assert st.used_mb == 0

    def test_drained_store_is_exactly_empty(self):
        # Fractional sizes accumulate float residue; once the last file
        # is gone, used_mb must be exactly 0.0, not ±1e-13.
        st = StorageElement("s", 1000)
        sizes = [0.1, 0.2, 0.7, 0.3]
        for i, size in enumerate(sizes):
            st.add(ds(f"f{i}", size), now=i)
        for i in reversed(range(len(sizes))):
            st.remove(f"f{i}")
        assert st.used_mb == 0.0
        assert st.free_mb == 1000

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            StorageElement("s", 100).remove("ghost")

    def test_touch_missing_raises(self):
        with pytest.raises(KeyError):
            StorageElement("s", 100).touch("ghost", now=0)

    def test_files_and_datasets(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        st.add(ds("b"), now=1)
        assert st.files == ["a", "b"]
        assert [d.name for d in st.datasets()] == ["a", "b"]


class TestLRU:
    def test_evicts_least_recently_used(self):
        st = StorageElement("s", 300)
        st.add(ds("a"), now=0)
        st.add(ds("b"), now=1)
        st.add(ds("c"), now=2)
        st.touch("a", now=3)  # refresh a; b is now LRU
        st.add(ds("d"), now=4)
        assert "b" not in st
        assert "a" in st and "c" in st and "d" in st
        assert st.evictions == 1

    def test_evicts_as_many_as_needed(self):
        st = StorageElement("s", 300)
        for i, name in enumerate("abc"):
            st.add(ds(name), now=i)
        st.add(ds("big", 250), now=5)
        assert "big" in st
        assert st.evictions == 3
        assert st.used_mb == pytest.approx(250)

    def test_eviction_callback_fired(self):
        evicted = []
        st = StorageElement("s", 200, on_evict=lambda d: evicted.append(d.name))
        st.add(ds("a"), now=0)
        st.add(ds("b"), now=1)
        st.add(ds("c"), now=2)
        assert evicted == ["a"]

    def test_infinite_capacity_never_evicts(self):
        st = StorageElement("s")
        for i in range(100):
            st.add(ds(f"f{i}", 10_000), now=i)
        assert st.evictions == 0


class TestPinning:
    def test_pinned_files_not_evicted(self):
        st = StorageElement("s", 200)
        st.add(ds("keep"), now=0, pin=True)
        st.add(ds("b"), now=1)
        st.add(ds("c"), now=2)  # must evict b, not pinned keep
        assert "keep" in st
        assert "b" not in st

    def test_pin_counts_nest(self):
        st = StorageElement("s", 200)
        st.add(ds("a"), now=0)
        st.pin("a")
        st.pin("a")
        st.unpin("a")
        assert st.is_pinned("a")
        st.unpin("a")
        assert not st.is_pinned("a")

    def test_unpin_unpinned_raises(self):
        st = StorageElement("s", 200)
        st.add(ds("a"), now=0)
        with pytest.raises(ValueError):
            st.unpin("a")

    def test_unpin_missing_is_noop(self):
        StorageElement("s", 200).unpin("ghost")  # no exception

    def test_pin_missing_raises(self):
        with pytest.raises(KeyError):
            StorageElement("s", 200).pin("ghost")

    def test_all_pinned_blocks_add(self):
        st = StorageElement("s", 200)
        st.add(ds("a"), now=0, pin=True)
        st.add(ds("b"), now=1, pin=True)
        with pytest.raises(StorageFullError, match="pinned"):
            st.add(ds("c"), now=2)

    def test_can_fit_respects_pins(self):
        st = StorageElement("s", 200)
        st.add(ds("a"), now=0, pin=True)
        st.add(ds("b"), now=1)
        assert st.can_fit(100)       # b (100 MB) is evictable
        assert not st.can_fit(150)   # a (pinned) can never be evicted
        st.pin("b")
        assert not st.can_fit(100)   # now everything is pinned


class TestPopularity:
    def test_record_access_counts(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        assert st.record_access("a", now=1) == 1
        assert st.record_access("a", now=2) == 2
        assert st.access_counts["a"] == 2

    def test_reset_popularity(self):
        st = StorageElement("s", 1000)
        st.add(ds("a"), now=0)
        st.record_access("a", now=1)
        st.reset_popularity("a")
        assert st.access_counts["a"] == 0

    def test_eviction_clears_counter(self):
        st = StorageElement("s", 200)
        st.add(ds("a"), now=0)
        st.record_access("a", now=1)
        st.add(ds("b"), now=2)
        st.add(ds("c"), now=3)  # evicts a
        assert "a" not in st.access_counts

    def test_record_access_missing_raises(self):
        with pytest.raises(KeyError):
            StorageElement("s", 100).record_access("ghost", now=0)

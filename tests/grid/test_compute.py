"""Unit tests for compute elements and utilization accounting."""

import pytest

from repro.grid import ComputeElement
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestPool:
    def test_needs_positive_processors(self, sim):
        with pytest.raises(ValueError):
            ComputeElement(sim, "s", 0)

    def test_waiting_counts_queued_requests(self, sim):
        ce = ComputeElement(sim, "s", 1)
        ce.acquire()
        ce.acquire()
        ce.acquire()
        assert ce.waiting == 2

    def test_release_grants_next(self, sim):
        ce = ComputeElement(sim, "s", 1)
        r1 = ce.acquire()
        r2 = ce.acquire()
        ce.release(r1)
        assert r2.triggered
        assert ce.waiting == 0

    def test_priority_requires_priority_pool(self, sim):
        ce = ComputeElement(sim, "s", 1)
        with pytest.raises(TypeError):
            ce.acquire(priority=3)

    def test_priority_pool_orders_by_priority(self, sim):
        ce = ComputeElement(sim, "s", 1, priority_queue=True)
        blocker = ce.acquire(priority=0)
        order = []

        def worker(name, prio):
            req = ce.acquire(priority=prio)
            yield req
            order.append(name)
            ce.release(req)

        sim.process(worker("slow", 9))
        sim.process(worker("fast", 1))

        def release():
            yield sim.timeout(1)
            ce.release(blocker)

        sim.process(release())
        sim.run()
        assert order == ["fast", "slow"]


class TestUtilization:
    def test_idle_when_nothing_ran(self, sim):
        ce = ComputeElement(sim, "s", 2)
        sim.timeout(100)
        sim.run()
        assert ce.idle_fraction() == 1.0
        assert ce.busy_processor_seconds() == 0.0

    def test_busy_integral_single_job(self, sim):
        ce = ComputeElement(sim, "s", 2)

        def job():
            yield sim.timeout(10)  # idle lead-in
            ce.compute_started()
            yield sim.timeout(30)
            ce.compute_finished()
            yield sim.timeout(10)  # idle tail

        sim.process(job())
        sim.run()
        assert sim.now == 50
        assert ce.busy_processor_seconds() == pytest.approx(30)
        # 30 busy-seconds of 2 * 50 available.
        assert ce.idle_fraction() == pytest.approx(1 - 30 / 100)

    def test_overlapping_jobs_integrate(self, sim):
        ce = ComputeElement(sim, "s", 2)

        def job(start, duration):
            yield sim.timeout(start)
            ce.compute_started()
            yield sim.timeout(duration)
            ce.compute_finished()

        sim.process(job(0, 20))
        sim.process(job(10, 20))
        sim.run()
        assert ce.busy_processor_seconds() == pytest.approx(40)
        assert ce.jobs_computed == 2

    def test_busy_extends_to_horizon(self, sim):
        ce = ComputeElement(sim, "s", 1)
        ce.compute_started()
        sim.timeout(10)
        sim.run()
        # Still computing at the horizon: integral counts to "now".
        assert ce.busy_processor_seconds(until=10) == pytest.approx(10)
        assert ce.idle_fraction(until=10) == pytest.approx(0.0)

    def test_idle_fraction_zero_horizon(self, sim):
        assert ComputeElement(sim, "s", 1).idle_fraction(until=0) == 1.0

    def test_waiting_for_data_counts_as_idle(self, sim):
        """A processor held by a job that is waiting for data is idle —
        the Figure 4 definition."""
        ce = ComputeElement(sim, "s", 1)

        def job():
            req = ce.acquire()
            yield req
            yield sim.timeout(40)  # "waiting for data" — no compute_started
            ce.compute_started()
            yield sim.timeout(10)
            ce.compute_finished()
            ce.release(req)

        sim.process(job())
        sim.run()
        assert ce.idle_fraction() == pytest.approx(1 - 10 / 50)

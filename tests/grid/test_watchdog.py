"""The runtime invariant watchdog: clean passes and seeded corruptions.

Each corruption test breaks exactly one conservation law by hand and
asserts the watchdog names that invariant — proving the checks are
neither vacuous nor cross-wired.
"""

import types

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.sim.trace import Tracer
from repro.watchdog import InvariantViolation, Watchdog, attach


def small_run_grid(**config_changes):
    config = SimulationConfig.paper().scaled(0.02).with_(**config_changes)
    workload = make_workload(config, seed=0)
    return build_grid(config, "JobDataPresent", "DataRandom", workload,
                      seed=0)


class TestConstruction:
    def test_nonpositive_interval_rejected(self, small_grid):
        sim, grid = small_grid
        for interval in (0.0, -10.0):
            with pytest.raises(ValueError):
                Watchdog(sim, grid, interval_s=interval)

    def test_attach_registers_on_grid(self, small_grid):
        _, grid = small_grid
        dog = attach(grid)
        assert grid.watchdog is dog


class TestCleanRuns:
    def test_fresh_grid_passes_all_checks(self, small_grid):
        _, grid = small_grid
        dog = attach(grid)
        dog.check_now()
        assert dog.checks_run == 1

    def test_clean_full_run_passes(self):
        sim, grid = small_run_grid(watchdog=True)
        grid.run()
        assert grid.watchdog is not None
        grid.watchdog.check_now()
        assert grid.watchdog.checks_run > 1  # periodic loop fired mid-run

    def test_faulty_full_run_passes(self):
        from repro import FaultPlan, SiteOutage

        plan = FaultPlan(
            site_outages=(SiteOutage("site00", 500.0, 3_000.0),),
            transfer_fail_prob=0.1, seed=1)
        sim, grid = small_run_grid(watchdog=True, fault_plan=plan)
        grid.run()
        grid.watchdog.check_now()

    def test_stale_full_run_passes(self):
        sim, grid = small_run_grid(watchdog=True, catalog_delay_s=600.0)
        grid.run()
        grid.watchdog.check_now()

    def test_check_emits_trace_record(self, small_grid):
        _, grid = small_grid
        grid.tracer = Tracer()
        dog = attach(grid)
        dog.check_now()
        assert [r.kind for r in grid.tracer.records] == ["watchdog.check"]
        assert grid.tracer.records[0].detail["n"] == 1


class TestSeededCorruptions:
    def expect_violation(self, grid, invariant):
        with pytest.raises(InvariantViolation) as err:
            grid.watchdog.check_now()
        assert err.value.invariant == invariant
        assert invariant in str(err.value)
        return err.value

    def test_lost_job_breaks_jobs_conserved(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.sites["site00"].jobs_in_system += 1
        violation = self.expect_violation(grid, "jobs-conserved")
        assert violation.details["sites_in_system"] == 1

    def test_negative_queue_breaks_jobs_conserved(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.sites["site00"].jobs_in_system = -1
        self.expect_violation(grid, "jobs-conserved")

    def test_storage_leak_breaks_accounting(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.storages["site00"]._used_mb += 123.0
        violation = self.expect_violation(grid, "storage-accounting")
        assert violation.details["site"] == "site00"

    def test_overfull_storage_detected(self, small_grid):
        _, grid = small_grid
        attach(grid)
        # site02 holds d2 (books stay self-consistent); shrinking the
        # capacity below occupancy trips the capacity clause.
        storage = grid.storages["site02"]
        storage.capacity_mb = storage.used_mb - 1.0
        self.expect_violation(grid, "storage-accounting")

    def test_aborted_completed_transfer_detected(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.transfers.completed.append(types.SimpleNamespace(
            src="site00", dst="site01", size_mb=10.0, failed=True,
            finished_at=5.0, remaining_mb=0.0))
        self.expect_violation(grid, "transfers-consistent")

    def test_unfinished_completed_transfer_detected(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.transfers.completed.append(types.SimpleNamespace(
            src="site00", dst="site01", size_mb=10.0, failed=False,
            finished_at=None, remaining_mb=4.0))
        self.expect_violation(grid, "transfers-consistent")

    def test_ghost_catalog_record_detected(self, small_grid):
        _, grid = small_grid
        attach(grid)
        grid.catalog.register("d0", "site03", 500.0)  # nothing resident
        self.expect_violation(grid, "catalog-consistent")

    def test_unregistered_resident_file_detected(self, small_grid):
        sim, grid = small_grid
        attach(grid)
        grid.catalog.deregister("d2", "site02")
        self.expect_violation(grid, "catalog-consistent")

    def test_corrupted_stale_view_detected(self):
        sim, grid = small_run_grid(catalog_delay_s=600.0)
        attach(grid)
        grid.watchdog.check_now()  # sanity: clean before corruption
        view = grid.info.replica_view
        view._locations.setdefault("dataset0000", set()).add("ghost-site")
        self.expect_violation(grid, "stale-view-bounded")


class TestViolationReporting:
    def test_message_carries_time_and_details(self, small_grid):
        sim, grid = small_grid
        attach(grid)
        sim.run(until=42.0)
        grid.sites["site00"].jobs_in_system += 1
        with pytest.raises(InvariantViolation) as err:
            grid.watchdog.check_now()
        assert err.value.time == 42.0
        assert "[t=42.000]" in str(err.value)

    def test_trace_tail_attached_when_tracing(self, small_grid):
        from repro.grid import Job

        _, grid = small_grid
        grid.tracer = Tracer()
        for site in grid.sites.values():
            site.tracer = grid.tracer
        attach(grid)
        grid.submit(Job(job_id=1, user="u", origin_site="site00",
                        input_files=["d0"], runtime_s=10))
        grid.storages["site00"]._used_mb += 1.0
        with pytest.raises(InvariantViolation) as err:
            grid.watchdog.check_now()
        assert err.value.trace_tail
        assert "recent trace" in str(err.value)

    def test_periodic_loop_raises_mid_run(self, small_grid):
        sim, grid = small_grid
        attach(grid, interval_s=10.0)
        grid.storages["site00"]._used_mb += 1.0
        with pytest.raises(InvariantViolation):
            sim.run(until=50.0)

"""Overload protection: policy semantics, shedding, deadlines, degradation.

Each mechanism of :class:`~repro.grid.overload.OverloadPolicy` is driven
on a small star grid: bounded queues (deflect then shed), queue-deadline
expiry (both local-scheduler modes), priority aging, degraded-mode
placement, remote reads, and the replication storage-full skip.
"""

import random

import pytest

from repro.grid import Dataset, DatasetCollection, DataGrid, Job, JobState
from repro.grid.datamover import RemoteReadMB
from repro.grid.overload import OverloadPolicy, SaturationStats
from repro.grid.storage import StorageFullError
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.scheduling.local import (
    DataAwareFIFOScheduler,
    ShortestJobFirstScheduler,
)
from repro.sim import Simulator
from repro.sim.trace import Tracer


class TestPolicy:
    def test_defaults_are_null(self):
        assert OverloadPolicy().is_null

    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": 1},
        {"job_deadline_s": 10.0},
        {"aging_factor": 0.5},
        {"degraded_es": "JobRandom"},
        {"storage_reservations": True},
    ])
    def test_any_mechanism_activates(self, kwargs):
        assert not OverloadPolicy(**kwargs).is_null

    def test_modifiers_alone_stay_null(self):
        # Budget and remote-read knobs modify other mechanisms; on their
        # own they must not install the overload layer.
        assert OverloadPolicy(deflect_budget=5).is_null
        assert OverloadPolicy(remote_read_after=9).is_null

    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": -1},
        {"deflect_budget": -1},
        {"job_deadline_s": -0.5},
        {"aging_factor": -2.0},
        {"remote_read_after": -1},
    ])
    def test_negative_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadPolicy(**kwargs)

    def test_stats_start_at_zero(self):
        stats = SaturationStats()
        assert stats.jobs_shed == 0
        assert stats.jobs_deflected == 0
        assert stats.jobs_expired == 0
        assert stats.degraded_dispatches == 0
        assert stats.remote_reads == 0


def make_grid(policy=None, local_scheduler=None, external_scheduler=None,
              processors=1, storage_mb=10_000, tracer=None):
    """A 4-site star grid; dN (N x 500 MB) initially lives at siteN."""
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
        Dataset("d2", 1500),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=external_scheduler or JobLocal(),
        local_scheduler=local_scheduler or FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: processors for name in topology.sites},
        storage_capacity_mb=storage_mb,
        datamover_rng=random.Random(0),
        overload_policy=policy,
        tracer=tracer,
    )
    grid.place_initial_replicas(
        {"d0": "site00", "d1": "site01", "d2": "site02"})
    return sim, grid


def job(job_id, origin="site00", runtime_s=100.0, inputs=("d0",)):
    return Job(job_id, f"user{job_id}", origin, list(inputs), runtime_s)


class TestNullWiring:
    def test_null_policy_installs_nothing(self):
        sim, grid = make_grid(policy=OverloadPolicy())
        assert grid.overload is None
        assert grid.overload_stats is None
        assert grid.datamover.overload is None
        assert all(s.overload is None for s in grid.sites.values())

    def test_active_policy_wires_everywhere(self):
        policy = OverloadPolicy(queue_capacity=2)
        sim, grid = make_grid(policy=policy)
        assert grid.overload is policy
        assert grid.datamover.overload is policy
        assert all(s.overload is policy for s in grid.sites.values())
        assert all(s.overload_stats is grid.overload_stats
                   for s in grid.sites.values())


class TestBoundedQueues:
    def test_overflow_deflects_to_least_loaded_site(self):
        policy = OverloadPolicy(queue_capacity=1, deflect_budget=1)
        sim, grid = make_grid(policy=policy, tracer=Tracer())
        # j0 takes site00's only processor, j1 fills its one queue slot,
        # so j2 (aimed at site00 by JobLocal) must deflect.
        jobs = [job(0), job(1), job(2)]
        for j in jobs:
            grid.submit(j)
        assert jobs[2].execution_site == "site01"
        assert jobs[2].deflections == 1
        assert grid.overload_stats.jobs_deflected == 1
        assert grid.overload_stats.degraded_dispatches == 1
        kinds = [r.kind for r in grid.tracer.records]
        assert "job.deflected" in kinds
        assert "es.degraded" in kinds
        sim.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_budget_exhaustion_sheds(self):
        policy = OverloadPolicy(queue_capacity=1, deflect_budget=0)
        sim, grid = make_grid(policy=policy, tracer=Tracer())
        jobs = [job(0), job(1), job(2)]
        processes = [grid.submit(j) for j in jobs]
        assert jobs[2].state is JobState.SHED
        assert grid.overload_stats.jobs_shed == 1
        assert "queues saturated" in jobs[2].failure_reason
        assert any(r.kind == "job.shed" for r in grid.tracer.records)
        # The shed job's execution process completes immediately with
        # the (terminal) job, so sequential submitters never block on it.
        assert sim.run(until=processes[2]) is jobs[2]
        sim.run()
        assert grid.shed_jobs == [jobs[2]]
        assert len(grid.completed_jobs) == 2

    def test_all_sites_saturated_sheds_despite_budget(self):
        policy = OverloadPolicy(queue_capacity=1, deflect_budget=99)
        sim, grid = make_grid(policy=policy)
        jobs = []
        # Two jobs per site: one running, one waiting -> every queue full.
        for site_index in range(4):
            for _ in range(2):
                j = job(len(jobs), origin=f"site{site_index:02d}")
                jobs.append(j)
                grid.submit(j)
        straggler = job(99)
        grid.submit(straggler)
        assert straggler.state is JobState.SHED
        assert straggler.deflections == 0  # nowhere to deflect to
        sim.run()
        assert len(grid.completed_jobs) == 8

    def test_queue_depth_peak_is_recorded(self):
        sim, grid = make_grid(policy=OverloadPolicy(queue_capacity=3))
        for i in range(4):
            grid.submit(job(i))
        assert grid.sites["site00"].peak_queue_depth == 3
        sim.run()


class TestDeadlines:
    def test_waiting_job_expires_at_deadline(self):
        policy = OverloadPolicy(job_deadline_s=50.0)
        sim, grid = make_grid(policy=policy, tracer=Tracer())
        first, second = job(0, runtime_s=200.0), job(1, runtime_s=200.0)
        grid.submit(first)
        process = grid.submit(second)
        expired = sim.run(until=process)
        assert expired is second
        assert sim.now == pytest.approx(50.0)
        assert second.state is JobState.EXPIRED
        assert "deadline" in second.failure_reason
        assert grid.overload_stats.jobs_expired == 1
        record = next(r for r in grid.tracer.records
                      if r.kind == "job.expired")
        assert record.detail["waited_s"] == pytest.approx(50.0)
        sim.run()
        assert first.state is JobState.COMPLETED
        assert all(s.jobs_in_system == 0 for s in grid.sites.values())

    def test_expiry_frees_no_processor_it_never_held(self):
        # After an expiry, the site keeps granting processors correctly.
        policy = OverloadPolicy(job_deadline_s=50.0)
        sim, grid = make_grid(policy=policy)
        grid.submit(job(0, runtime_s=200.0))
        grid.submit(job(1, runtime_s=200.0))  # expires at t=50
        sim.run()
        third = job(2, runtime_s=10.0)
        grid.submit(third)
        sim.run()
        assert third.state is JobState.COMPLETED

    def test_job_level_deadline_overrides_policy(self):
        policy = OverloadPolicy(job_deadline_s=50.0)
        sim, grid = make_grid(policy=policy)
        patient = job(1, runtime_s=10.0)
        patient.deadline_s = 10_000.0
        grid.submit(job(0, runtime_s=200.0))
        grid.submit(patient)
        sim.run()
        assert patient.state is JobState.COMPLETED

    def test_zero_deadline_means_none(self):
        policy = OverloadPolicy(queue_capacity=50)  # non-null, no deadline
        sim, grid = make_grid(policy=policy)
        grid.submit(job(0, runtime_s=5_000.0))
        waiter = job(1, runtime_s=5_000.0)
        grid.submit(waiter)
        sim.run()
        assert waiter.state is JobState.COMPLETED

    def test_dispatch_mode_expiry_withdraws_pending_entry(self):
        policy = OverloadPolicy(job_deadline_s=50.0)
        sim, grid = make_grid(policy=policy,
                              local_scheduler=DataAwareFIFOScheduler())
        first, second = job(0, runtime_s=200.0), job(1, runtime_s=200.0)
        grid.submit(first)
        grid.submit(second)
        site = grid.sites["site00"]
        assert site.load == 2  # dispatch-mode load counts pending entries
        sim.run(until=sim.timeout(60.0))
        assert second.state is JobState.EXPIRED
        # The dead entry left the pending queue: only the running first
        # job remains anywhere in the site.
        assert site.load == 0
        sim.run()
        assert first.state is JobState.COMPLETED
        assert grid.overload_stats.jobs_expired == 1
        assert all(s.jobs_in_system == 0 for s in grid.sites.values())


class TestAging:
    def run_order(self, aging_factor):
        policy = OverloadPolicy(aging_factor=aging_factor) \
            if aging_factor else OverloadPolicy(queue_capacity=50)
        sim, grid = make_grid(policy=policy,
                              local_scheduler=ShortestJobFirstScheduler())
        blocker = job(0, runtime_s=100.0)
        grid.submit(blocker)
        long_job = job(1, runtime_s=1_000.0)
        grid.submit(long_job)  # waits behind the blocker from t=0
        sim.run(until=sim.timeout(50.0))
        short_job = job(2, runtime_s=10.0)
        grid.submit(short_job)  # arrives later, much shorter
        sim.run()
        return long_job.processor_at, short_job.processor_at

    def test_sjf_without_aging_starves_the_long_job(self):
        long_at, short_at = self.run_order(aging_factor=0.0)
        assert short_at < long_at

    def test_aging_protects_the_earlier_long_job(self):
        # 50 s of head start at factor 100 outweighs the runtime gap.
        long_at, short_at = self.run_order(aging_factor=100.0)
        assert long_at < short_at


class _WedgedES:
    """A primary External Scheduler that never finds a candidate."""

    def select_site(self, job, grid):
        raise ValueError("no candidate sites")

    def __repr__(self):
        return "<WedgedES>"


class TestDegradedMode:
    def test_wedged_primary_falls_back_to_least_loaded(self):
        policy = OverloadPolicy(queue_capacity=50)
        sim, grid = make_grid(policy=policy,
                              external_scheduler=_WedgedES(),
                              tracer=Tracer())
        j = job(0)
        grid.submit(j)
        assert j.execution_site == "site00"  # least loaded, ties by name
        assert grid.overload_stats.degraded_dispatches == 1
        record = next(r for r in grid.tracer.records
                      if r.kind == "es.degraded")
        assert record.detail["es"] == "least-loaded"
        sim.run()
        assert j.state is JobState.COMPLETED

    def test_named_degraded_es_is_used(self):
        policy = OverloadPolicy(degraded_es="JobLocal")
        sim, grid = make_grid(policy=policy,
                              external_scheduler=_WedgedES(),
                              tracer=Tracer())
        j = job(0, origin="site02")
        grid.submit(j)
        assert j.execution_site == "site02"  # JobLocal honours the origin
        record = next(r for r in grid.tracer.records
                      if r.kind == "es.degraded")
        assert record.detail["es"] == "JobLocal"
        sim.run()
        assert j.state is JobState.COMPLETED

    def test_without_policy_a_wedged_primary_still_raises(self):
        sim, grid = make_grid(external_scheduler=_WedgedES())
        with pytest.raises(ValueError):
            grid.submit(job(0))


class TestRemoteRead:
    def make_tight_grid(self, remote_read_after=1):
        policy = OverloadPolicy(storage_reservations=True,
                                remote_read_after=remote_read_after)
        sim = Simulator()
        topology = Topology.star(3, 10.0)
        datasets = DatasetCollection([
            Dataset("local", 500),
            Dataset("remote", 550),
        ])
        grid = DataGrid.create(
            sim=sim,
            topology=topology,
            datasets=datasets,
            external_scheduler=JobLocal(),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataDoNothing(),
            site_processors={name: 1 for name in topology.sites},
            storage_capacity_mb=600,
            datamover_rng=random.Random(0),
            overload_policy=policy,
            tracer=Tracer(),
        )
        # The pinned primary leaves 100 MB free: "remote" can never land.
        grid.place_initial_replica("local", "site00")
        grid.place_initial_replica("remote", "site01")
        return sim, grid

    def test_pinned_fetch_degrades_to_streaming_read(self):
        sim, grid = self.make_tight_grid()
        j = Job(0, "user0", "site00", ["remote"], 100.0)
        process = grid.submit(j)
        done = sim.run(until=process)
        assert done is j and j.state is JobState.COMPLETED
        # The traffic was paid but nothing landed, nothing was pinned.
        assert j.fetched_mb == 550.0
        assert "remote" not in grid.storages["site00"]
        assert grid.overload_stats.remote_reads == 1
        record = next(r for r in grid.tracer.records
                      if r.kind == "fetch.remote")
        assert record.detail["size_mb"] == 550.0
        assert grid.storages["site00"].reserved_mb == 0

    def test_remote_read_marker_is_accounting_compatible(self):
        moved = RemoteReadMB(550.0)
        assert isinstance(moved, float)
        assert moved + 50.0 == 600.0


class TestReplicationSkipFull:
    def test_midflight_storage_full_is_counted_and_skipped(self):
        sim, grid = make_grid(tracer=Tracer())
        dm = grid.datamover

        def exploding_ensure(*args, **kwargs):
            raise StorageFullError("target pinned solid mid-push")
            yield  # pragma: no cover - makes this a generator

        dm._ensure = exploding_ensure
        moved = sim.run(until=dm.replicate("d0", "site00", "site03"))
        assert moved == 0.0
        assert dm.replications_skipped_full == 1
        assert dm.replications_skipped == 1
        record = next(r for r in grid.tracer.records
                      if r.kind == "replicate.skip")
        assert record.detail["reason"] == "storage-full"

    def test_clean_replication_does_not_touch_the_counter(self):
        sim, grid = make_grid()
        moved = sim.run(until=grid.datamover.replicate(
            "d0", "site00", "site03"))
        assert moved == 500.0
        assert grid.datamover.replications_skipped_full == 0

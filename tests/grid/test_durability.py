"""Unit tests for the data-durability layer.

Policy validation, corruption/quarantine mechanics, explicit replica
loss, the background scrubber, repair placement, RF re-establishment,
loss finality, the forgiven-unpin safety net, and the watchdog's
``catalog-durability`` invariant — all on the small 4-site star grid.
"""

import random

import pytest

from repro.grid import (
    DataGrid,
    Dataset,
    DatasetCollection,
    DurabilityManager,
    DurabilityPolicy,
)
from repro.grid.durability import make_placement
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.watchdog import InvariantViolation, Watchdog


def durable_grid(policy=None, tracer=None):
    """The conftest small grid, plus a manually installed manager."""
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
        Dataset("d2", 1500),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        tracer=tracer,
    )
    grid.place_initial_replicas(
        {"d0": "site00", "d1": "site01", "d2": "site02"})
    manager = DurabilityManager(sim, grid, policy or DurabilityPolicy())
    manager.install()
    return sim, grid, manager


def kinds(tracer):
    return [r.kind for r in tracer.records]


class TestPolicyValidation:
    def test_defaults_are_null(self):
        assert DurabilityPolicy().is_null

    def test_any_knob_breaks_nullness(self):
        assert not DurabilityPolicy(repair=True).is_null
        assert not DurabilityPolicy(scrub_interval_s=60.0).is_null
        assert not DurabilityPolicy(
            replication_factor=2, repair=True).is_null

    def test_rejects_zero_replication_factor(self):
        with pytest.raises(ValueError, match="replication factor"):
            DurabilityPolicy(replication_factor=0)

    def test_rejects_negative_scrub_interval(self):
        with pytest.raises(ValueError, match="scrub interval"):
            DurabilityPolicy(scrub_interval_s=-1.0)

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            DurabilityPolicy(placement="psychic")

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            DurabilityPolicy(repair_max_retries=-1)

    def test_rejects_backoff_cap_below_base(self):
        with pytest.raises(ValueError, match="backoff"):
            DurabilityPolicy(repair_backoff_base_s=100.0,
                             repair_backoff_cap_s=10.0)

    def test_rf_above_one_requires_repair(self):
        with pytest.raises(ValueError, match="repair=True"):
            DurabilityPolicy(replication_factor=2)

    def test_make_placement_rejects_unknown(self):
        with pytest.raises(ValueError, match="placement"):
            make_placement("psychic")


class TestCorruption:
    def test_corrupt_is_silent(self):
        tracer = Tracer()
        _, grid, manager = durable_grid(tracer=tracer)
        assert manager.corrupt("site00", "d0")
        # Catalog and storage still advertise the copy untouched.
        assert grid.catalog.has_replica("d0", "site00")
        assert "d0" in grid.storages["site00"]
        assert manager.is_corrupt("site00", "d0")
        assert kinds(tracer)[-1] == "replica.corrupted"
        assert manager.stats.replicas_corrupted == 1

    def test_corrupt_nonresident_is_noop(self):
        _, _, manager = durable_grid()
        assert not manager.corrupt("site03", "d0")
        assert manager.stats.replicas_corrupted == 0

    def test_double_corrupt_counts_once(self):
        _, _, manager = durable_grid()
        assert manager.corrupt("site00", "d0")
        assert not manager.corrupt("site00", "d0")
        assert manager.stats.replicas_corrupted == 1

    def test_verify_local_clean_copy_passes(self):
        _, grid, manager = durable_grid()
        assert manager.verify_local("site00", "d0")
        assert grid.catalog.has_replica("d0", "site00")
        assert manager.stats.verifications == 1
        assert manager.stats.replicas_quarantined == 0

    def test_verify_local_quarantines_corrupt_copy(self):
        tracer = Tracer()
        _, grid, manager = durable_grid(tracer=tracer)
        manager.corrupt("site00", "d0")
        assert not manager.verify_local("site00", "d0")
        # Quarantine = storage removal + catalog deregistration at once.
        assert "d0" not in grid.storages["site00"]
        assert not grid.catalog.has_replica("d0", "site00")
        assert not manager.is_corrupt("site00", "d0")
        assert manager.stats.replicas_quarantined == 1
        record = next(r for r in tracer.records
                      if r.kind == "replica.quarantined")
        assert record.detail["via"] == "access"

    def test_quarantine_removes_pinned_primary(self):
        # Pins protect from LRU eviction, not from the durability layer.
        _, grid, manager = durable_grid()
        assert grid.storages["site00"].is_pinned("d0")
        manager.corrupt("site00", "d0")
        assert not manager.verify_local("site00", "d0")
        assert "d0" not in grid.storages["site00"]

    def test_fresh_landing_clears_marker(self):
        _, _, manager = durable_grid()
        manager.corrupt("site00", "d0")
        manager.on_landed("site00", "d0")
        assert not manager.is_corrupt("site00", "d0")
        assert manager.verify_local("site00", "d0")


class TestTransferTaint:
    def test_untainted_snapshot_passes_even_if_marker_set_later(self):
        # The source rotted *after* the bytes left: the payload is clean.
        _, grid, manager = durable_grid()
        tainted = manager.source_taint("site00", "d0")
        manager.corrupt("site00", "d0")
        assert manager.verify_transfer("site00", "site03", "d0", tainted)
        assert "d0" in grid.storages["site00"]  # nothing quarantined

    def test_tainted_snapshot_quarantines_source(self):
        _, grid, manager = durable_grid()
        manager.corrupt("site00", "d0")
        tainted = manager.source_taint("site00", "d0")
        assert not manager.verify_transfer("site00", "site03", "d0",
                                           tainted)
        assert "d0" not in grid.storages["site00"]
        assert manager.stats.replicas_quarantined == 1

    def test_stale_taint_never_removes_healed_copy(self):
        # Marker cleared (fresh landing) between snapshot and verdict:
        # the delayed rejection must not touch the now-clean replica.
        _, grid, manager = durable_grid()
        manager.corrupt("site00", "d0")
        tainted = manager.source_taint("site00", "d0")
        manager.on_landed("site00", "d0")  # healed mid-flight
        assert not manager.verify_transfer("site00", "site03", "d0",
                                           tainted)
        assert "d0" in grid.storages["site00"]
        assert grid.catalog.has_replica("d0", "site00")
        assert manager.stats.replicas_quarantined == 0


class TestReplicaLoss:
    def test_lose_replica_is_loud(self):
        tracer = Tracer()
        _, grid, manager = durable_grid(tracer=tracer)
        assert manager.lose_replica("site01", "d1")
        assert "d1" not in grid.storages["site01"]
        assert not grid.catalog.has_replica("d1", "site01")
        assert manager.stats.replicas_lost == 1
        assert "replica.lost" in kinds(tracer)

    def test_lose_nonresident_is_noop(self):
        _, _, manager = durable_grid()
        assert not manager.lose_replica("site03", "d1")
        assert manager.stats.replicas_lost == 0

    def test_losing_last_replica_marks_dataset_lost(self):
        tracer = Tracer()
        _, _, manager = durable_grid(tracer=tracer)
        manager.lose_replica("site00", "d0")
        assert manager.is_lost("d0")
        assert manager.lost_datasets() == ["d0"]
        assert manager.stats.datasets_lost == 1
        assert kinds(tracer)[-3:] == [
            "replica.lost", "catalog.deregister", "dataset.lost"]

    def test_mark_lost_is_idempotent_and_final(self):
        _, _, manager = durable_grid()
        manager.mark_lost("d2")
        manager.mark_lost("d2")
        assert manager.stats.datasets_lost == 1
        assert manager.is_lost("d2")

    def test_quarantining_sole_copy_loses_dataset(self):
        _, _, manager = durable_grid()
        manager.corrupt("site02", "d2")
        assert not manager.verify_local("site02", "d2")
        assert manager.is_lost("d2")

    def test_job_outputs_are_not_managed(self):
        # Deregistering a name outside grid.datasets (a job output)
        # must never mark anything lost.
        _, grid, manager = durable_grid()
        grid.catalog.register("out-42", "site03", 10.0)
        grid.catalog.deregister("out-42", "site03")
        assert manager.stats.datasets_lost == 0
        assert manager.lost_datasets() == []


class TestScrubber:
    def test_scrub_finds_and_quarantines(self):
        tracer = Tracer()
        sim, grid, manager = durable_grid(
            policy=DurabilityPolicy(scrub_interval_s=600.0),
            tracer=tracer)
        manager.corrupt("site01", "d1")
        sim.run(until=601.0)
        assert manager.stats.scrub_passes == 1
        assert manager.stats.scrub_files_checked == 3
        assert "d1" not in grid.storages["site01"]
        record = next(r for r in tracer.records if r.kind == "scrub.pass")
        assert record.detail == {"checked": 3, "corrupt": 1}
        quarantine = next(r for r in tracer.records
                          if r.kind == "replica.quarantined")
        assert quarantine.detail["via"] == "scrub"

    def test_clean_scrub_counts_all_replicas(self):
        sim, _, manager = durable_grid(
            policy=DurabilityPolicy(scrub_interval_s=100.0))
        sim.run(until=350.0)
        assert manager.stats.scrub_passes == 3
        assert manager.stats.scrub_files_checked == 9
        assert manager.stats.replicas_quarantined == 0


class TestRepair:
    RF2 = DurabilityPolicy(replication_factor=2, repair=True)

    def test_initial_audit_reaches_target_factor(self):
        tracer = Tracer()
        sim, grid, manager = durable_grid(policy=self.RF2, tracer=tracer)
        sim.run(until=50_000.0)
        for name in ("d0", "d1", "d2"):
            assert grid.catalog.replica_count(name) == 2, name
        assert manager.stats.replicas_repaired == 3
        assert manager.stats.repairs_started == 3
        assert manager.stats.repairs_failed == 0
        assert kinds(tracer).count("repair.done") == 3

    def test_repaired_copies_are_pinned(self):
        sim, grid, _ = durable_grid(policy=self.RF2)
        sim.run(until=50_000.0)
        for name in ("d0", "d1", "d2"):
            for site in grid.catalog.locations(name):
                assert grid.storages[site].is_pinned(name), (name, site)

    def test_repair_traffic_accounted_separately(self):
        sim, grid, manager = durable_grid(policy=self.RF2)
        sim.run(until=50_000.0)
        moved = grid.transfers.mb_moved_by_purpose()
        assert moved.get("repair", 0.0) == 3000.0  # 500 + 1000 + 1500
        assert manager.stats.repair_bytes_mb == 3000.0
        assert manager.stats.mean_repair_latency_s > 0.0

    def test_loss_triggers_re_replication(self):
        sim, grid, manager = durable_grid(policy=self.RF2)
        sim.run(until=50_000.0)
        manager.lose_replica("site00", "d0")
        assert grid.catalog.replica_count("d0") == 1
        sim.run(until=100_000.0)
        assert grid.catalog.replica_count("d0") == 2
        assert not manager.is_lost("d0")

    def test_detection_only_mode_never_repairs(self):
        sim, grid, manager = durable_grid()  # repair off (default)
        manager.lose_replica("site01", "d1")
        sim.run(until=50_000.0)
        assert grid.catalog.replica_count("d1") == 0
        assert manager.stats.repairs_started == 0

    def test_no_repair_for_lost_dataset(self):
        sim, grid, manager = durable_grid(policy=self.RF2)
        sim.run(until=50_000.0)
        manager.lose_replica("site00", "d0")
        for site in list(grid.catalog.locations("d0")):
            manager.lose_replica(site, "d0")
        # The loss verdict belongs to the running repair campaign (a
        # copy could have been mid-wire); let it settle.
        sim.run(until=51_000.0)
        assert manager.is_lost("d0")
        before = manager.stats.repairs_started
        sim.run(until=100_000.0)
        assert manager.stats.repairs_started == before
        assert grid.catalog.replica_count("d0") == 0

    def test_candidate_pairs_exclude_holders_and_tight_storage(self):
        _, grid, manager = durable_grid()
        pairs = manager.candidate_pairs("d0")
        assert all(src == "site00" for src, _ in pairs)
        assert all(dst != "site00" for _, dst in pairs)
        # Shrink site03 below d0's size: it drops out of the pool.
        grid.storages["site03"].capacity_mb = 100.0
        assert all(dst != "site03"
                   for _, dst in manager.candidate_pairs("d0"))

    def test_corrupt_source_is_not_filtered(self):
        # No oracle leak: placement may pick a corrupt source; the
        # delivery checksum is what catches it.
        _, _, manager = durable_grid()
        manager.corrupt("site00", "d0")
        assert manager.candidate_pairs("d0")

    def test_forecast_placement_repairs_too(self):
        sim, grid, manager = durable_grid(
            policy=DurabilityPolicy(replication_factor=2, repair=True,
                                    placement="forecast"))
        sim.run(until=50_000.0)
        for name in ("d0", "d1", "d2"):
            assert grid.catalog.replica_count(name) == 2, name
        assert manager.repair.placement.name == "forecast"


class TestForgivenUnpins:
    def test_install_arms_every_storage(self):
        _, grid, _ = durable_grid()
        assert all(s.forgive_unpins for s in grid.storages.values())

    def test_unmatched_unpin_is_forgiven_when_armed(self):
        _, grid, _ = durable_grid()
        storage = grid.storages["site00"]
        storage.unpin("d0")  # the placement pin
        storage.unpin("d0")  # unmatched — forgiven, no error
        assert not storage.is_pinned("d0")

    def test_unmatched_unpin_raises_without_durability(self, small_grid):
        _, grid = small_grid
        storage = grid.storages["site00"]
        storage.unpin("d0")
        with pytest.raises(ValueError, match="not pinned"):
            storage.unpin("d0")


class TestWatchdogInvariant:
    def test_consistent_state_passes(self):
        sim, grid, manager = durable_grid()
        manager.lose_replica("site00", "d0")  # marked lost: consistent
        Watchdog(sim, grid).check_now()

    def test_missed_loss_is_flagged(self):
        sim, grid, manager = durable_grid()
        manager.lose_replica("site00", "d0")
        manager._lost.discard("d0")  # simulate a missed deregistration
        with pytest.raises(InvariantViolation,
                           match="catalog-durability") as excinfo:
            Watchdog(sim, grid).check_now()
        assert excinfo.value.invariant == "catalog-durability"

    def test_no_durability_no_check(self, small_grid):
        # Without the layer, zero replicas with no loss record is legal.
        sim, grid = small_grid
        grid.storages["site00"].remove("d0")
        grid.catalog.deregister("d0", "site00")
        Watchdog(sim, grid).check_now()

"""Negative-path guards: the full |states|² transition matrix.

Every ordered state pair is tried exactly once.  Pairs declared in
``TRANSITIONS`` must apply cleanly; every other pair must raise
:class:`IllegalTransition` carrying the job id, the attempted edge, and
the simulation time — and must leave the job's state untouched.
"""

import pytest

from repro.grid import IllegalTransition, Job, JobState, TransitionEngine
from repro.grid.lifecycle import TRANSITIONS, apply_transition

ALL_STATES = list(JobState)
ALL_PAIRS = [(src, dst) for src in ALL_STATES for dst in ALL_STATES]


def make_job(job_id=7):
    return Job(job_id=job_id, user="u", origin_site="s0",
               input_files=["f"], runtime_s=300)


def force_state(job, state):
    """Place a job in an arbitrary state without walking the chain."""
    job.state = state
    return job


def test_matrix_is_total():
    assert len(ALL_PAIRS) == len(ALL_STATES) ** 2
    # Canonical members only — the legacy aliases must not inflate it.
    assert len(ALL_STATES) == 12


@pytest.mark.parametrize(
    "src,dst", ALL_PAIRS,
    ids=[f"{src.value}->{dst.value}" for src, dst in ALL_PAIRS])
def test_every_pair(src, dst):
    job = force_state(make_job(), src)
    if (src, dst) in TRANSITIONS:
        edge = apply_transition(job, dst, 12.5)
        assert edge == TRANSITIONS[(src, dst)]
        assert job.state is dst
        return
    with pytest.raises(IllegalTransition) as excinfo:
        apply_transition(job, dst, 12.5)
    err = excinfo.value
    assert err.job_id == job.job_id
    assert err.src is src
    assert err.dst is dst
    assert err.time == 12.5
    assert f"{src.value} -> {dst.value}" in str(err)
    assert "t=12.500" in str(err)
    assert job.state is src, "a rejected transition must not change state"


def test_illegal_transition_is_a_value_error():
    # Callers that predate the engine catch ValueError; keep that working.
    assert issubclass(IllegalTransition, ValueError)


def test_terminal_states_are_absorbing_by_construction():
    terminal = {JobState.DONE, JobState.FAILED, JobState.SHED,
                JobState.EXPIRED, JobState.SPECULATED,
                JobState.ABANDONED_DATA_LOST}
    outgoing = {src for src, _ in TRANSITIONS}
    assert terminal.isdisjoint(outgoing)
    # And everything non-terminal has at least one way forward.
    assert outgoing == set(ALL_STATES) - terminal


class TestEngineRejection:
    """The engine path: rejection must leave bookkeeping untouched."""

    def test_rejected_edge_changes_nothing(self):
        engine = TransitionEngine()
        job = make_job()
        engine.register(job)
        before_counts = dict(engine.counts)
        before_applied = engine.transitions_applied
        with pytest.raises(IllegalTransition):
            engine.transition(job, JobState.RUNNING)
        assert engine.counts == before_counts
        assert engine.transitions_applied == before_applied
        assert job.state is JobState.WAITING
        assert engine.audit() == []

    def test_hooks_not_fired_on_rejection(self):
        engine = TransitionEngine()
        fired = []
        engine.hooks.append(
            lambda job, src, dst, edge, now: fired.append(edge))
        job = make_job()
        engine.register(job)
        with pytest.raises(IllegalTransition):
            engine.transition(job, JobState.DONE)
        assert fired == []
        engine.transition(job, JobState.READY)
        assert fired == ["submit"]


from repro.grid.lifecycle import LifecycleGuardError  # noqa: E402
from repro.sim.trace import Tracer  # noqa: E402


def traced_engine():
    tracer = Tracer()
    return TransitionEngine(tracer=tracer), tracer


class TestEngineBookkeeping:
    def test_register_is_idempotent_per_object(self):
        engine = TransitionEngine()
        job = make_job()
        engine.register(job)
        engine.register(job)
        assert engine.counts[JobState.WAITING] == 1

    def test_register_supersedes_reused_id(self):
        engine = TransitionEngine()
        first = make_job()
        engine.register(first)
        engine.transition(first, JobState.READY)
        second = make_job()  # same id, fresh object
        engine.register(second)
        assert engine.jobs[7] is second
        assert engine.counts[JobState.READY] == 0
        assert engine.counts[JobState.WAITING] == 1
        assert engine.audit() == []

    def test_jobs_in_returns_sorted_by_id(self):
        engine = TransitionEngine()
        for jid in (9, 3, 5):
            engine.register(make_job(job_id=jid))
        assert [j.job_id for j in engine.jobs_in(JobState.WAITING)] == \
            [3, 5, 9]

    def test_out_of_band_mutation_trips_conservation_guard(self):
        engine = TransitionEngine()
        job = make_job()
        engine.register(job)
        job.state = JobState.READY  # bypassing the engine: the old bug
        with pytest.raises(LifecycleGuardError, match="jobs-conserved"):
            engine.transition(job, JobState.DISPATCHED)

    def test_audit_reports_every_drift_kind(self):
        engine = TransitionEngine()
        job = make_job()
        engine.register(job)
        assert engine.audit() == []
        engine.by_state[JobState.WAITING].discard(job.job_id)
        engine.counts[JobState.WAITING] = 0
        engine.counts[JobState.DONE] = 1  # keep the sum right
        problems = engine.audit()
        assert any("missing from its state set" in p for p in problems)
        assert any("recount says" in p for p in problems)
        engine.counts[JobState.DONE] = 0
        assert any("are registered" in p for p in engine.audit())


class TestStarvationGuard:
    def _started_job(self, wait):
        job = make_job()
        job.state = JobState.FETCHING
        job.queued_at = 100.0
        job.processor_at = 100.0 + wait
        return job

    def test_grant_within_deadline_passes(self):
        engine = TransitionEngine()
        engine.deadline_of = lambda job: 50.0
        job = self._started_job(wait=49.0)
        engine.register(job)
        engine.transition(job, JobState.RUNNING)

    def test_grant_past_deadline_raises(self):
        engine = TransitionEngine()
        engine.deadline_of = lambda job: 50.0
        job = self._started_job(wait=51.0)
        engine.register(job)
        with pytest.raises(LifecycleGuardError, match="no-starvation"):
            engine.transition(job, JobState.RUNNING)

    def test_zero_deadline_means_no_guard(self):
        engine = TransitionEngine()
        engine.deadline_of = lambda job: 0.0
        job = self._started_job(wait=1e9)
        engine.register(job)
        engine.transition(job, JobState.RUNNING)


class TestTypedEdges:
    """Each typed helper drives its edge and owns its trace emission."""

    def test_happy_chain_emissions(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site01")
        engine.enqueue(job, "site01", waiting=2)
        engine.data_ready(job, "site01", fetched_mb=500.0)
        engine.start(job, "site01")
        engine.finish(job, "site01")
        assert [r.kind for r in tracer.records] == [
            "job.submit", "job.dispatch", "job.queue", "job.data_ready",
            "job.start", "job.finish"]
        assert job.state is JobState.DONE
        assert tracer.records[0].detail["inputs"] == ["f"]
        assert "deps" not in tracer.records[0].detail

    def test_submit_emits_deps_only_when_present(self):
        engine, tracer = traced_engine()
        job = make_job()
        job.depends_on = [3, 4]
        engine.submit(job)
        assert tracer.records[0].detail["deps"] == [3, 4]

    def test_dispatch_emits_attempt_only_on_retries(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site02", attempt=2)
        assert tracer.records[-1].kind == "job.dispatch"
        assert tracer.records[-1].detail["attempt"] == 2

    def test_expire_records_wait_and_reason(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site01")
        engine.enqueue(job, "site01", waiting=0)
        engine.expire(job, "site01", deadline_s=60.0)
        assert job.state is JobState.EXPIRED
        assert "queue deadline" in job.failure_reason
        assert tracer.records[-1].kind == "job.expired"
        assert tracer.records[-1].detail["deadline_s"] == 60.0

    def test_shed_fail_abandon_set_reasons(self):
        engine, tracer = traced_engine()
        shed = make_job(job_id=1)
        engine.submit(shed)
        engine.shed(shed, "queues saturated")
        failed = make_job(job_id=2)
        engine.submit(failed)
        engine.fail(failed, "no live site")
        orphan = make_job(job_id=3)
        engine.abandon(orphan, "dependency job 1 ended shed")
        assert shed.state is JobState.SHED
        assert failed.failure_reason == "no live site"
        assert orphan.state is JobState.FAILED
        assert orphan.failure_reason == "dependency job 1 ended shed"
        kinds = [r.kind for r in tracer.records]
        assert kinds == ["job.submit", "job.shed", "job.submit",
                         "job.fail", "job.fail"]

    def test_abandon_data_lost_takes_its_own_terminal_edge(self):
        engine, tracer = traced_engine()
        waiting = make_job(job_id=1)
        engine.submit(waiting)  # READY
        engine.abandon_data_lost(waiting, "f", "input dataset 'f' lost")
        assert waiting.state is JobState.ABANDONED_DATA_LOST
        assert waiting.failure_reason == "input dataset 'f' lost"
        record = tracer.records[-1]
        assert record.kind == "job.abandoned_data_lost"
        assert record.detail["dataset"] == "f"
        assert record.detail["reason"] == waiting.failure_reason

        parked = make_job(job_id=2)  # WAITING: never dispatched
        engine.register(parked)
        engine.abandon_data_lost(parked, "f", "lost before dispatch")
        assert parked.state is JobState.ABANDONED_DATA_LOST

        retrying = make_job(job_id=3)
        engine.submit(retrying)
        engine.dispatch(retrying, "site01")
        engine.enqueue(retrying, "site01", waiting=0)
        engine.kill(retrying, "site crashed")  # RETRYING
        engine.abandon_data_lost(retrying, "f", "lost mid-retry")
        assert retrying.state is JobState.ABANDONED_DATA_LOST

        # Terminal: no edge leads out, so a re-dispatch must be refused.
        with pytest.raises(IllegalTransition):
            engine.transition(waiting, JobState.READY)

    def test_kill_is_silent_then_retry_rewinds(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site01")
        engine.enqueue(job, "site01", waiting=0)
        before = len(tracer.records)
        engine.kill(job, "site crashed")
        assert len(tracer.records) == before  # kill emits nothing
        assert job.killed
        engine.retry(job)
        assert tracer.records[-1].kind == "job.retry"
        assert job.retries == 1
        assert job.execution_site is None
        assert job.queued_at is None

    def test_preempt_retires_the_race_loser(self):
        engine, tracer = traced_engine()
        clone = make_job(job_id=9)
        clone.speculative_of = 7
        engine.submit(clone)
        engine.dispatch(clone, "site02")
        engine.enqueue(clone, "site02", waiting=0)
        engine.start(clone, "site02")
        engine.preempt(clone, "site02", "primary finished first")
        assert clone.state is JobState.SPECULATED
        assert clone.completed_at is None
        assert tracer.records[-1].kind == "job.preempted_loser"
        assert tracer.records[-1].detail["primary"] == 7

    def test_preempt_works_mid_fetch(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site01")
        engine.enqueue(job, "site01", waiting=0)
        engine.preempt(job, "site01", "backup finished first")
        assert job.state is JobState.SPECULATED
        assert tracer.records[-1].detail["primary"] == job.job_id

    def test_concede_from_retry_backoff(self):
        """A dead attempt whose partner carries the job concedes the
        race instead of failing — from RETRYING (budget just ran out)
        or READY (parked in backoff when the partner completed)."""
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.dispatch(job, "site01")
        engine.enqueue(job, "site01", waiting=0)
        engine.kill(job, "site crashed")
        engine.concede(job, "retry budget exhausted; partner carries")
        assert job.state is JobState.SPECULATED
        assert tracer.records[-1].kind == "job.preempted_loser"
        assert "partner carries" in job.failure_reason

        parked = make_job(job_id=8)
        engine.submit(parked)
        engine.concede(parked, "speculation race lost")
        assert parked.state is JobState.SPECULATED

    def test_replacement_self_edges(self):
        engine, tracer = traced_engine()
        job = make_job()
        engine.submit(job)
        engine.bounce(job, origin="site01", site="site02")
        engine.deflect(job, origin="site02", site="site03")
        engine.redirect(job, chosen="site03", fallback="site00")
        engine.misdirected(job, "site01", missing=["d9"])
        assert job.state is JobState.READY
        assert (job.bounces, job.deflections) == (1, 1)
        assert [r.kind for r in tracer.records[-4:]] == [
            "job.bounced", "job.deflected", "job.redirect",
            "job.misdirected"]
        # Self-edges never disturb the counts.
        assert engine.counts[JobState.READY] == 1
        assert engine.audit() == []

"""Unit tests for workload trace export/import."""

import json
import random

import pytest

from repro.workload import WorkloadGenerator, load_workload, save_workload
from repro.workload.traces import workload_from_dict, workload_to_dict


@pytest.fixture
def workload():
    return WorkloadGenerator(
        n_users=6, n_datasets=10, n_jobs=30,
        sites=["site00", "site01", "site02"],
        rng=random.Random(0),
    ).generate()


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, workload):
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.initial_placement == workload.initial_placement
        assert restored.user_sites == workload.user_sites
        assert restored.datasets.names == workload.datasets.names
        for name in workload.datasets.names:
            assert restored.datasets.get(name).size_mb == \
                workload.datasets.get(name).size_mb
        for user in workload.users:
            orig = workload.user_jobs[user]
            back = restored.user_jobs[user]
            assert [j.job_id for j in back] == [j.job_id for j in orig]
            assert [j.input_files for j in back] == [
                j.input_files for j in orig]
            assert [j.runtime_s for j in back] == [j.runtime_s for j in orig]

    def test_file_round_trip(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_workload(workload, path)
        restored = load_workload(path)
        assert restored.n_jobs == workload.n_jobs
        assert restored.user_sites == workload.user_sites

    def test_trace_is_plain_json(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_workload(workload, path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert len(data["datasets"]) == 10

    def test_restored_jobs_are_fresh(self, workload):
        job = workload.user_jobs[workload.users[0]][0]
        job.submitted_at = 55.0
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.user_jobs[workload.users[0]][0].submitted_at is None


class TestVersioning:
    def test_unknown_version_rejected(self, workload):
        data = workload_to_dict(workload)
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            workload_from_dict(data)

    def test_missing_version_rejected(self, workload):
        data = workload_to_dict(workload)
        del data["version"]
        with pytest.raises(ValueError, match="version"):
            workload_from_dict(data)


class TestDagRoundTrip:
    def test_plain_workloads_serialize_without_deps_key(self, workload):
        data = workload_to_dict(workload)
        for jobs in data["user_jobs"].values():
            assert all("depends_on" not in j for j in jobs)

    def test_dependencies_survive_the_round_trip(self):
        workload = WorkloadGenerator(
            n_users=6, n_datasets=10, n_jobs=30,
            sites=["site00", "site01", "site02"],
            rng=random.Random(0), dag_shape="diamond",
        ).generate()
        restored = workload_from_dict(workload_to_dict(workload))
        for user in workload.users:
            assert [j.depends_on for j in restored.user_jobs[user]] == \
                [j.depends_on for j in workload.user_jobs[user]]

"""Unit tests for the workload generator."""

import random

import pytest

from repro.workload import UniformPopularity, WorkloadGenerator


def make_generator(**kw):
    defaults = dict(
        n_users=12,
        n_datasets=20,
        n_jobs=120,
        sites=[f"site{i:02d}" for i in range(4)],
        rng=random.Random(0),
    )
    defaults.update(kw)
    return WorkloadGenerator(**defaults)


class TestValidation:
    def test_fewer_jobs_than_users_rejected(self):
        with pytest.raises(ValueError):
            make_generator(n_users=10, n_jobs=5)

    def test_no_sites_rejected(self):
        with pytest.raises(ValueError):
            make_generator(sites=[])

    def test_bad_inputs_per_job(self):
        with pytest.raises(ValueError):
            make_generator(inputs_per_job=0)
        with pytest.raises(ValueError):
            make_generator(inputs_per_job=21)  # > n_datasets

    def test_popularity_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_generator(popularity=UniformPopularity(99))

    def test_nonpositive_compute_rate_rejected(self):
        with pytest.raises(ValueError):
            make_generator(compute_seconds_per_gb=0)


class TestGenerate:
    def test_counts(self):
        wl = make_generator().generate()
        assert len(wl.datasets) == 20
        assert len(wl.user_sites) == 12
        assert wl.n_jobs == 120
        assert wl.users == sorted(wl.users)

    def test_users_mapped_round_robin(self):
        wl = make_generator().generate()
        # 12 users over 4 sites -> exactly 3 per site.
        per_site = {}
        for site in wl.user_sites.values():
            per_site[site] = per_site.get(site, 0) + 1
        assert set(per_site.values()) == {3}

    def test_jobs_split_evenly_with_remainder(self):
        wl = make_generator(n_jobs=125).generate()
        sizes = sorted(len(j) for j in wl.user_jobs.values())
        assert sizes == [10] * 7 + [11] * 5

    def test_runtime_follows_paper_formula(self):
        wl = make_generator().generate()
        for jobs in wl.user_jobs.values():
            for job in jobs:
                expected = 300.0 * sum(
                    wl.datasets.get(f).size_gb for f in job.input_files)
                assert job.runtime_s == pytest.approx(expected)

    def test_single_input_by_default(self):
        wl = make_generator().generate()
        for jobs in wl.user_jobs.values():
            assert all(len(j.input_files) == 1 for j in jobs)

    def test_multi_input_extension(self):
        wl = make_generator(inputs_per_job=3).generate()
        for jobs in wl.user_jobs.values():
            for job in jobs:
                assert len(job.input_files) == 3
                assert len(set(job.input_files)) == 3  # no duplicates

    def test_job_ids_unique_and_dense(self):
        wl = make_generator().generate()
        ids = sorted(
            j.job_id for jobs in wl.user_jobs.values() for j in jobs)
        assert ids == list(range(120))

    def test_origin_site_matches_user_site(self):
        wl = make_generator().generate()
        for user, jobs in wl.user_jobs.items():
            assert all(j.origin_site == wl.user_sites[user] for j in jobs)

    def test_placement_covers_all_datasets(self):
        wl = make_generator().generate()
        assert set(wl.initial_placement) == set(wl.datasets.names)

    def test_deterministic_for_seed(self):
        wl1 = make_generator(rng=random.Random(5)).generate()
        wl2 = make_generator(rng=random.Random(5)).generate()
        assert wl1.initial_placement == wl2.initial_placement
        for user in wl1.users:
            files1 = [j.input_files for j in wl1.user_jobs[user]]
            files2 = [j.input_files for j in wl2.user_jobs[user]]
            assert files1 == files2


class TestWorkloadHelpers:
    def test_request_counts_total(self):
        wl = make_generator().generate()
        assert sum(wl.request_counts().values()) == 120

    def test_total_input_mb(self):
        wl = make_generator().generate()
        expected = sum(
            wl.datasets.get(j.input_files[0]).size_mb
            for jobs in wl.user_jobs.values() for j in jobs)
        assert wl.total_input_mb() == pytest.approx(expected)

    def test_fresh_resets_job_objects(self):
        wl = make_generator().generate()
        job = wl.user_jobs[wl.users[0]][0]
        job.submitted_at = 123.0  # simulate a used workload
        fresh = wl.fresh()
        fresh_job = fresh.user_jobs[wl.users[0]][0]
        assert fresh_job is not job
        assert fresh_job.submitted_at is None
        assert fresh_job.job_id == job.job_id
        assert fresh_job.input_files == job.input_files
        assert fresh.datasets is wl.datasets  # immutable, shared


class TestDagShapes:
    def test_default_has_no_dependencies(self):
        workload = make_generator().generate()
        assert all(job.depends_on == []
                   for jobs in workload.user_jobs.values() for job in jobs)

    def test_shape_wires_each_user_independently(self):
        workload = make_generator(dag_shape="diamond").generate()
        for user, jobs in workload.user_jobs.items():
            ids = {job.job_id for job in jobs}
            deps = [d for job in jobs for d in job.depends_on]
            assert deps, f"{user} got no dependencies"
            assert set(deps) <= ids, "dependencies crossed users"

    def test_fresh_copies_dependencies(self):
        workload = make_generator(dag_shape="mapreduce").generate()
        fresh = workload.fresh()
        for user in workload.users:
            for a, b in zip(workload.user_jobs[user],
                            fresh.user_jobs[user]):
                assert a.depends_on == b.depends_on
                assert a.depends_on is not b.depends_on

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown DAG shape"):
            make_generator(dag_shape="butterfly")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="width must be >= 1"):
            make_generator(dag_width=0)

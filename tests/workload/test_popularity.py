"""Unit and property tests for popularity models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    GeometricPopularity,
    UniformPopularity,
    ZipfPopularity,
    make_popularity_model,
)


class TestGeometric:
    def test_pmf_sums_to_one(self):
        model = GeometricPopularity(200, p=0.05)
        assert sum(model.pmf()) == pytest.approx(1.0)

    def test_pmf_strictly_decreasing(self):
        pmf = GeometricPopularity(100, p=0.05).pmf()
        assert all(a > b for a, b in zip(pmf[:-1], pmf[1:]))

    def test_samples_in_range(self):
        model = GeometricPopularity(50, p=0.1)
        rng = random.Random(0)
        for _ in range(2000):
            assert 0 <= model.sample(rng) < 50

    def test_rank_zero_most_frequent(self):
        model = GeometricPopularity(50, p=0.1)
        rng = random.Random(0)
        counts = [0] * 50
        for _ in range(20_000):
            counts[model.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[10] > counts[40]

    def test_empirical_matches_pmf(self):
        model = GeometricPopularity(20, p=0.2)
        rng = random.Random(1)
        n = 50_000
        counts = [0] * 20
        for _ in range(n):
            counts[model.sample(rng)] += 1
        for k, p in enumerate(model.pmf()):
            assert counts[k] / n == pytest.approx(p, abs=0.01)

    def test_invalid_p(self):
        for bad in (0, 1, -0.5, 2):
            with pytest.raises(ValueError):
                GeometricPopularity(10, p=bad)

    def test_expected_counts_scale(self):
        model = GeometricPopularity(10, p=0.3)
        counts = model.expected_counts(1000)
        assert sum(counts) == pytest.approx(1000)


class TestZipf:
    def test_pmf_sums_to_one(self):
        assert sum(ZipfPopularity(100, alpha=1.0).pmf()) == pytest.approx(1.0)

    def test_rank_ratio_follows_power_law(self):
        pmf = ZipfPopularity(100, alpha=1.0).pmf()
        assert pmf[0] / pmf[9] == pytest.approx(10.0)

    def test_samples_in_range(self):
        model = ZipfPopularity(30, alpha=1.5)
        rng = random.Random(0)
        assert all(0 <= model.sample(rng) < 30 for _ in range(2000))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZipfPopularity(10, alpha=0)


class TestUniform:
    def test_flat_pmf(self):
        pmf = UniformPopularity(10).pmf()
        assert pmf == [0.1] * 10

    def test_roughly_even_samples(self):
        model = UniformPopularity(5)
        rng = random.Random(0)
        counts = [0] * 5
        for _ in range(10_000):
            counts[model.sample(rng)] += 1
        for c in counts:
            assert c == pytest.approx(2000, rel=0.15)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("geometric", GeometricPopularity),
        ("zipf", ZipfPopularity),
        ("uniform", UniformPopularity),
    ])
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_popularity_model(name, 10), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_popularity_model("pareto", 10)

    def test_zero_items_rejected(self):
        with pytest.raises(ValueError):
            make_popularity_model("uniform", 0)


@given(
    n=st.integers(min_value=1, max_value=300),
    p=st.floats(min_value=0.001, max_value=0.999),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60)
def test_geometric_samples_always_in_range(n, p, seed):
    model = GeometricPopularity(n, p=p)
    rng = random.Random(seed)
    for _ in range(100):
        assert 0 <= model.sample(rng) < n


@given(
    n=st.integers(min_value=1, max_value=200),
    alpha=st.floats(min_value=0.1, max_value=3.0),
)
@settings(max_examples=40)
def test_pmfs_are_distributions(n, alpha):
    for model in (GeometricPopularity(n, p=0.05),
                  ZipfPopularity(n, alpha=alpha),
                  UniformPopularity(n)):
        pmf = model.pmf()
        assert len(pmf) == n
        assert all(p >= 0 for p in pmf)
        assert sum(pmf) == pytest.approx(1.0)

"""The shared BackoffPolicy helper (satellite of the health layer).

Pins the formula every recovery loop now shares — capped exponential
with optional seeded jitter — and its compatibility guarantees: with
jitter off it reproduces the data mover's historical schedule exactly,
and with base == cap it degenerates to the supervisor's constant delay.
"""

import random

import pytest

from repro.faults.backoff import BackoffPolicy


class TestSchedule:
    def test_classic_doubling_capped(self):
        policy = BackoffPolicy(10.0, 300.0)
        assert policy.schedule(7) == [10.0, 20.0, 40.0, 80.0, 160.0,
                                      300.0, 300.0]

    def test_matches_historical_datamover_formula(self):
        policy = BackoffPolicy(10.0, 300.0)
        for attempt in range(1, 20):
            assert policy.delay(attempt) == min(
                10.0 * 2 ** (attempt - 1), 300.0)

    def test_constant_delay_when_base_equals_cap(self):
        policy = BackoffPolicy(5.0, 5.0)
        assert policy.schedule(6) == [5.0] * 6

    def test_custom_factor(self):
        policy = BackoffPolicy(1.0, 100.0, factor=3.0)
        assert policy.schedule(4) == [1.0, 3.0, 9.0, 27.0]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            BackoffPolicy(1.0, 2.0).delay(0)


class TestJitter:
    def test_jitter_is_deterministic_per_seed(self):
        policy = BackoffPolicy(10.0, 300.0, jitter=0.2)
        first = policy.schedule(8, rng=random.Random(42))
        second = policy.schedule(8, rng=random.Random(42))
        assert first == second

    def test_different_seeds_differ(self):
        policy = BackoffPolicy(10.0, 300.0, jitter=0.2)
        assert (policy.schedule(8, rng=random.Random(1))
                != policy.schedule(8, rng=random.Random(2)))

    def test_jitter_bounded(self):
        policy = BackoffPolicy(10.0, 300.0, jitter=0.25)
        rng = random.Random(7)
        for attempt in range(1, 30):
            base = min(10.0 * 2 ** (attempt - 1), 300.0)
            value = policy.delay(attempt, rng=rng)
            assert 0.75 * base <= value <= 1.25 * base

    def test_zero_jitter_never_touches_the_rng(self):
        rng = random.Random(3)
        before = rng.getstate()
        BackoffPolicy(10.0, 300.0).schedule(10, rng=rng)
        assert rng.getstate() == before

    def test_jitter_without_rng_is_an_error(self):
        with pytest.raises(ValueError, match="seeded rng"):
            BackoffPolicy(10.0, 300.0, jitter=0.1).delay(1)


class TestValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            BackoffPolicy(-1.0, 10.0)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            BackoffPolicy(10.0, 5.0)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            BackoffPolicy(1.0, 10.0, factor=0.5)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(1.0, 10.0, jitter=1.0)

"""Unit tests for the FaultInjector against a small wired grid."""

import random

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkDegradation, SiteOutage
from repro.grid import DataGrid, Dataset, DatasetCollection
from repro.grid.datamover import DataUnavailableError
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def make_grid(plan=None, fault_seed=0):
    """A 4-site star grid, optionally built with a fault plan installed."""
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500),
        Dataset("d1", 1000),
    ])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(0),
        fault_plan=plan,
        fault_rng=random.Random(fault_seed) if plan is not None else None,
    )
    grid.place_initial_replicas({"d0": "site00", "d1": "site01"})
    return sim, grid


class TestInstallation:
    def test_null_plan_installs_nothing(self):
        _, grid = make_grid(FaultPlan.none())
        assert grid.faults is None
        assert grid.datamover.faults is None
        assert all(s.faults is None for s in grid.sites.values())

    def test_injector_rejects_null_plan(self):
        sim, grid = make_grid()
        with pytest.raises(ValueError, match="null fault plan"):
            FaultInjector(sim, grid, FaultPlan.none())

    def test_active_plan_wires_every_layer(self):
        _, grid = make_grid(FaultPlan(transfer_fail_prob=0.5))
        assert grid.faults is not None
        assert grid.datamover.faults is grid.faults
        assert all(s.faults is grid.faults for s in grid.sites.values())

    def test_unknown_site_rejected(self):
        plan = FaultPlan(site_outages=[SiteOutage("nowhere", 0.0, 10.0)])
        with pytest.raises(ValueError, match="unknown site"):
            make_grid(plan)

    def test_unknown_link_rejected(self):
        plan = FaultPlan(
            link_degradations=[LinkDegradation("site00", "site01", 0, 9, 0.5)])
        with pytest.raises(ValueError, match="nonexistent link"):
            make_grid(plan)


class TestScriptedOutages:
    def test_window_takes_site_down_and_back(self):
        plan = FaultPlan(site_outages=[SiteOutage("site02", 100.0, 400.0)])
        sim, grid = make_grid(plan)
        faults = grid.faults
        assert faults.is_up("site02")
        sim.run(until=200.0)
        assert not faults.is_up("site02")
        assert "site02" not in grid.info.site_names
        sim.run(until=500.0)
        assert faults.is_up("site02")
        assert "site02" in grid.info.site_names

    def test_downtime_accounting_closed_window(self):
        plan = FaultPlan(site_outages=[SiteOutage("site02", 100.0, 400.0)])
        sim, grid = make_grid(plan)
        sim.run(until=1000.0)
        downtime = grid.faults.downtime_per_site()
        assert downtime["site02"] == pytest.approx(300.0)
        assert downtime["site00"] == 0.0
        assert grid.faults.total_downtime_s() == pytest.approx(300.0)

    def test_downtime_accounting_open_window(self):
        plan = FaultPlan(site_outages=[SiteOutage("site02", 100.0)])
        sim, grid = make_grid(plan)
        sim.run(until=600.0)
        assert grid.faults.downtime_per_site()["site02"] == pytest.approx(500.0)
        # Explicit horizon clips the open window.
        assert grid.faults.downtime_per_site(horizon=300.0)["site02"] == \
            pytest.approx(200.0)

    def test_permanent_outage_invalidates_catalog_and_storage(self):
        plan = FaultPlan(site_outages=[SiteOutage("site01", 100.0)])
        sim, grid = make_grid(plan)
        assert grid.catalog.has_replica("d1", "site01")
        sim.run(until=200.0)
        faults = grid.faults
        assert "site01" in faults.dead
        assert not faults.is_up("site01")
        assert not grid.catalog.has_replica("d1", "site01")
        assert grid.storages["site01"].files == []
        assert faults.replicas_invalidated == 1

    def test_outage_aborts_touching_transfers(self):
        plan = FaultPlan(site_outages=[SiteOutage("site00", 10.0, 1000.0)])
        sim, grid = make_grid(plan)
        # d0: 500 MB from site00 over two 10 MB/s hops -> 50 s unfaulted.
        fetch = grid.datamover.ensure_local("site02", "d0", best_effort=True)
        sim.run(until=fetch)
        assert grid.transfers.n_aborted >= 1
        assert fetch.value == 0.0  # best-effort fetch gave up
        assert "d0" not in grid.storages["site02"]


class TestOutageMechanics:
    def test_take_down_twice_is_noop(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        faults = grid.faults
        assert faults.take_site_down("site03")
        assert not faults.take_site_down("site03")
        assert faults.outages_started == 1

    def test_bring_up_requires_down(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        assert not grid.faults.bring_site_up("site03")

    def test_dead_site_never_comes_back(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        faults = grid.faults
        faults.take_site_down("site03", permanent=True)
        assert not faults.bring_site_up("site03")
        assert not faults.is_up("site03")

    def test_recovery_event_fires_on_repair(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        faults = grid.faults
        faults.take_site_down("site03")
        event = faults.recovery_event()
        assert not event.triggered
        faults.bring_site_up("site03")
        assert event.triggered

    def test_fallback_site_avoids_down_sites(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        faults = grid.faults
        for name in ("site00", "site01", "site02"):
            faults.take_site_down(name)
        assert faults.fallback_site() == "site03"

    def test_grid_lost_wakes_waiters(self):
        sim, grid = make_grid(FaultPlan(transfer_fail_prob=0.1))
        faults = grid.faults
        for name in ("site00", "site01", "site02"):
            faults.take_site_down(name, permanent=True)
        event = faults.recovery_event()
        assert not faults.grid_lost
        faults.take_site_down("site03", permanent=True)
        assert faults.grid_lost
        assert not faults.any_site_up()
        assert event.triggered  # parked supervisors must be able to bail out


class TestMtbfOutages:
    def test_mtbf_loop_produces_outages(self):
        plan = FaultPlan(site_mtbf_s=2000.0, site_mttr_s=500.0)
        sim, grid = make_grid(plan)
        sim.run(until=50_000.0)
        assert grid.faults.outages_started > 0
        assert grid.faults.total_downtime_s() > 0

    def test_mtbf_outages_deterministic_per_seed(self):
        plan = FaultPlan(site_mtbf_s=2000.0, site_mttr_s=500.0)

        def observe(fault_seed):
            sim, grid = make_grid(plan, fault_seed=fault_seed)
            sim.run(until=50_000.0)
            return (grid.faults.outages_started,
                    grid.faults.downtime_per_site())

        assert observe(1) == observe(1)
        assert observe(1) != observe(2)


class TestLinkDegradation:
    def test_window_scales_and_restores_capacity(self):
        plan = FaultPlan(
            link_degradations=[
                LinkDegradation("site00", "hub", 100.0, 400.0, 0.25)])
        sim, grid = make_grid(plan)
        link = grid.topology.link_between("site00", "hub")
        assert link.capacity_mbps == 10.0
        sim.run(until=200.0)
        assert link.capacity_mbps == pytest.approx(2.5)
        assert link.base_capacity_mbps == 10.0  # undegraded rating kept
        sim.run(until=500.0)
        assert link.capacity_mbps == 10.0

    def test_dead_link_stalls_transfer_until_failover(self):
        # The only route to d0 crosses a dead link; the fetch must abort on
        # timeout and eventually give up (no alternate replica exists).
        plan = FaultPlan(
            link_degradations=[
                LinkDegradation("site00", "hub", 0.0, 1e9, 0.0)],
            transfer_max_retries=1,
            transfer_backoff_base_s=1.0,
            transfer_backoff_cap_s=1.0,
            transfer_timeout_min_s=60.0,
        )
        sim, grid = make_grid(plan)
        fetch = grid.datamover.ensure_local("site02", "d0")
        with pytest.raises(DataUnavailableError):
            sim.run(until=fetch)
        assert grid.datamover.transfers_failed >= 1


class TestTransferSabotage:
    def test_certain_drop_aborts_every_attempt(self):
        plan = FaultPlan(
            transfer_fail_prob=1.0,
            transfer_max_retries=2,
            transfer_backoff_base_s=1.0,
            transfer_backoff_cap_s=1.0,
        )
        sim, grid = make_grid(plan)
        fetch = grid.datamover.ensure_local("site02", "d0")
        with pytest.raises(DataUnavailableError):
            sim.run(until=fetch)
        assert grid.transfers.n_aborted == 3  # initial try + 2 retries
        assert grid.datamover.transfers_failed == 3

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(site_outages=[SiteOutage("site03", 1e8, 1e9)])
        sim, grid = make_grid(plan)  # active plan, but no drops configured
        fetch = grid.datamover.ensure_local("site02", "d0")
        moved = sim.run(until=fetch)
        assert moved == 500
        assert grid.transfers.n_aborted == 0

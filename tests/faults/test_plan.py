"""Unit tests for FaultPlan: validation, nullness, hashing, JSON."""

import pytest

from repro.faults.plan import FaultPlan, LinkDegradation, SiteOutage


class TestSiteOutage:
    def test_finite_window(self):
        outage = SiteOutage("site00", 100.0, 500.0)
        assert not outage.permanent

    def test_default_end_is_permanent(self):
        assert SiteOutage("site00", 100.0).permanent

    @pytest.mark.parametrize("end", [None, "inf", "Infinity", "permanent"])
    def test_permanent_spellings(self, end):
        assert SiteOutage("site00", 0.0, end).permanent

    def test_numeric_string_end(self):
        assert SiteOutage("site00", 0.0, "250.5").end_s == 250.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="starts in the past"):
            SiteOutage("site00", -1.0, 10.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="ends .* before it starts"):
            SiteOutage("site00", 100.0, 50.0)


class TestLinkDegradation:
    def test_valid(self):
        deg = LinkDegradation("a", "b", 0.0, 10.0, 0.5)
        assert deg.factor == 0.5

    @pytest.mark.parametrize("factor", [-0.1, 1.0, 2.0])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError, match="factor"):
            LinkDegradation("a", "b", 0.0, 10.0, factor)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            LinkDegradation("a", "b", 10.0, 5.0, 0.5)


class TestFaultPlanNullness:
    def test_default_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan.none().is_null

    def test_each_fault_source_breaks_nullness(self):
        assert not FaultPlan(
            site_outages=[SiteOutage("s", 0.0, 1.0)]).is_null
        assert not FaultPlan(
            link_degradations=[LinkDegradation("a", "b", 0, 1, 0.5)]).is_null
        assert not FaultPlan(transfer_fail_prob=0.1).is_null
        assert not FaultPlan(site_mtbf_s=1000.0).is_null

    def test_recovery_knobs_alone_keep_plan_null(self):
        # Tuning how recovery *would* behave injects nothing.
        assert FaultPlan(job_max_retries=3, transfer_backoff_base_s=1.0).is_null


class TestFaultPlanValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(transfer_fail_prob=1.5)

    def test_rejects_negative_mtbf(self):
        with pytest.raises(ValueError, match="MTBF"):
            FaultPlan(site_mtbf_s=-1.0)

    def test_rejects_zero_mttr(self):
        with pytest.raises(ValueError, match="MTTR"):
            FaultPlan(site_mttr_s=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retry"):
            FaultPlan(job_max_retries=-1)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError, match="backoff"):
            FaultPlan(transfer_backoff_base_s=100.0,
                      transfer_backoff_cap_s=10.0)


class TestFaultPlanValueSemantics:
    def test_coerces_dicts_and_lists(self):
        plan = FaultPlan(
            site_outages=[{"site": "site00", "start_s": 0.0, "end_s": 10.0}],
            link_degradations=[
                {"a": "x", "b": "y", "start_s": 0, "end_s": 1, "factor": 0.2}],
        )
        assert isinstance(plan.site_outages, tuple)
        assert isinstance(plan.site_outages[0], SiteOutage)
        assert isinstance(plan.link_degradations[0], LinkDegradation)

    def test_hashable_and_equal(self):
        a = FaultPlan(site_outages=[SiteOutage("s", 1.0, 2.0)], seed=7)
        b = FaultPlan(site_outages=[SiteOutage("s", 1.0, 2.0)], seed=7)
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_with_replaces_fields(self):
        plan = FaultPlan.none().with_(transfer_fail_prob=0.3, seed=9)
        assert plan.transfer_fail_prob == 0.3
        assert plan.seed == 9
        assert FaultPlan.none().transfer_fail_prob == 0.0


class TestFaultPlanSerialization:
    def plan(self):
        return FaultPlan(
            site_outages=[SiteOutage("site00", 10.0, 20.0),
                          SiteOutage("site01", 30.0)],  # permanent
            link_degradations=[
                LinkDegradation("site00", "hub", 0.0, 5.0, 0.25)],
            transfer_fail_prob=0.1,
            site_mtbf_s=5000.0,
            seed=3,
        )

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_json_dict_is_strict_json(self):
        import json
        blob = json.dumps(self.plan().to_json_dict(), allow_nan=False)
        assert "Infinity" not in blob  # inf encoded as null, not a literal

    def test_save_load(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_json_dict({"site_mtbf": 100.0})


from repro.faults.plan import (  # noqa: E402
    FaultPlanError,
    OutageGroup,
    ReplicaCorruption,
    ReplicaLoss,
)


class TestDurabilityFaultValidation:
    def test_valid_events(self):
        assert ReplicaCorruption("site00", "d0", 100.0).time_s == 100.0
        assert ReplicaLoss("site01", "d1", 0.0).dataset == "d1"

    def test_rejects_corruption_in_the_past(self):
        with pytest.raises(FaultPlanError, match="replica_corruptions"):
            ReplicaCorruption("site00", "d0", -1.0)

    def test_rejects_loss_in_the_past(self):
        with pytest.raises(FaultPlanError, match="replica_losses"):
            ReplicaLoss("site00", "d0", -1.0)

    def test_rejects_negative_corruption_mtbf(self):
        with pytest.raises(FaultPlanError, match="corruption_mtbf_s"):
            FaultPlan(corruption_mtbf_s=-5.0)

    def test_rejects_sites_without_mtbf(self):
        with pytest.raises(FaultPlanError, match="corruption_sites"):
            FaultPlan(corruption_sites=("site00",))

    def test_rejects_duplicate_corruption_sites(self):
        with pytest.raises(FaultPlanError, match="twice"):
            FaultPlan(corruption_mtbf_s=100.0,
                      corruption_sites=("site00", "site00"))

    def test_rejects_inverted_corruption_window(self):
        with pytest.raises(FaultPlanError, match="corruption_end_s"):
            FaultPlan(corruption_mtbf_s=100.0,
                      corruption_start_s=500.0, corruption_end_s=100.0)

    def test_fault_plan_error_is_structured(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan(corruption_mtbf_s=-5.0)
        assert excinfo.value.field == "corruption_mtbf_s"
        assert isinstance(excinfo.value, ValueError)


class TestDurabilityFaultNullness:
    def test_each_durability_source_breaks_nullness(self):
        assert not FaultPlan(
            replica_corruptions=(ReplicaCorruption("s", "d", 1.0),)).is_null
        assert not FaultPlan(
            replica_losses=(ReplicaLoss("s", "d", 1.0),)).is_null
        assert not FaultPlan(corruption_mtbf_s=3600.0).is_null

    def test_has_durability_faults(self):
        assert not FaultPlan().has_durability_faults
        assert not FaultPlan(site_mtbf_s=100.0).has_durability_faults
        assert FaultPlan(corruption_mtbf_s=1.0).has_durability_faults
        assert FaultPlan(
            replica_losses=(ReplicaLoss("s", "d", 1.0),)
        ).has_durability_faults


class TestDurabilityFaultSerialization:
    def plan(self):
        return FaultPlan(
            replica_corruptions=(ReplicaCorruption("site00", "d0", 600.0),
                                 ReplicaCorruption("site01", "d1", 900.0)),
            replica_losses=(ReplicaLoss("site02", "d2", 1200.0),),
            outage_groups=(OutageGroup(("site00", "site01"), 3000.0),),
            corruption_mtbf_s=7200.0,
            corruption_sites=("site00", "site03"),
            corruption_start_s=100.0,
            seed=11,
        )

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_save_load(self, tmp_path):
        path = tmp_path / "durable.json"
        self.plan().save(path)
        assert FaultPlan.load(path) == self.plan()

    def test_dict_coercion(self):
        plan = FaultPlan(
            replica_corruptions=[
                {"site": "site00", "dataset": "d0", "time_s": 10.0}],
            replica_losses=[
                {"site": "site01", "dataset": "d1", "time_s": 20.0}],
        )
        assert isinstance(plan.replica_corruptions[0], ReplicaCorruption)
        assert isinstance(plan.replica_losses[0], ReplicaLoss)

    def test_hashable(self):
        assert hash(self.plan()) == hash(self.plan())

"""Unit tests for FaultPlan: validation, nullness, hashing, JSON."""

import pytest

from repro.faults.plan import FaultPlan, LinkDegradation, SiteOutage


class TestSiteOutage:
    def test_finite_window(self):
        outage = SiteOutage("site00", 100.0, 500.0)
        assert not outage.permanent

    def test_default_end_is_permanent(self):
        assert SiteOutage("site00", 100.0).permanent

    @pytest.mark.parametrize("end", [None, "inf", "Infinity", "permanent"])
    def test_permanent_spellings(self, end):
        assert SiteOutage("site00", 0.0, end).permanent

    def test_numeric_string_end(self):
        assert SiteOutage("site00", 0.0, "250.5").end_s == 250.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="starts in the past"):
            SiteOutage("site00", -1.0, 10.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="ends .* before it starts"):
            SiteOutage("site00", 100.0, 50.0)


class TestLinkDegradation:
    def test_valid(self):
        deg = LinkDegradation("a", "b", 0.0, 10.0, 0.5)
        assert deg.factor == 0.5

    @pytest.mark.parametrize("factor", [-0.1, 1.0, 2.0])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError, match="factor"):
            LinkDegradation("a", "b", 0.0, 10.0, factor)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            LinkDegradation("a", "b", 10.0, 5.0, 0.5)


class TestFaultPlanNullness:
    def test_default_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan.none().is_null

    def test_each_fault_source_breaks_nullness(self):
        assert not FaultPlan(
            site_outages=[SiteOutage("s", 0.0, 1.0)]).is_null
        assert not FaultPlan(
            link_degradations=[LinkDegradation("a", "b", 0, 1, 0.5)]).is_null
        assert not FaultPlan(transfer_fail_prob=0.1).is_null
        assert not FaultPlan(site_mtbf_s=1000.0).is_null

    def test_recovery_knobs_alone_keep_plan_null(self):
        # Tuning how recovery *would* behave injects nothing.
        assert FaultPlan(job_max_retries=3, transfer_backoff_base_s=1.0).is_null


class TestFaultPlanValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(transfer_fail_prob=1.5)

    def test_rejects_negative_mtbf(self):
        with pytest.raises(ValueError, match="MTBF"):
            FaultPlan(site_mtbf_s=-1.0)

    def test_rejects_zero_mttr(self):
        with pytest.raises(ValueError, match="MTTR"):
            FaultPlan(site_mttr_s=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retry"):
            FaultPlan(job_max_retries=-1)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError, match="backoff"):
            FaultPlan(transfer_backoff_base_s=100.0,
                      transfer_backoff_cap_s=10.0)


class TestFaultPlanValueSemantics:
    def test_coerces_dicts_and_lists(self):
        plan = FaultPlan(
            site_outages=[{"site": "site00", "start_s": 0.0, "end_s": 10.0}],
            link_degradations=[
                {"a": "x", "b": "y", "start_s": 0, "end_s": 1, "factor": 0.2}],
        )
        assert isinstance(plan.site_outages, tuple)
        assert isinstance(plan.site_outages[0], SiteOutage)
        assert isinstance(plan.link_degradations[0], LinkDegradation)

    def test_hashable_and_equal(self):
        a = FaultPlan(site_outages=[SiteOutage("s", 1.0, 2.0)], seed=7)
        b = FaultPlan(site_outages=[SiteOutage("s", 1.0, 2.0)], seed=7)
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_with_replaces_fields(self):
        plan = FaultPlan.none().with_(transfer_fail_prob=0.3, seed=9)
        assert plan.transfer_fail_prob == 0.3
        assert plan.seed == 9
        assert FaultPlan.none().transfer_fail_prob == 0.0


class TestFaultPlanSerialization:
    def plan(self):
        return FaultPlan(
            site_outages=[SiteOutage("site00", 10.0, 20.0),
                          SiteOutage("site01", 30.0)],  # permanent
            link_degradations=[
                LinkDegradation("site00", "hub", 0.0, 5.0, 0.25)],
            transfer_fail_prob=0.1,
            site_mtbf_s=5000.0,
            seed=3,
        )

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_json_dict_is_strict_json(self):
        import json
        blob = json.dumps(self.plan().to_json_dict(), allow_nan=False)
        assert "Infinity" not in blob  # inf encoded as null, not a literal

    def test_save_load(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_json_dict({"site_mtbf": 100.0})

"""Unit tests for Dataset Scheduler policies (replication)."""

import random

import pytest

from repro.scheduling import DataDoNothing, DataLeastLoaded, DataRandom

from tests.scheduling.conftest import build_grid, load_site, make_job
from repro.grid import JobState


def run_with_accesses(ds_policy, accesses=6, runtime=1.0, horizon=2000.0,
                      n_sites=4):
    """Run `accesses` quick d0 jobs at site00 under the given DS policy."""
    sim, grid = build_grid(n_sites=n_sites, ds=ds_policy)
    jobs = []
    for i in range(accesses):
        job = make_job(job_id=i, runtime=runtime)
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 0.0)
        job.execution_site = "site00"
        jobs.append(grid.sites["site00"].enqueue(job))
    sim.run(until=horizon)
    return sim, grid


class TestDataDoNothing:
    def test_never_replicates(self):
        sim, grid = run_with_accesses(DataDoNothing(), accesses=10)
        assert grid.datamover.replications_done == 0
        assert grid.transfers.mb_moved_by_purpose().get("replication", 0) == 0


class TestDataRandom:
    def test_replicates_popular_dataset(self):
        ds = DataRandom(random.Random(0), popularity_threshold=5,
                        check_interval_s=100.0)
        sim, grid = run_with_accesses(ds, accesses=6)
        assert grid.datamover.replications_done >= 1
        assert grid.catalog.replica_count("d0") >= 2

    def test_below_threshold_no_replication(self):
        ds = DataRandom(random.Random(0), popularity_threshold=5,
                        check_interval_s=100.0)
        sim, grid = run_with_accesses(ds, accesses=3)
        assert grid.datamover.replications_done == 0

    def test_counter_resets_after_replication(self):
        ds = DataRandom(random.Random(0), popularity_threshold=5,
                        check_interval_s=100.0)
        sim, grid = run_with_accesses(ds, accesses=6)
        assert grid.storages["site00"].access_counts["d0"] == 0

    def test_replication_is_asynchronous(self):
        """Replication happens on the DS period, not at access time."""
        ds = DataRandom(random.Random(0), popularity_threshold=5,
                        check_interval_s=500.0)
        sim, grid = build_grid(ds=ds)
        for i in range(6):
            job = make_job(job_id=i, runtime=1.0)
            job.advance(JobState.SUBMITTED, 0.0)
            job.advance(JobState.DISPATCHED, 0.0)
            job.execution_site = "site00"
            grid.sites["site00"].enqueue(job)
        sim.run(until=400)
        assert grid.datamover.replications_done == 0  # before first check
        sim.run(until=700)
        assert grid.datamover.replications_done >= 1  # after it

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DataRandom(random.Random(0), popularity_threshold=0)
        with pytest.raises(ValueError):
            DataRandom(random.Random(0), check_interval_s=0)


class TestDataLeastLoaded:
    def test_targets_least_loaded_neighbor(self):
        ds = DataLeastLoaded(random.Random(0), popularity_threshold=5,
                             check_interval_s=100.0, neighbor_hops=2)
        sim, grid = build_grid(ds=ds)
        load_site(grid, "site01", 8)
        load_site(grid, "site02", 8)
        for i in range(6):
            job = make_job(job_id=i, runtime=1.0)
            job.advance(JobState.SUBMITTED, 0.0)
            job.advance(JobState.DISPATCHED, 0.0)
            job.execution_site = "site00"
            grid.sites["site00"].enqueue(job)
        sim.run(until=400)
        assert grid.catalog.has_replica("d0", "site03")

    def test_neighbor_radius_limits_targets(self):
        # In a ring of 6 with 1-hop neighbors, site00 can only push to
        # site01 and site05.
        ds = DataLeastLoaded(random.Random(0), popularity_threshold=5,
                             check_interval_s=100.0, neighbor_hops=1)
        sim, grid = build_grid(ds=ds)
        # star topology: 1 hop from a site reaches only the hub (a router),
        # so there are no site neighbors and no replication can happen.
        for i in range(6):
            job = make_job(job_id=i, runtime=1.0)
            job.advance(JobState.SUBMITTED, 0.0)
            job.advance(JobState.DISPATCHED, 0.0)
            job.execution_site = "site00"
            grid.sites["site00"].enqueue(job)
        sim.run(until=500)
        assert grid.datamover.replications_done == 0

    def test_invalid_neighbor_hops(self):
        with pytest.raises(ValueError):
            DataLeastLoaded(random.Random(0), neighbor_hops=0)


class TestTargetEligibility:
    def test_holders_never_chosen(self):
        """Sites already holding the dataset are never replication targets."""
        ds = DataRandom(random.Random(0), popularity_threshold=1,
                        check_interval_s=50.0)
        sim, grid = build_grid(ds=DataDoNothing())
        # site00 (source) plus site01/site02 hold d0: only site03 eligible.
        grid.catalog.register("d0", "site01")
        grid.catalog.register("d0", "site02")
        site = grid.sites["site00"]
        for _ in range(20):
            assert ds._pick_target("d0", site, grid) == "site03"

    def test_all_holders_yields_none(self):
        ds = DataRandom(random.Random(0), popularity_threshold=1,
                        check_interval_s=50.0)
        sim, grid = build_grid(ds=DataDoNothing())
        for s in grid.sites:
            grid.catalog.register("d0", s)
        assert ds._pick_target("d0", grid.sites["site00"], grid) is None

    def test_repeated_popularity_spreads_replicas(self):
        """Sustained accesses eventually replicate to multiple sites."""
        ds = DataRandom(random.Random(0), popularity_threshold=2,
                        check_interval_s=50.0)
        sim, grid = build_grid(ds=ds)
        storage = grid.storages["site00"]

        def hammer():
            while sim.now < 1000:
                storage.record_access("d0", sim.now)
                yield sim.timeout(10)

        sim.process(hammer())
        sim.run(until=1200)
        assert grid.catalog.replica_count("d0") >= 3

"""Unit tests for Local Scheduler policies."""

import pytest

from repro.grid import JobState
from repro.scheduling import (
    FIFOLocalScheduler,
    LongestJobFirstScheduler,
    ShortestJobFirstScheduler,
)

from tests.scheduling.conftest import build_grid, make_job


def run_three_jobs(ls, runtimes=(300.0, 100.0, 200.0)):
    """One-processor site; returns job completion order by runtime."""
    sim, grid = build_grid(ls=ls, processors=1)
    jobs = []
    for i, rt in enumerate(runtimes):
        job = make_job(job_id=i, runtime=rt)
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 0.0)
        job.execution_site = "site00"
        jobs.append(job)
    procs = [grid.sites["site00"].enqueue(j) for j in jobs]
    sim.run(until=sim.all_of(procs))
    return [j.runtime_s for j in sorted(jobs, key=lambda j: j.started_at)]


class TestFIFO:
    def test_no_priorities(self):
        assert FIFOLocalScheduler().priority(make_job()) is None
        assert not FIFOLocalScheduler.uses_priorities

    def test_arrival_order_preserved(self):
        order = run_three_jobs(FIFOLocalScheduler())
        assert order == [300.0, 100.0, 200.0]


class TestSJF:
    def test_priority_is_runtime(self):
        assert ShortestJobFirstScheduler().priority(
            make_job(runtime=2.5)) == 2500

    def test_shortest_first_after_head(self):
        # The first arrival grabs the free processor immediately; the
        # remaining two are reordered shortest-first.
        order = run_three_jobs(ShortestJobFirstScheduler())
        assert order == [300.0, 100.0, 200.0]

    def test_reorders_backlog(self):
        order = run_three_jobs(ShortestJobFirstScheduler(),
                               runtimes=(50.0, 300.0, 100.0, 200.0))
        assert order == [50.0, 100.0, 200.0, 300.0]


class TestLJF:
    def test_priority_is_negated_runtime(self):
        assert LongestJobFirstScheduler().priority(
            make_job(runtime=2.5)) == -2500

    def test_longest_first_after_head(self):
        order = run_three_jobs(LongestJobFirstScheduler(),
                               runtimes=(50.0, 300.0, 100.0, 200.0))
        assert order == [50.0, 300.0, 200.0, 100.0]


class TestUsesPriorities:
    @pytest.mark.parametrize("cls,expected", [
        (FIFOLocalScheduler, False),
        (ShortestJobFirstScheduler, True),
        (LongestJobFirstScheduler, True),
    ])
    def test_flag(self, cls, expected):
        assert cls.uses_priorities is expected

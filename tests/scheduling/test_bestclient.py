"""Unit tests for the DataBestClient policy (companion-paper strategy)."""

import random

import pytest

from repro.grid import Job, JobState
from repro.scheduling import DataBestClient

from tests.scheduling.conftest import build_grid, make_job


def run_demand(ds, requests, horizon=500.0):
    """Run quick d0 jobs at site00 with given origin sites."""
    sim, grid = build_grid(ds=ds)
    for i, origin in enumerate(requests):
        job = make_job(job_id=i, origin=origin, inputs=("d0",), runtime=1.0)
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 0.0)
        job.execution_site = "site00"
        grid.sites["site00"].enqueue(job)
    sim.run(until=horizon)
    return sim, grid


class TestDemandTracking:
    def test_observes_origins(self):
        ds = DataBestClient(random.Random(0), popularity_threshold=100,
                            check_interval_s=100.0)
        sim, grid = run_demand(
            ds, ["site01", "site01", "site02", "site01"])
        demand = ds.demand_for("site00", "d0")
        assert demand == {"site01": 3, "site02": 1}

    def test_unobserved_pair_empty(self):
        ds = DataBestClient(random.Random(0))
        assert ds.demand_for("site00", "d0") == {}


class TestBestClientReplication:
    def test_replicates_to_top_requester(self):
        ds = DataBestClient(random.Random(0), popularity_threshold=4,
                            check_interval_s=100.0)
        sim, grid = run_demand(
            ds, ["site01", "site01", "site01", "site02", "site02"])
        assert grid.catalog.has_replica("d0", "site01")
        assert not grid.catalog.has_replica("d0", "site03")

    def test_no_demand_no_replication(self):
        # Jobs originate at the holder itself: demand exists but the only
        # requester already holds the file -> nothing eligible.
        ds = DataBestClient(random.Random(0), popularity_threshold=3,
                            check_interval_s=100.0)
        sim, grid = run_demand(ds, ["site00"] * 6)
        assert grid.datamover.replications_done == 0

    def test_skips_requesters_that_already_hold(self):
        ds = DataBestClient(random.Random(0), popularity_threshold=3,
                            check_interval_s=100.0)
        sim, grid = build_grid(ds=ds)
        grid.catalog.register("d0", "site01")  # top client already has it
        for i, origin in enumerate(
                ["site01", "site01", "site01", "site02"]):
            job = make_job(job_id=i, origin=origin, inputs=("d0",),
                           runtime=1.0)
            job.advance(JobState.SUBMITTED, 0.0)
            job.advance(JobState.DISPATCHED, 0.0)
            job.execution_site = "site00"
            grid.sites["site00"].enqueue(job)
        sim.run(until=500.0)
        # Replication goes to the runner-up (site02) instead.
        assert grid.catalog.has_replica("d0", "site02")

    def test_full_scaled_run(self):
        from repro import SimulationConfig, run_single
        config = SimulationConfig.paper().scaled(0.1)
        m = run_single(config, "JobDataPresent", "DataBestClient", seed=0)
        assert m.n_jobs == config.n_jobs
        assert m.replications_done > 0

    def test_beats_no_replication_at_scale(self):
        from repro import SimulationConfig, run_single
        config = SimulationConfig.paper().scaled(0.2)
        baseline = run_single(config, "JobDataPresent", "DataDoNothing",
                              seed=0)
        best_client = run_single(config, "JobDataPresent",
                                 "DataBestClient", seed=0)
        assert (best_client.avg_response_time_s
                < baseline.avg_response_time_s)

"""Unit tests for user→ES mappings (§3) and the round-robin scheduler."""

import pytest

from repro.grid import Job, JobState
from repro.scheduling import JobRoundRobin, MappedExternalScheduler
from repro.scheduling.external import JobLocal

from tests.scheduling.conftest import build_grid, make_job


class TestJobRoundRobin:
    def test_cycles_through_sites(self, star_grid):
        _, grid = star_grid
        es = JobRoundRobin()
        picks = [es.select_site(make_job(job_id=i), grid) for i in range(8)]
        assert picks[:4] == sorted(grid.sites)
        assert picks[4:] == picks[:4]

    def test_registry(self):
        import random

        from repro.scheduling.registry import make_external_scheduler
        es = make_external_scheduler("JobRoundRobin", random.Random(0))
        assert isinstance(es, JobRoundRobin)


class TestMappedExternalScheduler:
    def test_invalid_mapping_rejected(self):
        with pytest.raises(ValueError):
            MappedExternalScheduler(JobRoundRobin, mapping="per-galaxy")

    def test_central_single_instance(self, star_grid):
        _, grid = star_grid
        es = MappedExternalScheduler(JobRoundRobin, mapping="central")
        for i in range(6):
            es.select_site(
                make_job(job_id=i, origin=f"site{i % 4:02d}"), grid)
        assert es.instance_count == 1

    def test_per_site_instance_per_origin(self, star_grid):
        _, grid = star_grid
        es = MappedExternalScheduler(JobRoundRobin, mapping="per-site")
        for i in range(8):
            es.select_site(
                make_job(job_id=i, origin=f"site{i % 4:02d}"), grid)
        assert es.instance_count == 4

    def test_per_user_instance_per_user(self, star_grid):
        _, grid = star_grid
        es = MappedExternalScheduler(JobRoundRobin, mapping="per-user")
        for i in range(6):
            job = make_job(job_id=i)
            job.user = f"user{i % 3}"
            es.select_site(job, grid)
        assert es.instance_count == 3

    def test_central_round_robin_spreads_perfectly(self, star_grid):
        _, grid = star_grid
        es = MappedExternalScheduler(JobRoundRobin, mapping="central")
        picks = [
            es.select_site(make_job(job_id=i, origin="site00"), grid)
            for i in range(8)
        ]
        assert sorted(set(picks)) == sorted(grid.sites)

    def test_per_site_round_robin_cycles_independently(self, star_grid):
        _, grid = star_grid
        es = MappedExternalScheduler(JobRoundRobin, mapping="per-site")
        # Two origin sites alternate; each delegate starts its own cycle
        # at site00.
        picks_a = [es.select_site(
            make_job(job_id=i, origin="site00"), grid) for i in range(2)]
        picks_b = [es.select_site(
            make_job(job_id=i, origin="site01"), grid) for i in range(2)]
        assert picks_a == picks_b == ["site00", "site01"]

    def test_stateless_delegate_unaffected_by_mapping(self, star_grid):
        _, grid = star_grid
        for mapping in ("central", "per-site", "per-user"):
            es = MappedExternalScheduler(JobLocal, mapping=mapping)
            job = make_job(origin="site02")
            assert es.select_site(job, grid) == "site02"

    def test_full_run_with_mapped_scheduler(self):
        sim, grid = build_grid()
        grid.external_scheduler = MappedExternalScheduler(
            JobRoundRobin, mapping="central")
        from repro.grid import User
        jobs = [
            Job(job_id=i, user="u0", origin_site="site00",
                input_files=["d0"], runtime_s=10)
            for i in range(8)
        ]
        grid.add_user(User(sim, "u0", "site00", jobs, grid))
        grid.run()
        assert len([j for j in jobs if j.state is JobState.COMPLETED]) == 8
        sites_used = {j.execution_site for j in jobs}
        assert len(sites_used) == 4  # round-robin touched every site

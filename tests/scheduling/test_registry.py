"""Unit tests for the scheduler registries."""

import random

import pytest

from repro.scheduling import (
    ALL_DS,
    ALL_ES,
    ALL_LS,
    make_dataset_scheduler,
    make_external_scheduler,
    make_local_scheduler,
)
from repro.scheduling.base import (
    DatasetScheduler,
    ExternalScheduler,
    LocalScheduler,
)


class TestExternalRegistry:
    def test_paper_family_order(self):
        assert ALL_ES == [
            "JobRandom", "JobLeastLoaded", "JobDataPresent", "JobLocal"]

    @pytest.mark.parametrize("name", ALL_ES + ["JobAdaptive"])
    def test_factory_builds_named_instance(self, name):
        es = make_external_scheduler(name, random.Random(0))
        assert isinstance(es, ExternalScheduler)
        assert es.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown external"):
            make_external_scheduler("JobMagic", random.Random(0))


class TestLocalRegistry:
    def test_names(self):
        assert ALL_LS == ["FIFO", "SJF", "LJF", "FIFO-DataAware"]

    @pytest.mark.parametrize("name", ALL_LS)
    def test_factory(self, name):
        ls = make_local_scheduler(name)
        assert isinstance(ls, LocalScheduler)
        assert ls.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown local"):
            make_local_scheduler("LIFO")


class TestDatasetRegistry:
    def test_paper_family_order(self):
        assert ALL_DS == ["DataDoNothing", "DataRandom", "DataLeastLoaded"]

    @pytest.mark.parametrize("name", ALL_DS)
    def test_factory(self, name):
        ds = make_dataset_scheduler(name, random.Random(0))
        assert isinstance(ds, DatasetScheduler)
        assert ds.name == name

    def test_parameters_forwarded(self):
        ds = make_dataset_scheduler(
            "DataLeastLoaded", random.Random(0),
            popularity_threshold=9, check_interval_s=123.0, neighbor_hops=3)
        assert ds.popularity_threshold == 9
        assert ds.check_interval_s == 123.0
        assert ds.neighbor_hops == 3

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset_scheduler("DataMagic", random.Random(0))

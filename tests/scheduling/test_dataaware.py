"""Unit tests for the dispatch-mode data-aware local scheduler."""

import pytest

from repro.grid import JobState
from repro.scheduling import DataAwareFIFOScheduler
from repro.scheduling.base import QueuedJob

from tests.scheduling.conftest import build_grid, make_job


def enqueue(grid, job):
    job.advance(JobState.SUBMITTED, grid.sim.now)
    job.advance(JobState.DISPATCHED, grid.sim.now)
    job.execution_site = job.origin_site
    return grid.sites[job.origin_site].enqueue(job)


class TestDispatchMechanics:
    def test_flag(self):
        ls = DataAwareFIFOScheduler()
        assert ls.dispatches
        assert not ls.uses_priorities

    def test_pick_prefers_first_ready(self):
        class FakeEvent:
            def __init__(self, triggered):
                self.triggered = triggered

        entries = [
            QueuedJob(make_job(0), 0.0, FakeEvent(False)),
            QueuedJob(make_job(1), 1.0, FakeEvent(True)),
            QueuedJob(make_job(2), 2.0, FakeEvent(True)),
        ]
        assert DataAwareFIFOScheduler().pick(entries, now=5.0) == 1

    def test_pick_waits_when_nothing_ready(self):
        class FakeEvent:
            triggered = False

        entries = [QueuedJob(make_job(i), float(i), FakeEvent())
                   for i in range(3)]
        assert DataAwareFIFOScheduler().pick(entries, now=5.0) is None


class TestBackfilling:
    def test_ready_job_overtakes_fetching_head(self):
        """One processor; the head job needs a 50 s fetch (d1: 500 MB
        over two 10 MB/s hops), the second job's data is local.
        Data-aware runs the second job during the fetch; plain FIFO
        makes it wait."""
        results = {}
        for ls_name in ("FIFO", "FIFO-DataAware"):
            from repro.scheduling.registry import make_local_scheduler
            sim, grid = build_grid(ls=make_local_scheduler(ls_name),
                                   processors=1)
            fetcher = make_job(job_id=0, origin="site00", inputs=("d1",),
                               runtime=50)   # d1 remote: 100 s fetch
            local = make_job(job_id=1, origin="site00", inputs=("d0",),
                             runtime=50)     # d0 local
            p0 = enqueue(grid, fetcher)
            p1 = enqueue(grid, local)
            sim.run(until=sim.all_of([p0, p1]))
            results[ls_name] = (fetcher.completed_at, local.completed_at)

        fifo_fetcher, fifo_local = results["FIFO"]
        da_fetcher, da_local = results["FIFO-DataAware"]
        # FIFO: fetcher holds the processor over fetch (0-50) + compute
        # (50-100); local then runs 100-150.
        assert fifo_fetcher == pytest.approx(100.0)
        assert fifo_local == pytest.approx(150.0)
        # Data-aware: local backfills 0-50; fetcher's data lands at 50,
        # it computes 50-100.  Everyone is at least as well off.
        assert da_local == pytest.approx(50.0)
        assert da_fetcher == pytest.approx(100.0)

    def test_no_ready_jobs_behaves_like_fifo(self):
        from repro.scheduling.registry import make_local_scheduler
        sim, grid = build_grid(ls=make_local_scheduler("FIFO-DataAware"),
                               processors=1)
        # Both jobs need remote data; FIFO order must hold.
        j0 = make_job(job_id=0, origin="site00", inputs=("d1",), runtime=10)
        j1 = make_job(job_id=1, origin="site00", inputs=("d2",), runtime=10)
        p0 = enqueue(grid, j0)
        p1 = enqueue(grid, j1)
        sim.run(until=sim.all_of([p0, p1]))
        assert j0.started_at < j1.started_at

    def test_load_visible_in_dispatch_mode(self):
        from repro.scheduling.registry import make_local_scheduler
        sim, grid = build_grid(ls=make_local_scheduler("FIFO-DataAware"),
                               processors=1)
        for i in range(4):
            enqueue(grid, make_job(job_id=i, origin="site00",
                                   inputs=("d0",), runtime=1000))
        # Prefetch processes have not run yet, so nothing is "ready" and
        # all four jobs still count as waiting.
        assert grid.sites["site00"].load == 4
        sim.run(until=1.0)  # prefetches resolve instantly (data local)
        # One job dispatched onto the single processor, 3 pending.
        assert grid.sites["site00"].load == 3
        assert grid.info.load("site00") == 3

    def test_full_scaled_run_completes(self):
        from repro import SimulationConfig, run_single
        config = SimulationConfig.paper().scaled(0.1).with_(
            local_scheduler="FIFO-DataAware")
        m = run_single(config, "JobLeastLoaded", "DataRandom", seed=0)
        assert m.n_jobs == config.n_jobs

    def test_utilization_never_worse_than_fifo(self):
        from repro import SimulationConfig, run_single
        config = SimulationConfig.paper().scaled(0.2).with_(
            storage_capacity_mb=20_000.0)
        fifo = run_single(config, "JobRandom", "DataDoNothing", seed=0)
        aware = run_single(
            config.with_(local_scheduler="FIFO-DataAware"),
            "JobRandom", "DataDoNothing", seed=0)
        # Backfilling may not help much (network-bound regimes), but it
        # must not meaningfully hurt utilization.
        assert aware.idle_fraction <= fifo.idle_fraction + 0.03

"""Unit tests for the DS idle-replica deletion extension (§3)."""

import random

import pytest

from repro import SimulationConfig, run_single
from repro.grid import JobState
from repro.scheduling import DataRandom

from tests.scheduling.conftest import build_grid, make_job


def run_quiet_grid(ds, horizon):
    """Grid where site01 fetches d0 once and then goes idle forever."""
    sim, grid = build_grid(ds=ds)
    job = make_job(job_id=0, origin="site01", inputs=("d0",), runtime=10)
    job.advance(JobState.SUBMITTED, 0.0)
    job.advance(JobState.DISPATCHED, 0.0)
    job.execution_site = "site01"
    grid.sites["site01"].enqueue(job)
    sim.run(until=horizon)
    return sim, grid


class TestIdleDeletion:
    def test_idle_replica_deleted(self):
        ds = DataRandom(random.Random(0), popularity_threshold=100,
                        check_interval_s=100.0, delete_idle_after_s=500.0)
        sim, grid = run_quiet_grid(ds, horizon=2000.0)
        # The cached copy at site01 went idle and was reaped...
        assert "d0" not in grid.storages["site01"]
        assert not grid.catalog.has_replica("d0", "site01")
        # ...but the (pinned) primary at site00 survives.
        assert grid.catalog.locations("d0") == ["site00"]
        assert ds.deletions >= 1

    def test_no_deletion_when_disabled(self):
        ds = DataRandom(random.Random(0), popularity_threshold=100,
                        check_interval_s=100.0)
        sim, grid = run_quiet_grid(ds, horizon=2000.0)
        assert "d0" in grid.storages["site01"]
        assert ds.deletions == 0

    def test_fresh_replica_not_deleted(self):
        ds = DataRandom(random.Random(0), popularity_threshold=100,
                        check_interval_s=100.0,
                        delete_idle_after_s=100_000.0)
        sim, grid = run_quiet_grid(ds, horizon=2000.0)
        assert "d0" in grid.storages["site01"]

    def test_last_replica_never_deleted(self):
        # Make d9 exist only as an unpinned cached copy: register it
        # fresh at site01 with no primary anywhere else.
        ds = DataRandom(random.Random(0), popularity_threshold=100,
                        check_interval_s=100.0, delete_idle_after_s=50.0)
        sim, grid = build_grid(ds=ds)
        from repro.grid.files import Dataset
        lone = Dataset("lone", 300)
        grid.datasets.add(lone)
        grid.storages["site01"].add(lone, now=0.0, pin=False)
        grid.catalog.register("lone", "site01")
        sim.run(until=1000.0)
        assert "lone" in grid.storages["site01"]
        assert grid.catalog.replica_count("lone") == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DataRandom(random.Random(0), delete_idle_after_s=-1)

    def test_full_run_with_deletion_enabled(self):
        config = SimulationConfig.paper().scaled(0.1).with_(
            ds_delete_idle_after_s=2000.0, ds_check_interval_s=200.0)
        m = run_single(config, "JobDataPresent", "DataRandom", seed=0)
        assert m.n_jobs == config.n_jobs


class TestIdleFilesQuery:
    def test_idle_files_respects_pins_and_age(self):
        from repro.grid import Dataset, StorageElement
        st = StorageElement("s", 10_000)
        st.add(Dataset("old", 100), now=0.0)
        st.add(Dataset("pinned-old", 100), now=0.0, pin=True)
        st.add(Dataset("fresh", 100), now=90.0)
        assert st.idle_files(now=100.0, older_than_s=50.0) == ["old"]

    def test_idle_files_negative_age_rejected(self):
        from repro.grid import StorageElement
        with pytest.raises(ValueError):
            StorageElement("s", 100).idle_files(now=0.0, older_than_s=-1)

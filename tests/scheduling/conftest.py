"""Fixtures for scheduler tests: a grid with controllable load and data."""

import random

import pytest

from repro.grid import DataGrid, Dataset, DatasetCollection, Job, JobState
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def build_grid(n_sites=4, es=None, ls=None, ds=None, storage_mb=20_000,
               processors=2, bandwidth=10.0):
    """A star grid with one 500 MB dataset per site (dN at siteN)."""
    sim = Simulator()
    topology = Topology.star(n_sites, bandwidth)
    datasets = DatasetCollection(
        [Dataset(f"d{i}", 500) for i in range(n_sites)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=es or JobLocal(),
        local_scheduler=ls or FIFOLocalScheduler(),
        dataset_scheduler=ds or DataDoNothing(),
        site_processors={name: processors for name in topology.sites},
        storage_capacity_mb=storage_mb,
        datamover_rng=random.Random(0),
    )
    grid.place_initial_replicas(
        {f"d{i}": f"site{i:02d}" for i in range(n_sites)})
    return sim, grid


def make_job(job_id=0, origin="site00", inputs=("d0",), runtime=100.0):
    return Job(job_id=job_id, user="u", origin_site=origin,
               input_files=list(inputs), runtime_s=runtime)


def load_site(grid, site, n_jobs, runtime=10_000.0):
    """Saturate a site's queue with long jobs (bypasses the ES)."""
    for i in range(n_jobs):
        job = make_job(job_id=1000 + i, origin=site,
                       inputs=(grid.catalog.datasets_at(site)[0],),
                       runtime=runtime)
        job.advance(JobState.SUBMITTED, grid.sim.now)
        job.advance(JobState.DISPATCHED, grid.sim.now)
        job.execution_site = site
        grid.sites[site].enqueue(job)


@pytest.fixture
def star_grid():
    return build_grid()

"""Unit tests for the adaptive external scheduler (extension)."""

import random

import pytest

from repro.scheduling import AdaptiveExternalScheduler

from tests.scheduling.conftest import build_grid, make_job


class TestAdaptive:
    def test_local_data_runs_locally(self, star_grid):
        _, grid = star_grid
        es = AdaptiveExternalScheduler(random.Random(0))
        job = make_job(origin="site00", inputs=("d0",), runtime=10)
        assert es.select_site(job, grid) == "site00"
        assert es.chose_local == 1

    def test_long_job_small_fetch_runs_locally(self, star_grid):
        _, grid = star_grid
        es = AdaptiveExternalScheduler(random.Random(0),
                                       transfer_budget_fraction=0.5,
                                       congestion_factor=1.0)
        # d1 fetch to site00: 500 MB / 10 MB/s = 50 s; runtime 10000 s.
        job = make_job(origin="site00", inputs=("d1",), runtime=10_000)
        assert es.select_site(job, grid) == "site00"
        assert es.chose_local == 1

    def test_short_job_big_fetch_goes_to_data(self, star_grid):
        _, grid = star_grid
        es = AdaptiveExternalScheduler(random.Random(0),
                                       transfer_budget_fraction=0.5,
                                       congestion_factor=1.0)
        # 50 s fetch vs 20 s runtime: fetch dominates, follow the data.
        job = make_job(origin="site00", inputs=("d1",), runtime=20)
        assert es.select_site(job, grid) == "site01"
        assert es.chose_data == 1

    def test_congestion_factor_biases_toward_data(self, star_grid):
        _, grid = star_grid
        # Borderline job: 50 s fetch (uncontended), 110 s runtime,
        # budget 0.5 -> local if estimate <= 55 s.
        job = make_job(origin="site00", inputs=("d1",), runtime=110)
        lenient = AdaptiveExternalScheduler(
            random.Random(0), transfer_budget_fraction=0.5,
            congestion_factor=1.0)
        assert lenient.select_site(job, grid) == "site00"
        pessimist = AdaptiveExternalScheduler(
            random.Random(0), transfer_budget_fraction=0.5,
            congestion_factor=2.0)
        assert pessimist.select_site(job, grid) == "site01"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveExternalScheduler(random.Random(0),
                                      transfer_budget_fraction=0)
        with pytest.raises(ValueError):
            AdaptiveExternalScheduler(random.Random(0),
                                      congestion_factor=0.5)

    def test_counts_accumulate(self, star_grid):
        _, grid = star_grid
        es = AdaptiveExternalScheduler(random.Random(0))
        es.select_site(make_job(origin="site00", inputs=("d0",)), grid)
        es.select_site(
            make_job(origin="site00", inputs=("d1",), runtime=1), grid)
        assert es.chose_local + es.chose_data == 2

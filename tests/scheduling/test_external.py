"""Unit tests for the paper's four External Scheduler algorithms."""

import random

import pytest

from repro.scheduling import (
    JobDataPresent,
    JobLeastLoaded,
    JobLocal,
    JobRandom,
)

from tests.scheduling.conftest import build_grid, load_site, make_job


class TestJobLocal:
    def test_always_origin(self, star_grid):
        _, grid = star_grid
        es = JobLocal()
        for origin in grid.sites:
            job = make_job(origin=origin)
            assert es.select_site(job, grid) == origin

    def test_ignores_load(self, star_grid):
        _, grid = star_grid
        load_site(grid, "site00", 10)
        assert JobLocal().select_site(make_job(origin="site00"), grid) == \
            "site00"


class TestJobRandom:
    def test_uniform_coverage(self, star_grid):
        _, grid = star_grid
        es = JobRandom(random.Random(0))
        picks = {es.select_site(make_job(), grid) for _ in range(200)}
        assert picks == set(grid.sites)

    def test_deterministic_under_seed(self, star_grid):
        _, grid = star_grid
        seq1 = [JobRandom(random.Random(5)).select_site(make_job(), grid)
                for _ in range(1)]
        seq2 = [JobRandom(random.Random(5)).select_site(make_job(), grid)
                for _ in range(1)]
        assert seq1 == seq2


class TestJobLeastLoaded:
    def test_avoids_loaded_site(self, star_grid):
        _, grid = star_grid
        load_site(grid, "site00", 8)
        load_site(grid, "site01", 8)
        es = JobLeastLoaded(random.Random(0))
        for _ in range(20):
            assert es.select_site(make_job(), grid) in ("site02", "site03")

    def test_tie_break_spreads(self, star_grid):
        _, grid = star_grid
        es = JobLeastLoaded(random.Random(0))
        picks = {es.select_site(make_job(), grid) for _ in range(100)}
        assert len(picks) > 1

    def test_picks_unique_minimum(self, star_grid):
        _, grid = star_grid
        for site in ("site00", "site01", "site02"):
            load_site(grid, site, 4)
        es = JobLeastLoaded(random.Random(0))
        assert es.select_site(make_job(), grid) == "site03"


class TestJobDataPresent:
    def test_goes_to_data(self, star_grid):
        _, grid = star_grid
        es = JobDataPresent(random.Random(0))
        job = make_job(inputs=("d2",), origin="site00")
        assert es.select_site(job, grid) == "site02"

    def test_least_loaded_among_holders(self, star_grid):
        _, grid = star_grid
        grid.catalog.register("d2", "site03")  # two holders now
        load_site(grid, "site02", 8)
        es = JobDataPresent(random.Random(0))
        job = make_job(inputs=("d2",))
        assert es.select_site(job, grid) == "site03"

    def test_multi_input_requires_all(self, star_grid):
        _, grid = star_grid
        grid.catalog.register("d0", "site02")  # site02 has d0 and d2
        es = JobDataPresent(random.Random(0))
        job = make_job(inputs=("d0", "d2"))
        assert es.select_site(job, grid) == "site02"

    def test_multi_input_partial_falls_back_to_most_bytes(self, star_grid):
        _, grid = star_grid
        # No site has both d0 and d1; both are 500 MB, so the least loaded
        # of the two single-holders is chosen.
        load_site(grid, "site00", 8)
        es = JobDataPresent(random.Random(0))
        job = make_job(inputs=("d0", "d1"))
        assert es.select_site(job, grid) == "site01"

    def test_respects_cached_replicas(self, star_grid):
        sim, grid = star_grid
        p = grid.datamover.ensure_local("site03", "d0")
        sim.run(until=p)
        load_site(grid, "site00", 8)
        es = JobDataPresent(random.Random(0))
        assert es.select_site(make_job(inputs=("d0",)), grid) == "site03"


def _reference_most_bytes(job, grid, rng):
    """Brute-force most-bytes-present: full scan of sites × inputs.

    The pre-index implementation of JobDataPresent's fallback; the
    indexed version must select identical sites and consume the rng
    identically.
    """
    best_bytes = -1.0
    best_sites = []
    for site in grid.info.site_names:
        present = sum(grid.datasets.get(f).size_mb
                      for f in job.input_files
                      if grid.catalog.has_replica(f, site))
        if present > best_bytes:
            best_bytes, best_sites = present, [site]
        elif present == best_bytes:
            best_sites.append(site)
    if best_bytes <= 0.0:
        return grid.info.least_loaded(rng=rng)
    if len(best_sites) > 1:
        return grid.info.least_loaded(best_sites, rng=rng)
    return best_sites[0]


class TestMostBytesPresentEquivalence:
    """The per-site byte index must not change scheduling decisions."""

    CASES = (
        ("d0", "d1"),          # tie: two 500 MB single-holders
        ("d0", "d1", "d2"),    # site02 holds d1+d2 -> unique winner
        ("d0",),               # unique holder
        ("d3",),               # nothing anywhere -> least-loaded fallback
        ("d0", "d3"),          # partial presence
    )

    def test_matches_reference_scan(self, star_grid):
        _, grid = star_grid
        grid.catalog.register("d1", "site02")  # site02: d1 + d2
        grid.catalog.deregister("d3", "site03")  # d3 now held nowhere
        load_site(grid, "site01", 5)
        es = JobDataPresent(random.Random(7))
        reference_rng = random.Random(7)
        for trial in range(10):
            for inputs in self.CASES:
                job = make_job(inputs=inputs)
                expected = _reference_most_bytes(job, grid,
                                                 reference_rng)
                assert es._most_bytes_present(job, grid) == expected


class TestNames:
    @pytest.mark.parametrize("cls,expected", [
        (JobLocal, "JobLocal"),
        (JobRandom, "JobRandom"),
        (JobLeastLoaded, "JobLeastLoaded"),
        (JobDataPresent, "JobDataPresent"),
    ])
    def test_registry_names(self, cls, expected):
        assert cls.name == expected

"""Unit tests for the transfer manager: timing, contention, allocators."""

import pytest

from repro.network import (
    EqualShareAllocator,
    MaxMinFairAllocator,
    Topology,
    TransferManager,
)
from repro.sim import Simulator


def star(n=4, bw=10.0):
    return Topology.star(n, bw)


class TestSingleTransfer:
    def test_uncontended_duration_exact(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site01", 100)  # 2 hops @ 10 MB/s
        sim.run(until=t.done)
        assert sim.now == pytest.approx(10.0)
        assert t.duration == pytest.approx(10.0)

    def test_local_transfer_instant(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site00", 500)
        assert t.finished_at == 0.0
        assert t.done.triggered

    def test_zero_size_instant(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site01", 0)
        assert t.finished_at == 0.0

    def test_negative_size_rejected(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        with pytest.raises(ValueError):
            tm.start("site00", "site01", -1)

    def test_duration_of_unfinished_raises(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site01", 100)
        with pytest.raises(ValueError):
            _ = t.duration

    def test_done_event_value_is_transfer(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site01", 10)
        assert sim.run(until=t.done) is t


class TestContention:
    def test_two_transfers_sharing_uplink_halve(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        a = tm.start("site00", "site01", 100)
        b = tm.start("site00", "site02", 100)
        sim.run()
        assert a.finished_at == pytest.approx(20.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_disjoint_routes_do_not_interfere(self):
        sim = Simulator()
        tm = TransferManager(sim, Topology.ring(6, 10))
        a = tm.start("site00", "site01", 100)
        b = tm.start("site03", "site04", 100)
        sim.run()
        assert a.finished_at == pytest.approx(10.0)
        assert b.finished_at == pytest.approx(10.0)

    def test_late_joiner_slows_existing_transfer(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        results = {}

        def scenario():
            a = tm.start("site00", "site01", 100)
            yield sim.timeout(5)  # a has moved 50 MB
            b = tm.start("site00", "site02", 100)
            yield sim.all_of([a.done, b.done])
            results["a"] = a.finished_at
            results["b"] = b.finished_at

        sim.process(scenario())
        sim.run()
        # a: 50 MB left at 5 MB/s -> finishes at 15.
        assert results["a"] == pytest.approx(15.0)
        # b: 50 MB at 5 MB/s until t=15, then 50 MB at 10 -> t=20.
        assert results["b"] == pytest.approx(20.0)

    def test_departure_speeds_up_survivor(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        a = tm.start("site00", "site01", 50)
        b = tm.start("site00", "site02", 150)
        sim.run()
        # Shared 5 MB/s each until a finishes at t=10 (50 MB);
        # b then has 100 MB left at 10 MB/s -> t=20.
        assert a.finished_at == pytest.approx(10.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_bottleneck_is_busiest_link_on_route(self):
        sim = Simulator()
        topo = star(5, 10.0)
        tm = TransferManager(sim, topo)
        # Three transfers out of site00: its uplink is the bottleneck
        # (3.33 MB/s each) even though destination links are idle.
        ts = [tm.start("site00", f"site0{i}", 100) for i in (1, 2, 3)]
        sim.run()
        for t in ts:
            assert t.finished_at == pytest.approx(30.0)


class TestStatistics:
    def test_total_mb_moved(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        tm.start("site00", "site01", 100)
        tm.start("site01", "site02", 60)
        sim.run()
        assert tm.total_mb_moved == pytest.approx(160)

    def test_mb_by_purpose(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        tm.start("site00", "site01", 100, purpose="job-fetch")
        tm.start("site01", "site02", 60, purpose="replication")
        tm.start("site02", "site03", 40, purpose="replication")
        sim.run()
        by = tm.mb_moved_by_purpose()
        assert by["job-fetch"] == pytest.approx(100)
        assert by["replication"] == pytest.approx(100)

    def test_link_bytes_accounted(self):
        sim = Simulator()
        topo = star()
        tm = TransferManager(sim, topo)
        tm.start("site00", "site01", 100)
        sim.run()
        for link in topo.links:
            if "site02" in link.endpoints or "site03" in link.endpoints:
                assert link.bytes_carried == 0
            else:
                assert link.bytes_carried == pytest.approx(100)

    def test_estimated_transfer_time(self):
        sim = Simulator()
        tm = TransferManager(sim, star(4, 20.0))
        assert tm.estimated_transfer_time("site00", "site01", 100) == \
            pytest.approx(5.0)
        assert tm.estimated_transfer_time("site00", "site00", 100) == 0.0


class TestMaxMinAllocator:
    def test_single_transfer_gets_bottleneck(self):
        sim = Simulator()
        tm = TransferManager(sim, star(), allocator=MaxMinFairAllocator())
        t = tm.start("site00", "site01", 100)
        sim.run()
        assert t.finished_at == pytest.approx(10.0)

    def test_never_oversubscribes_links(self):
        sim = Simulator()
        topo = star(6, 10.0)
        tm = TransferManager(sim, topo, allocator=MaxMinFairAllocator())
        for i in range(1, 6):
            tm.start("site00", f"site0{i}", 50)

        def check(sim_, event):
            for link in topo.links:
                total = sum(t.rate for t in link.active)
                assert total <= link.capacity_mbps + 1e-6

        sim.pre_event_hooks.append(check)
        sim.run()

    def test_maxmin_uses_spare_capacity(self):
        # a: site00->site01 shares site00 uplink with b: site00->site02.
        # c: site03->site04 is independent.  Under max-min, c gets full
        # rate while a and b split the uplink.
        sim = Simulator()
        tm = TransferManager(sim, star(6, 10.0),
                             allocator=MaxMinFairAllocator())
        a = tm.start("site00", "site01", 100)
        b = tm.start("site00", "site02", 100)
        c = tm.start("site03", "site04", 100)
        sim.run()
        assert c.finished_at == pytest.approx(10.0)
        assert a.finished_at == pytest.approx(20.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_allocator_names(self):
        assert EqualShareAllocator().name == "equal-share"
        assert MaxMinFairAllocator().name == "max-min"

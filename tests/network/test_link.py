"""Unit tests for the contended link model."""

import pytest

from repro.network.link import Link


class _FakeTransfer:
    pass


class TestLink:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Link("a", "b", 0)

    def test_equal_share_no_transfers(self):
        link = Link("a", "b", 10)
        assert link.equal_share() == 10

    def test_equal_share_divides_capacity(self):
        link = Link("a", "b", 10)
        t1, t2 = _FakeTransfer(), _FakeTransfer()
        link.attach(t1, now=0.0)
        link.attach(t2, now=0.0)
        assert link.equal_share() == 5
        assert link.concurrency == 2

    def test_detach_restores_share(self):
        link = Link("a", "b", 12)
        t1, t2, t3 = _FakeTransfer(), _FakeTransfer(), _FakeTransfer()
        for t in (t1, t2, t3):
            link.attach(t, now=0.0)
        link.detach(t2, now=1.0, carried_mb=100)
        assert link.equal_share() == 6
        assert link.bytes_carried == 100

    def test_busy_time_integrates_only_when_active(self):
        link = Link("a", "b", 10)
        t = _FakeTransfer()
        link.attach(t, now=5.0)   # idle [0, 5)
        link.detach(t, now=8.0, carried_mb=30)  # busy [5, 8)
        link.account(now=10.0)    # idle [8, 10)
        assert link.busy_time == pytest.approx(3.0)
        assert link.utilization(10.0) == pytest.approx(0.3)

    def test_load_integral_counts_concurrency(self):
        link = Link("a", "b", 10)
        t1, t2 = _FakeTransfer(), _FakeTransfer()
        link.attach(t1, now=0.0)
        link.attach(t2, now=2.0)   # 1 active over [0,2): integral 2
        link.detach(t1, now=5.0, carried_mb=0)  # 2 active over [2,5): +6
        link.detach(t2, now=9.0, carried_mb=0)  # 1 active over [5,9): +4
        assert link.load_integral == pytest.approx(12.0)

    def test_utilization_zero_horizon(self):
        assert Link("a", "b", 10).utilization(0) == 0.0

    def test_endpoints(self):
        assert Link("x", "y", 1).endpoints == ("x", "y")

"""Unit tests for grid topologies."""

import random

import pytest

from repro.network import Topology


class TestConstruction:
    def test_add_node_and_link(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        link = topo.add_link("a", "b", 10)
        assert link.capacity_mbps == 10
        assert topo.link_between("a", "b") is link
        assert topo.link_between("b", "a") is link

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_node("a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", 10)
        with pytest.raises(ValueError):
            topo.add_link("b", "a", 10)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "a", 10)

    def test_link_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "ghost", 10)

    def test_missing_link_lookup(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(KeyError):
            topo.link_between("a", "b")

    def test_sites_excludes_routers(self):
        topo = Topology()
        topo.add_node("router", is_site=False)
        topo.add_node("site")
        assert topo.sites == ["site"]
        assert not topo.is_site("router")
        assert topo.is_site("site")


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Topology().validate()

    def test_disconnected_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(ValueError, match="not connected"):
            topo.validate()

    def test_router_only_rejected(self):
        topo = Topology()
        topo.add_node("r", is_site=False)
        with pytest.raises(ValueError, match="no site"):
            topo.validate()


class TestHierarchical:
    def test_paper_shape(self):
        topo = Topology.hierarchical(30, 10, branching=6)
        topo.validate()
        assert len(topo.sites) == 30
        # 1 root + 5 regionals + 30 leaves
        assert len(topo.nodes) == 36
        assert len(topo.links) == 35  # a tree

    def test_every_site_is_a_leaf(self):
        topo = Topology.hierarchical(30, 10, branching=6)
        for site in topo.sites:
            assert topo.degree(site) == 1

    def test_backbone_multiplier(self):
        topo = Topology.hierarchical(6, 10, branching=3,
                                     backbone_multiplier=4.0)
        backbone = topo.link_between("tier0", "tier1-0")
        leaf = topo.link_between("site00", "tier1-0")
        assert backbone.capacity_mbps == 40
        assert leaf.capacity_mbps == 10

    def test_single_site(self):
        topo = Topology.hierarchical(1, 10)
        topo.validate()
        assert topo.sites == ["site00"]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Topology.hierarchical(0, 10)
        with pytest.raises(ValueError):
            Topology.hierarchical(5, 10, branching=0)


class TestOtherBuilders:
    def test_star(self):
        topo = Topology.star(5, 10)
        topo.validate()
        assert len(topo.sites) == 5
        assert all(topo.degree(s) == 1 for s in topo.sites)
        assert topo.degree("hub") == 5

    def test_ring(self):
        topo = Topology.ring(6, 10)
        topo.validate()
        assert all(topo.degree(s) == 2 for s in topo.sites)
        assert len(topo.links) == 6

    def test_ring_needs_three(self):
        with pytest.raises(ValueError):
            Topology.ring(2, 10)

    def test_random_connected(self):
        topo = Topology.random_geometric(20, 10, rng=random.Random(1))
        topo.validate()
        assert len(topo.sites) == 20

    def test_random_deterministic_for_seed(self):
        t1 = Topology.random_geometric(15, 10, rng=random.Random(3))
        t2 = Topology.random_geometric(15, 10, rng=random.Random(3))
        assert sorted(l.endpoints for l in t1.links) == sorted(
            l.endpoints for l in t2.links)


class TestNeighbors:
    def test_two_hops_reaches_siblings(self):
        topo = Topology.hierarchical(12, 10, branching=4)
        neighbors = topo.neighbors_of_site("site00", max_hops=2)
        # site00 is under tier1-0 with site03, site06, site09 (round robin
        # over 3 regions).
        assert "site03" in neighbors
        assert "site01" not in neighbors  # different region

    def test_four_hops_reaches_everyone(self):
        topo = Topology.hierarchical(12, 10, branching=4)
        neighbors = topo.neighbors_of_site("site00", max_hops=4)
        assert len(neighbors) == 11

    def test_excludes_self_and_routers(self):
        topo = Topology.hierarchical(6, 10, branching=6)
        neighbors = topo.neighbors_of_site("site00", max_hops=4)
        assert "site00" not in neighbors
        assert all(n.startswith("site") for n in neighbors)

"""Unit tests for shortest-path routing."""

import pytest

from repro.network import Router, Topology


@pytest.fixture
def topo():
    return Topology.hierarchical(12, 10, branching=4)


class TestRouter:
    def test_same_node_empty_route(self, topo):
        router = Router(topo)
        assert router.route("site00", "site00") == []
        assert router.hops("site00", "site00") == 0

    def test_sibling_route_two_hops(self, topo):
        router = Router(topo)
        # site00 and site03 share tier1-0 (12 sites round-robin across 3
        # regions).
        route = router.route("site00", "site03")
        assert len(route) == 2

    def test_cross_region_route_four_hops(self, topo):
        router = Router(topo)
        assert router.hops("site00", "site01") == 4

    def test_route_links_are_contiguous(self, topo):
        router = Router(topo)
        route = router.route("site00", "site01")
        # Consecutive links must share an endpoint.
        for a, b in zip(route[:-1], route[1:]):
            assert set(a.endpoints) & set(b.endpoints)

    def test_reverse_route_is_reversed(self, topo):
        router = Router(topo)
        fwd = router.route("site00", "site05")
        rev = router.route("site05", "site00")
        assert rev == list(reversed(fwd))

    def test_route_is_cached(self, topo):
        router = Router(topo)
        r1 = router.route("site00", "site05")
        r2 = router.route("site00", "site05")
        assert r1 is r2

    def test_unknown_node_raises(self, topo):
        router = Router(topo)
        with pytest.raises(ValueError):
            router.route("site00", "nowhere")

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(ValueError, match="no route"):
            Router(topo).route("a", "b")

    def test_warm_precomputes_all_pairs(self, topo):
        router = Router(topo)
        router.warm()
        n = len(topo.sites)
        assert len(router._cache) == n * (n - 1)

"""Unit tests for the NWS-style bandwidth forecasting substrate."""

from collections import deque

import pytest

from repro.network import Topology, TransferManager
from repro.network.forecast import (
    BandwidthHistory,
    LastValuePredictor,
    MeanPredictor,
    MedianPredictor,
    NWSForecaster,
)
from repro.sim import Simulator


class TestPredictors:
    def test_last_value(self):
        assert LastValuePredictor().predict(deque([1.0, 5.0, 3.0])) == 3.0

    def test_mean(self):
        assert MeanPredictor().predict(deque([2.0, 4.0, 6.0])) == 4.0

    def test_median_robust_to_spike(self):
        assert MedianPredictor().predict(
            deque([10.0, 10.0, 0.1, 10.0, 10.0])) == 10.0


class TestBandwidthHistory:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            BandwidthHistory(window=0)

    def test_observes_completed_transfers(self):
        sim = Simulator()
        topo = Topology.star(3, 10.0)
        tm = TransferManager(sim, topo)
        history = BandwidthHistory()
        history.attach(tm)
        tm.start("site00", "site01", 100)  # 10 s at 10 MB/s bottleneck
        sim.run()
        series = history.series("site00", "site01")
        assert len(series) == 1
        assert series[0] == pytest.approx(10.0)
        assert history.pairs() == [("site00", "site01")]

    def test_contention_visible_in_observations(self):
        sim = Simulator()
        topo = Topology.star(3, 10.0)
        tm = TransferManager(sim, topo)
        history = BandwidthHistory()
        history.attach(tm)
        tm.start("site00", "site01", 100)
        tm.start("site00", "site02", 100)  # share uplink: 5 MB/s each
        sim.run()
        assert history.series("site00", "site01")[0] == pytest.approx(5.0)

    def test_local_transfers_not_recorded(self):
        sim = Simulator()
        tm = TransferManager(sim, Topology.star(2, 10.0))
        history = BandwidthHistory()
        history.attach(tm)
        tm.start("site00", "site00", 100)
        sim.run()
        assert history.observations == 0

    def test_window_caps_history(self):
        history = BandwidthHistory(window=3)

        class T:
            route = [object()]
            src, dst = "a", "b"
            size_mb = 10.0
            finished_at = 1.0
            duration = 1.0

        for _ in range(10):
            history.observe(T())
        assert len(history.series("a", "b")) == 3


class TestNWSForecaster:
    def _history(self, values, pair=("a", "b")):
        history = BandwidthHistory()

        class T:
            route = [object()]
            src, dst = pair
            finished_at = 1.0
            duration = 1.0

        for v in values:
            t = T()
            t.size_mb = v  # duration 1 → bandwidth == v
            history.observe(t)
        return history

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            NWSForecaster(BandwidthHistory(), decay=0)

    def test_no_history_returns_none(self):
        forecaster = NWSForecaster(BandwidthHistory())
        assert forecaster.forecast("x", "y") is None

    def test_single_observation_returned_directly(self):
        forecaster = NWSForecaster(self._history([7.0]))
        assert forecaster.forecast("a", "b") == pytest.approx(7.0)
        assert forecaster.best_predictor("a", "b") is None

    def test_constant_series_forecast_exact(self):
        forecaster = NWSForecaster(self._history([8.0] * 10))
        assert forecaster.forecast("a", "b") == pytest.approx(8.0)

    def test_spiky_series_prefers_robust_predictor(self):
        # Stable value with rare extreme dips: median beats last-value.
        values = [10.0, 10.0, 10.0, 0.1, 10.0, 10.0, 10.0, 0.1,
                  10.0, 10.0]
        forecaster = NWSForecaster(self._history(values))
        best = forecaster.best_predictor("a", "b")
        assert best.name == "median"
        assert forecaster.forecast("a", "b") == pytest.approx(10.0)

    def test_trending_series_prefers_last_value(self):
        # Strictly rising series: last-value has the smallest error.
        values = [float(i) for i in range(1, 15)]
        forecaster = NWSForecaster(self._history(values))
        assert forecaster.best_predictor("a", "b").name == "last"
        assert forecaster.forecast("a", "b") == pytest.approx(14.0)


class TestAdaptiveIntegration:
    def test_forecaster_feeds_adaptive_scheduler(self):
        import random

        from repro import SimulationConfig, make_workload
        from repro.experiments.runner import build_grid
        from repro.metrics import RunMetrics
        from repro.scheduling import AdaptiveExternalScheduler

        config = SimulationConfig.paper().scaled(0.1)
        workload = make_workload(config, seed=0)
        sim, grid = build_grid(config, "JobLocal", "DataRandom",
                               workload, seed=0)
        history = BandwidthHistory()
        history.attach(grid.transfers)
        adaptive = AdaptiveExternalScheduler(
            random.Random(0), forecaster=NWSForecaster(history))
        grid.external_scheduler = adaptive
        makespan = grid.run()
        metrics = RunMetrics.from_grid(grid, makespan)
        assert metrics.n_jobs == config.n_jobs
        # Once traffic has flowed, forecasts start being used.
        assert adaptive.forecast_hits > 0
        assert history.observations > 0

"""Unit tests for weighted (parallel-stream) transfers."""

import pytest

from repro.network import MaxMinFairAllocator, Topology, TransferManager
from repro.sim import Simulator


def star(bw=10.0):
    return Topology.star(4, bw)


class TestWeightedEqualShare:
    def test_invalid_weight_rejected(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        with pytest.raises(ValueError):
            tm.start("site00", "site01", 100, weight=0)

    def test_weight_is_proportional_share(self):
        # weight 3 vs weight 1 over the same uplink: 7.5 vs 2.5 MB/s.
        sim = Simulator()
        tm = TransferManager(sim, star())
        heavy = tm.start("site00", "site01", 75, weight=3)
        light = tm.start("site00", "site02", 75, weight=1)
        sim.run()
        # heavy: 75 MB at 7.5 -> done at 10; light: 25 MB moved by t=10,
        # then 50 MB at full 10 MB/s -> done at 15.
        assert heavy.finished_at == pytest.approx(10.0)
        assert light.finished_at == pytest.approx(15.0)

    def test_equal_weights_reduce_to_plain_model(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        a = tm.start("site00", "site01", 100, weight=2)
        b = tm.start("site00", "site02", 100, weight=2)
        sim.run()
        assert a.finished_at == pytest.approx(20.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_lone_weighted_transfer_gets_full_capacity(self):
        sim = Simulator()
        tm = TransferManager(sim, star())
        t = tm.start("site00", "site01", 100, weight=8)
        sim.run()
        assert t.finished_at == pytest.approx(10.0)


class TestWeightedMaxMin:
    def test_weighted_split_on_shared_link(self):
        sim = Simulator()
        tm = TransferManager(sim, star(), allocator=MaxMinFairAllocator())
        heavy = tm.start("site00", "site01", 75, weight=3)
        light = tm.start("site00", "site02", 75, weight=1)
        sim.run()
        assert heavy.finished_at == pytest.approx(10.0)
        assert light.finished_at == pytest.approx(15.0)

    def test_weights_never_oversubscribe(self):
        sim = Simulator()
        topo = star()
        tm = TransferManager(sim, topo, allocator=MaxMinFairAllocator())
        for i, w in enumerate((1, 2, 5), start=1):
            tm.start("site00", f"site0{i}", 50, weight=w)

        def check(sim_, _event):
            for link in topo.links:
                total = sum(t.rate for t in link.active)
                assert total <= link.capacity_mbps + 1e-6

        sim.pre_event_hooks.append(check)
        sim.run()

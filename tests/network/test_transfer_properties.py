"""Property-based tests for transfer-manager invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import MaxMinFairAllocator, Topology, TransferManager
from repro.sim import Simulator

transfer_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),   # src site index
        st.integers(min_value=0, max_value=5),   # dst site index
        st.floats(min_value=0.1, max_value=500),  # size MB
        st.floats(min_value=0, max_value=100),   # start delay
    ),
    min_size=1,
    max_size=15,
)


def _run(specs, allocator=None):
    sim = Simulator()
    topo = Topology.star(6, 10.0)
    tm = TransferManager(sim, topo, allocator=allocator)
    transfers = []

    def starter(src, dst, size, delay):
        yield sim.timeout(delay)
        transfers.append(tm.start(f"site{src:02d}", f"site{dst:02d}", size))

    for src, dst, size, delay in specs:
        sim.process(starter(src, dst, size, delay))
    sim.run()
    return sim, topo, tm, transfers


@given(specs=transfer_specs)
@settings(max_examples=40, deadline=None)
def test_all_transfers_complete_and_conserve_bytes(specs):
    sim, topo, tm, transfers = _run(specs)
    assert len(transfers) == len(specs)
    for t in transfers:
        assert t.finished_at is not None
        assert t.remaining_mb == 0.0
    # Every remote transfer crossed exactly two star links; bytes carried
    # per link must equal the sum of sizes of transfers using that link.
    total_remote = sum(t.size_mb for t in transfers if t.route)
    carried = sum(link.bytes_carried for link in topo.links)
    expected = sum(t.size_mb * len(t.route) for t in transfers)
    assert abs(carried - expected) <= 1e-6 * max(1.0, expected)
    assert tm.total_mb_moved >= total_remote - 1e-6


@given(specs=transfer_specs)
@settings(max_examples=40, deadline=None)
def test_no_transfer_beats_uncontended_bound(specs):
    sim, topo, tm, transfers = _run(specs)
    for t in transfers:
        if not t.route:
            continue
        lower_bound = t.size_mb / min(l.capacity_mbps for l in t.route)
        assert t.duration >= lower_bound - 1e-6


@given(specs=transfer_specs)
@settings(max_examples=30, deadline=None)
def test_maxmin_matches_completion_set(specs):
    """Both allocators must complete the same transfers (timing differs)."""
    _, _, tm_eq, ts_eq = _run(specs)
    _, _, tm_mm, ts_mm = _run(specs, allocator=MaxMinFairAllocator())
    assert len(ts_eq) == len(ts_mm)
    assert tm_eq.total_mb_moved == pytest.approx(tm_mm.total_mb_moved)


@given(specs=transfer_specs)
@settings(max_examples=30, deadline=None)
def test_maxmin_never_slower_than_equal_share_overall(specs):
    """Max–min dominates equal-share: every link's capacity is used at
    least as well, so the last completion can't be later by more than
    float noise."""
    sim_eq, _, _, ts_eq = _run(specs)
    sim_mm, _, _, ts_mm = _run(specs, allocator=MaxMinFairAllocator())
    last_eq = max(t.finished_at for t in ts_eq)
    last_mm = max(t.finished_at for t in ts_mm)
    assert last_mm <= last_eq + 1e-6


@given(
    sizes=st.lists(st.floats(min_value=1, max_value=200), min_size=2,
                   max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_simultaneous_equal_transfers_finish_together(sizes):
    """Equal-size transfers over the same route must tie exactly."""
    size = sizes[0]
    sim = Simulator()
    tm = TransferManager(sim, Topology.star(3, 10.0))
    ts = [tm.start("site00", "site01", size) for _ in range(len(sizes))]
    sim.run()
    finishes = {round(t.finished_at, 6) for t in ts}
    assert len(finishes) == 1

"""Unit tests for the benchmark differ (``benchmarks/compare.py``).

The differ guards the nightly perf gate, so it gets the same treatment
as product code: direction inference, threshold edges, breach naming,
exit codes, and malformed-input handling are all pinned here.  The
module lives outside the package tree, so it is loaded by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_COMPARE_PATH = (Path(__file__).resolve().parents[2]
                 / "benchmarks" / "compare.py")

spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare_mod = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_mod)


def _record(metrics, higher=()):
    return {"metrics": metrics, "higher_is_better": list(higher)}


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


class TestDirectionInference:
    def test_record_annotation_wins(self):
        rec = _record({"weird_metric": 1.0}, higher=["weird_metric"])
        assert compare_mod.higher_is_better("weird_metric", rec)

    @pytest.mark.parametrize("name,expected", [
        ("event_throughput_per_s", True),
        ("kernel_speedup", True),
        ("locality_gain", True),
        ("process_churn_mean_s", False),
        ("bytes_moved_mb", False),
        ("idle_fraction", False),
    ])
    def test_name_heuristic(self, name, expected):
        assert compare_mod.higher_is_better(name, _record({})) is expected

    def test_parametrized_names_use_base(self):
        assert compare_mod.higher_is_better(
            "throughput_per_s[JobRandom]", _record({}))


class TestCompare:
    def test_no_change_is_clean(self):
        lines, regressions = compare_mod.compare(
            _record({"a_per_s": 100.0}), _record({"a_per_s": 100.0}), 0.10)
        assert regressions == []
        assert any("a_per_s" in line for line in lines)

    def test_drop_within_threshold_passes(self):
        _, regressions = compare_mod.compare(
            _record({"a_per_s": 100.0}), _record({"a_per_s": 91.0}), 0.10)
        assert regressions == []

    def test_drop_beyond_threshold_is_named(self):
        _, regressions = compare_mod.compare(
            _record({"a_per_s": 100.0, "b_per_s": 100.0}),
            _record({"a_per_s": 80.0, "b_per_s": 99.0}), 0.10)
        assert len(regressions) == 1
        assert regressions[0].startswith("a_per_s:")
        assert "exceeds the 10% gate" in regressions[0]

    def test_lower_is_better_metrics_regress_upward(self):
        _, regressions = compare_mod.compare(
            _record({"mean_s": 1.0}), _record({"mean_s": 1.5}), 0.10)
        assert len(regressions) == 1
        assert "lower is better" in regressions[0]

    def test_improvement_never_regresses(self):
        _, regressions = compare_mod.compare(
            _record({"a_per_s": 100.0, "mean_s": 1.0}),
            _record({"a_per_s": 500.0, "mean_s": 0.1}), 0.10)
        assert regressions == []

    def test_zero_baseline_handled(self):
        lines, regressions = compare_mod.compare(
            _record({"mean_s": 0.0}), _record({"mean_s": 0.0}), 0.10)
        assert regressions == []

    def test_disjoint_metrics_reported_not_compared(self):
        lines, regressions = compare_mod.compare(
            _record({"only_old": 1.0}), _record({"only_new": 2.0}), 0.10)
        assert regressions == []
        assert any("only in baseline" in line for line in lines)
        assert any("only in current" in line for line in lines)


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record({"a_per_s": 100.0}))
        cur = _write(tmp_path, "cur.json", _record({"a_per_s": 101.0}))
        assert compare_mod.main([base, cur]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_names_breached_metric(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json",
                      _record({"a_per_s": 100.0, "b_per_s": 50.0}))
        cur = _write(tmp_path, "cur.json",
                     _record({"a_per_s": 50.0, "b_per_s": 50.0}))
        assert compare_mod.main([base, cur]) == 1
        captured = capsys.readouterr()
        assert "BREACH a_per_s:" in captured.out
        assert "BREACH a_per_s:" in captured.err
        assert "b_per_s:" not in captured.err

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "base.json", _record({"a_per_s": 100.0}))
        cur = _write(tmp_path, "cur.json", _record({"a_per_s": 80.0}))
        assert compare_mod.main([base, cur]) == 1
        assert compare_mod.main([base, cur, "--threshold", "0.30"]) == 0

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record({"a_per_s": 1.0}))
        assert compare_mod.main([base, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_exit_two_on_malformed_record(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record({"a_per_s": 1.0}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not-metrics": {}}))
        assert compare_mod.main([base, str(bad)]) == 2
        assert "missing 'metrics'" in capsys.readouterr().err

"""Unit tests for generator processes: returns, exceptions, interrupts."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestBasics:
    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # not a generator

    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return 99

        p = sim.process(proc())
        sim.run()
        assert p.value == 99

    def test_no_explicit_return_yields_none(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.process(proc())
        sim.run()
        assert p.value is None

    def test_is_alive_transitions(self, sim):
        def proc():
            yield sim.timeout(5)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_yield_value_is_event_value(self, sim):
        got = []

        def proc():
            v = yield sim.timeout(2, value="payload")
            got.append(v)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_immediate_return_process(self, sim):
        def proc():
            return 7
            yield  # pragma: no cover - makes it a generator

        p = sim.process(proc())
        sim.run()
        assert p.value == 7

    def test_processes_can_wait_on_processes(self, sim):
        def child():
            yield sim.timeout(4)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return f"got {result}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "got child-result"

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 42

        p = sim.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_yield_foreign_event_raises(self, sim):
        other = Simulator()

        def proc():
            yield other.timeout(1)

        sim.process(proc())
        with pytest.raises(SimulationError, match="different simulator"):
            sim.run()

    def test_yield_already_processed_event_continues_immediately(self, sim):
        t = sim.timeout(1, value="past")
        sim.run()

        def proc():
            v = yield t
            return (v, sim.now)

        p = sim.process(proc())
        sim.run()
        assert p.value == ("past", 1.0)

    def test_active_process_visible_during_execution(self, sim):
        seen = []

        def proc():
            seen.append(sim.active_process)
            yield sim.timeout(1)

        p = sim.process(proc())
        sim.run()
        assert seen == [p]
        assert sim.active_process is None

    def test_name_from_argument(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.process(proc(), name="my-proc")
        assert "my-proc" in repr(p)
        sim.run()


class TestExceptions:
    def test_unhandled_exception_propagates_to_run(self, sim):
        def proc():
            yield sim.timeout(1)
            raise KeyError("inside process")

        sim.process(proc())
        with pytest.raises(KeyError):
            sim.run()

    def test_waiter_receives_child_failure(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("child broke")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught: {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught: child broke"

    def test_uncaught_child_failure_propagates_through_parent(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("uncaught")

        def parent():
            yield sim.process(child())

        def grandparent():
            try:
                yield sim.process(parent())
            except ValueError:
                return "reached grandparent"

        p = sim.process(grandparent())
        sim.run()
        assert p.value == "reached grandparent"

    def test_failed_event_reraised_at_yield(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except RuntimeError:
                return "handled"

        p = sim.process(proc())
        ev.fail(RuntimeError("event failure"))
        sim.run()
        assert p.value == "handled"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return ("interrupted", sim.now, i.cause)

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(10)
            p.interrupt(cause="reason")

        sim.process(killer())
        sim.run()
        assert p.value == ("interrupted", 10.0, "reason")

    def test_interrupted_process_can_keep_running(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            return sim.now

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(10)
            p.interrupt()

        sim.process(killer())
        sim.run()
        assert p.value == 15.0

    def test_unhandled_interrupt_fails_process(self, sim):
        def sleeper():
            yield sim.timeout(100)

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer())
        with pytest.raises(Interrupt):
            sim.run()

    def test_interrupt_dead_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_target_detached_after_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                return "out"

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer())
        sim.run()
        # The original timeout still fires at t=100 but nobody waits on it.
        assert p.value == "out"
        assert sim.now == 100.0  # timeout drained from queue

    def test_interrupt_cause_defaults_to_none(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return i.cause

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer())
        sim.run()
        assert p.value is None

"""Unit tests for deterministic named random substreams."""

from repro.sim import RandomStreams


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("workload")
        b = RandomStreams(42).stream("workload")
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("workload")
        b = RandomStreams(2).stream("workload")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)]

    def test_numpy_stream_deterministic(self):
        a = RandomStreams(7).numpy_stream("x")
        b = RandomStreams(7).numpy_stream("x")
        assert (a.random(10) == b.random(10)).all()


class TestStreamIndependence:
    def test_named_streams_are_distinct_objects(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is not streams.stream("b")

    def test_named_streams_are_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_consuming_one_stream_does_not_affect_another(self):
        s1 = RandomStreams(5)
        s2 = RandomStreams(5)
        # Heavily consume an unrelated stream in s1 only.
        for _ in range(1000):
            s1.stream("noise").random()
        assert [s1.stream("signal").random() for _ in range(10)] == [
            s2.stream("signal").random() for _ in range(10)]

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(3)
        a = [streams.stream("alpha").random() for _ in range(5)]
        b = [streams.stream("beta").random() for _ in range(5)]
        assert a != b


class TestSpawn:
    def test_spawned_children_deterministic(self):
        a = RandomStreams(9).spawn("child").stream("s")
        b = RandomStreams(9).spawn("child").stream("s")
        assert a.random() == b.random()

    def test_spawned_children_differ_by_label(self):
        root = RandomStreams(9)
        a = root.spawn("one").stream("s")
        b = root.spawn("two").stream("s")
        assert a.random() != b.random()

    def test_spawn_differs_from_parent(self):
        root = RandomStreams(9)
        child = root.spawn("c")
        assert root.stream("s").random() != child.stream("s").random()

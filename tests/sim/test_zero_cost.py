"""Disabled instrumentation must cost *zero* calls per event.

The kernel's claim is stronger than "cheap when off": a simulator with no
tracing, faults, or overload machinery attached must bind the fast drain
loop and never execute a single guard call per event.  These tests prove
it with call counters — stub hooks that crash or count when entered — on
both the raw kernel and a full ``run_single`` grid campaign.
"""

import pytest

from repro.experiments.runner import run_single
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.trace.golden import golden_config


def _churn_workload(sim, n=50):
    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    for _ in range(n):
        sim.process(proc())


class TestDispatchPlan:
    def test_default_kernel_plans_fast_dispatch(self):
        assert Simulator().dispatch_plan == "fast"

    def test_attaching_a_tracer_switches_to_hooked(self):
        sim = Simulator()
        Tracer().attach_kernel(sim)
        assert sim.dispatch_plan == "hooked"

    def test_manual_hook_switches_to_hooked(self):
        sim = Simulator()
        sim.pre_event_hooks.append(lambda s, e: None)
        assert sim.dispatch_plan == "hooked"


class TestFastPathIsReallyTaken:
    def test_default_run_never_enters_hooked_drain(self, monkeypatch):
        def boom(self):  # pragma: no cover - entering it is the failure
            raise AssertionError("hooked drain bound on a bare kernel")

        monkeypatch.setattr(Simulator, "_drain_hooked", boom)
        sim = Simulator()
        _churn_workload(sim)
        sim.run()
        assert sim.now == 2.0

    def test_hooked_run_never_enters_fast_drain(self, monkeypatch):
        def boom(self):  # pragma: no cover - entering it is the failure
            raise AssertionError("fast drain bound on a hooked kernel")

        monkeypatch.setattr(Simulator, "_drain_fast", boom)
        sim = Simulator()
        sim.pre_event_hooks.append(lambda s, e: None)
        _churn_workload(sim)
        sim.run()
        assert sim.now == 2.0

    def test_disabled_kernel_makes_zero_hook_calls(self):
        """A counting hook list proves nothing iterates it when empty."""
        calls = []

        class CountingList(list):
            def __iter__(self):
                calls.append("iterated")
                return super().__iter__()

        sim = Simulator()
        sim.pre_event_hooks = CountingList()
        _churn_workload(sim)
        sim.run()
        # run() checks truthiness once to pick the drain; the fast drain
        # must never iterate the (empty) hook list per event.
        assert calls == []


class TestHookedCostIsPerEvent:
    def test_attached_tracer_sees_every_event_exactly_once(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.attach_kernel(sim)
        _churn_workload(sim, n=25)
        sim.run()
        kernel_records = tracer.of_kind("kernel.event")
        # Count independently with a second, stepped simulator.
        ref = Simulator()
        _churn_workload(ref, n=25)
        processed = ref.run_until_empty()
        assert len(kernel_records) == processed

    def test_every_hook_runs_per_event(self):
        sim = Simulator()
        counts = [0, 0]
        sim.pre_event_hooks.append(
            lambda s, e: counts.__setitem__(0, counts[0] + 1))
        sim.pre_event_hooks.append(
            lambda s, e: counts.__setitem__(1, counts[1] + 1))
        _churn_workload(sim, n=10)
        sim.run()
        assert counts[0] == counts[1] > 0


class TestCampaignWithFeaturesOff:
    """A default run_single must touch no tracing/fault/overload code."""

    def test_no_tracer_emissions_with_tracing_off(self, monkeypatch):
        emits = []
        original = Tracer.emit
        monkeypatch.setattr(
            Tracer, "emit",
            lambda self, *a, **k: (emits.append(a),
                                   original(self, *a, **k))[1])
        run_single(golden_config(), "JobRandom", "DataRandom")
        assert emits == []

    def test_no_fault_injector_with_faults_off(self, monkeypatch):
        from repro.faults import injector as injector_module

        constructed = []
        original_init = injector_module.FaultInjector.__init__
        monkeypatch.setattr(
            injector_module.FaultInjector, "__init__",
            lambda self, *a, **k: (constructed.append(1),
                                   original_init(self, *a, **k))[1])
        run_single(golden_config(), "JobRandom", "DataRandom")
        assert constructed == []

    def test_no_overload_machinery_with_overload_off(self):
        from repro.experiments.runner import build_grid, make_workload

        config = golden_config()
        workload = make_workload(config)
        sim, grid = build_grid(config, "JobRandom", "DataRandom", workload)
        assert grid.overload is None
        assert grid.overload_stats is None
        assert grid.tracer is None
        assert grid.faults is None
        assert sim.dispatch_plan == "fast"

    def test_default_campaign_binds_the_fast_drain(self, monkeypatch):
        def boom(self):  # pragma: no cover - entering it is the failure
            raise AssertionError(
                "hooked drain bound on a feature-free campaign")

        monkeypatch.setattr(Simulator, "_drain_hooked", boom)
        metrics = run_single(golden_config(), "JobRandom", "DataRandom")
        assert metrics.n_jobs > 0

"""Property-based tests for kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Resource, Simulator


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
def test_events_processed_in_nondecreasing_time_order(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.timeout(d).callbacks.append(lambda ev: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                   max_size=40),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity_and_serves_everyone(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    served = []
    peak = [0]

    def worker(i, hold):
        with res.request() as req:
            yield req
            peak[0] = max(peak[0], res.count)
            assert res.count <= capacity
            yield sim.timeout(hold)
        served.append(i)

    for i, hold in enumerate(holds):
        sim.process(worker(i, hold))
    sim.run()
    assert sorted(served) == list(range(len(holds)))
    assert peak[0] <= capacity


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]),
                  st.floats(min_value=0.0, max_value=10.0)),
        max_size=40,
    )
)
@settings(max_examples=50)
def test_container_level_always_within_bounds(ops):
    sim = Simulator()
    capacity = 25.0
    c = Container(sim, capacity=capacity, init=capacity / 2)
    for op, amount in ops:
        if op == "put":
            c.put(amount)
        else:
            c.get(amount)
        assert -1e-9 <= c.level <= capacity + 1e-9
    sim.run()
    assert -1e-9 <= c.level <= capacity + 1e-9


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25)
def test_process_scheduling_deterministic_for_any_seed(seed):
    import random

    def run_once():
        rng = random.Random(seed)
        sim = Simulator()
        trace = []

        def proc(i):
            for _ in range(3):
                yield sim.timeout(rng.uniform(0, 10))
                trace.append((i, sim.now))

        for i in range(5):
            sim.process(proc(i))
        sim.run()
        return trace

    assert run_once() == run_once()

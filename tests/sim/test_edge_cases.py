"""Kernel edge cases beyond the mainline tests."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    Interrupt,
    PriorityResource,
    Resource,
    Simulator,
    Store,
)
from repro.sim.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestEventEdges:
    def test_callbacks_on_processed_event_are_gone(self, sim):
        ev = sim.event()
        ev.succeed()
        sim.run()
        assert ev.callbacks is None

    def test_defuse_before_processing_suppresses_crash(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("handled elsewhere"))
        ev.defuse()
        sim.run()  # no raise
        assert ev.processed

    def test_trigger_from_failed_source_propagates_failure(self, sim):
        src = sim.event()
        dst = sim.event()
        src.fail(ValueError("orig"))
        src.defuse()
        dst.trigger(src)
        dst.defuse()
        sim.run()
        assert not dst.ok
        assert isinstance(dst.value, ValueError)

    def test_condition_with_prefailed_processed_event(self, sim):
        bad = sim.event()
        bad.fail(RuntimeError("pre-existing"))
        bad.defuse()
        sim.run()
        cond = AnyOf(sim, [bad, sim.timeout(5)])
        cond.defuse()
        sim.run()
        assert not cond.ok


class TestProcessEdges:
    def test_process_waiting_on_explicit_event_target(self, sim):
        gate = sim.event()

        def waiter():
            value = yield gate
            return value

        p = sim.process(waiter())
        sim.timeout(1).callbacks.append(lambda _ev: gate.succeed("opened"))
        sim.run()
        assert p.value == "opened"

    def test_target_property_reflects_wait(self, sim):
        t = sim.timeout(10)

        def waiter():
            yield t

        p = sim.process(waiter())
        sim.run(until=5)
        assert p.target is t
        sim.run()
        assert p.target is None

    def test_interrupt_self_rejected(self, sim):
        def narcissist():
            sim.active_process.interrupt()
            yield sim.timeout(1)

        sim.process(narcissist())
        with pytest.raises(SimulationError, match="interrupt itself"):
            sim.run()

    def test_double_interrupt_delivers_both(self, sim):
        hits = []

        def tough():
            for _ in range(2):
                try:
                    yield sim.timeout(100)
                except Interrupt as i:
                    hits.append(i.cause)
            return hits

        p = sim.process(tough())

        def attacker():
            yield sim.timeout(1)
            p.interrupt("first")
            p.interrupt("second")

        sim.process(attacker())
        sim.run(until=p)
        assert hits == ["first", "second"]

    def test_exception_in_finally_does_not_hang(self, sim):
        def leaky():
            try:
                yield sim.timeout(1)
                raise ValueError("original")
            finally:
                pass  # cleanup runs; exception continues

        p = sim.process(leaky())
        with pytest.raises(ValueError, match="original"):
            sim.run(until=p)


class TestResourceEdges:
    def test_release_twice_is_safe(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request()
        res.release(req)
        res.release(req)  # second release degrades to a no-op cancel
        assert res.count == 0

    def test_priority_resource_release_ungranted(self, sim):
        res = PriorityResource(sim, capacity=1)
        res.request(priority=1)
        waiting = res.request(priority=2)
        res.release(waiting)  # cancels from the heap
        assert res.queued == 0

    def test_store_put_get_interleaving_preserves_items(self, sim):
        store = Store(sim, capacity=2)
        puts = [store.put(i) for i in range(5)]
        gotten = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                gotten.append(item)
                yield sim.timeout(1)

        sim.process(consumer())
        sim.run()
        assert gotten == [0, 1, 2, 3, 4]
        assert all(p.triggered for p in puts)


class TestClockEdges:
    def test_zero_duration_events_preserve_fifo(self, sim):
        order = []
        for i in range(5):
            ev = Event(sim)
            ev._ok, ev._value = True, None
            ev.callbacks.append(lambda _e, i=i: order.append(i))
            sim.schedule(ev, delay=0.0)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_now_is_noop(self, sim):
        sim.timeout(10)
        sim.run(until=0)
        assert sim.now == 0.0

    def test_float_time_accumulation_is_stable(self, sim):
        def ticker():
            for _ in range(1000):
                yield sim.timeout(0.1)

        sim.process(ticker())
        sim.run()
        assert sim.now == pytest.approx(100.0, abs=1e-6)

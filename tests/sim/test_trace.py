"""Unit tests for the tracing facility."""

from repro.sim import Simulator
from repro.sim.trace import NullTracer, Tracer


class TestTracer:
    def test_records_emitted_entries(self):
        tracer = Tracer()
        tracer.emit(1.0, "job.start", job=1)
        tracer.emit(2.0, "job.end", job=1)
        assert len(tracer) == 2
        assert tracer.records[0].kind == "job.start"
        assert tracer.records[1].detail == {"job": 1}

    def test_kind_filter(self):
        tracer = Tracer(kinds=("keep",))
        tracer.emit(0.0, "keep")
        tracer.emit(0.0, "drop")
        assert [r.kind for r in tracer.records] == ["keep"]

    def test_max_records_cap(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit(float(i), "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_of_kind(self):
        tracer = Tracer()
        tracer.emit(0.0, "a")
        tracer.emit(1.0, "b")
        tracer.emit(2.0, "a")
        assert [r.time for r in tracer.of_kind("a")] == [0.0, 2.0]

    def test_sink_receives_records(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(seen.append)
        tracer.emit(3.0, "evt", k="v")
        assert len(seen) == 1
        assert seen[0].time == 3.0

    def test_dump_renders_lines(self):
        tracer = Tracer()
        tracer.emit(1.5, "something", key="val")
        out = tracer.dump()
        assert "something" in out
        assert "key=val" in out

    def test_attach_kernel_sees_events(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.attach_kernel(sim)
        sim.timeout(1)
        sim.timeout(2)
        sim.run()
        assert len(tracer.of_kind("kernel.event")) == 2


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.emit(0.0, "anything")
        assert len(tracer) == 0

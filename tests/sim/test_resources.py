"""Unit tests for Resource, PriorityResource, Store, and Container."""

import pytest

from repro.sim import (
    Container,
    PriorityResource,
    Resource,
    Simulator,
    Store,
)


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2
        assert res.queued == 1

    def test_release_grants_next(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r1)
        assert r2.triggered
        assert res.count == 1

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        order = []

        def worker(i):
            req = res.request()
            yield req
            order.append(i)
            res.release(req)

        for i in range(3):
            sim.process(worker(i))
        res.release(first)
        sim.run()
        assert order == [0, 1, 2]

    def test_release_ungranted_cancels(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        waiting = res.request()
        res.release(waiting)  # cancels instead
        assert res.queued == 0

    def test_context_manager_releases(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            with res.request() as req:
                yield req
                yield sim.timeout(5)
            return res.count

        p = sim.process(worker())
        sim.run()
        assert p.value == 0

    def test_cancel_removes_from_queue(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        pending = res.request()
        pending.cancel()
        assert res.queued == 0

    def test_interleaved_workers_respect_capacity(self, sim):
        res = Resource(sim, capacity=3)
        peak = []

        def worker():
            with res.request() as req:
                yield req
                peak.append(res.count)
                yield sim.timeout(10)

        for _ in range(10):
            sim.process(worker())
        sim.run()
        assert max(peak) <= 3

    def test_repr(self, sim):
        res = Resource(sim, capacity=2)
        res.request()
        assert "1/2" in repr(res)


class TestPriorityResource:
    def test_lower_priority_served_first(self, sim):
        res = PriorityResource(sim, capacity=1)
        blocker = res.request(priority=0)
        order = []

        def worker(name, prio):
            req = res.request(priority=prio)
            yield req
            order.append(name)
            res.release(req)

        sim.process(worker("low-prio", 10))
        sim.process(worker("high-prio", 1))
        sim.process(worker("mid-prio", 5))

        def release_blocker():
            yield sim.timeout(1)
            res.release(blocker)

        sim.process(release_blocker())
        sim.run()
        assert order == ["high-prio", "mid-prio", "low-prio"]

    def test_equal_priority_is_fifo(self, sim):
        res = PriorityResource(sim, capacity=1)
        blocker = res.request(priority=0)
        order = []

        def worker(i):
            req = res.request(priority=7)
            yield req
            order.append(i)
            res.release(req)

        for i in range(4):
            sim.process(worker(i))

        def go():
            yield sim.timeout(1)
            res.release(blocker)

        sim.process(go())
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_cancel_pending_priority_request(self, sim):
        res = PriorityResource(sim, capacity=1)
        res.request(priority=0)
        pending = res.request(priority=5)
        pending.cancel()
        assert res.queued == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert got.triggered
        assert got.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, sim.now))

        def producer():
            yield sim.timeout(5)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [("late", 5.0)]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        p1 = store.put("a")
        p2 = store.put("b")
        assert p1.triggered
        assert not p2.triggered
        store.get()
        assert p2.triggered

    def test_filtered_get(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        store.put(3)
        got = store.get(filter=lambda x: x % 2 == 0)
        assert got.value == 2
        assert store.items == [1, 3]

    def test_filtered_get_waits_for_match(self, sim):
        store = Store(sim)
        store.put("no-match")
        got = store.get(filter=lambda x: x == "match")
        assert not got.triggered
        store.put("match")
        assert got.triggered

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_len(self, sim):
        store = Store(sim)
        store.put("x")
        assert len(store) == 1


class TestContainer:
    def test_initial_level(self, sim):
        c = Container(sim, capacity=100, init=40)
        assert c.level == 40

    def test_put_and_get(self, sim):
        c = Container(sim, capacity=100)
        c.put(30)
        c.get(10)
        assert c.level == 20

    def test_get_blocks_until_available(self, sim):
        c = Container(sim, capacity=100)
        got = c.get(50)
        assert not got.triggered
        c.put(50)
        assert got.triggered
        assert c.level == 0

    def test_put_blocks_at_capacity(self, sim):
        c = Container(sim, capacity=10, init=8)
        blocked = c.put(5)
        assert not blocked.triggered
        c.get(4)
        assert blocked.triggered
        assert c.level == pytest.approx(9)

    def test_negative_amounts_rejected(self, sim):
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_bad_init_rejected(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=11)

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=0)

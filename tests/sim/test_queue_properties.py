"""Property tests for the kernel's queues.

Three structures are pinned down under randomized interleavings:

* the simulator's bucketed calendar queue — total processing order must
  equal the semantic ``(time, priority, insertion)`` sort, with FIFO
  stability inside every same-``(time, priority)`` batch;
* the :class:`Resource` FIFO queue with lazy-deleted cancellations;
* the :class:`PriorityResource` heap with lazy-deleted cancellations —
  including the raw heap invariant while tombstones are in flight.

Each resource test drives the real implementation and a deliberately
naive model (eager-deletion lists) through the same operation sequence
and compares observable behavior: who got granted, in what order, and
how many live waiters remain.
"""

from heapq import heappush

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PriorityResource, Resource, Simulator
from repro.sim.events import Event

# Delays/priorities are drawn tiny so collisions — the interesting case —
# are the norm, not the exception.
_delays = st.integers(min_value=0, max_value=3)
_priorities = st.sampled_from([-1, 0, 1, 2])


# -- bucketed calendar queue ------------------------------------------------


@given(st.lists(st.tuples(_delays, _priorities), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_processing_order_is_the_semantic_sort(entries):
    """Delivery order == stable sort by (time, priority, insertion)."""
    sim = Simulator()
    order = []
    expected = []
    for ident, (delay, priority) in enumerate(entries):
        ev = Event(sim)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(
            lambda event, ident=ident: order.append(ident))
        sim.schedule(ev, delay=delay, priority=priority)
        expected.append((float(delay), priority, ident))
    sim.run()
    expected.sort()  # stable: insertion index is the final tiebreak
    assert order == [ident for _, _, ident in expected]


@given(st.lists(st.integers(min_value=0, max_value=500),
                min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_fifo_within_a_timestamp_batch(idents):
    """Events sharing (time, priority) come out in insertion order."""
    sim = Simulator()
    seen = []
    for ident in idents:
        ev = sim.timeout(1.0, value=ident)
        ev.callbacks.append(lambda event: seen.append(event.value))
    sim.run()
    assert seen == idents


@given(st.lists(st.tuples(_delays, _delays), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_midrun_scheduling_keeps_global_order(pairs):
    """Events scheduled from callbacks still land in semantic order."""
    sim = Simulator()
    times = []
    for first, extra in pairs:
        ev = sim.timeout(first)
        ev.callbacks.append(
            lambda event, extra=extra: sim.timeout(extra).callbacks.append(
                lambda inner: times.append(sim.now)))
        ev.callbacks.append(lambda event: times.append(sim.now))
    sim.run()
    assert times == sorted(times)


# -- FIFO resource with lazy deletion ---------------------------------------

# An operation stream: ("request",) | ("cancel", i) | ("release", i)
_ops = st.lists(
    st.one_of(
        st.just(("request",)),
        st.tuples(st.just("cancel"), st.integers(0, 39)),
        st.tuples(st.just("release"), st.integers(0, 39)),
    ),
    min_size=1, max_size=40,
)


class _ModelResource:
    """Eager-deletion oracle for Resource semantics."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.users = []
        self.waiting = []
        self.granted_order = []

    def request(self, ident):
        self.waiting.append(ident)
        self._grant()

    def cancel(self, ident):
        if ident in self.waiting:
            self.waiting.remove(ident)

    def release(self, ident):
        if ident in self.users:
            self.users.remove(ident)
            self._grant()
        else:
            self.cancel(ident)

    def _grant(self):
        while self.waiting and len(self.users) < self.capacity:
            ident = self.waiting.pop(0)
            self.users.append(ident)
            self.granted_order.append(ident)


@given(ops=_ops, capacity=st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_resource_matches_eager_deletion_model(ops, capacity):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    model = _ModelResource(capacity)
    requests = []
    granted_order = []

    def watch(ident, req):
        req.callbacks.append(
            lambda event, ident=ident: granted_order.append(ident))

    for op in ops:
        if op[0] == "request":
            ident = len(requests)
            req = res.request()
            watch(ident, req)
            requests.append(req)
            model.request(ident)
        elif op[0] == "cancel" and op[1] < len(requests):
            requests[op[1]].cancel()
            model.cancel(op[1])
        elif op[0] == "release" and op[1] < len(requests):
            res.release(requests[op[1]])
            model.release(op[1])
        # Grants fire as events; deliver them before the next operation so
        # the model (which grants synchronously) stays in lockstep.
        sim.run()
        assert res.queued == len(model.waiting)
        assert res.count == len(model.users)
    assert granted_order == model.granted_order


@given(ops=_ops, capacity=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_cancellation_is_idempotent(ops, capacity):
    """Applying every cancel twice changes nothing observable."""

    def run(double_cancel):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        requests = []
        order = []
        for op in ops:
            if op[0] == "request":
                ident = len(requests)
                req = res.request()
                req.callbacks.append(
                    lambda event, ident=ident: order.append(ident))
                requests.append(req)
            elif op[0] == "cancel" and op[1] < len(requests):
                requests[op[1]].cancel()
                if double_cancel:
                    requests[op[1]].cancel()
            elif op[0] == "release" and op[1] < len(requests):
                res.release(requests[op[1]])
            sim.run()
        return order, res.queued, res.count

    assert run(False) == run(True)


# -- priority resource: model equivalence and heap invariant ----------------

_prio_ops = st.lists(
    st.one_of(
        st.tuples(st.just("request"), _priorities),
        st.tuples(st.just("cancel"), st.integers(0, 39)),
        st.tuples(st.just("release"), st.integers(0, 39)),
    ),
    min_size=1, max_size=40,
)


def _heap_ok(heap):
    return all(heap[(i - 1) >> 1] <= heap[i] for i in range(1, len(heap)))


@given(ops=_prio_ops, capacity=st.integers(1, 3))
@settings(max_examples=80, deadline=None)
def test_priority_resource_matches_sorted_model(ops, capacity):
    sim = Simulator()
    res = PriorityResource(sim, capacity=capacity)
    requests = []
    granted_order = []

    # Model: waiting list of (priority, arrival) kept sorted on demand.
    model_waiting = []
    model_users = []
    model_granted = []

    def model_grant():
        while model_waiting and len(model_users) < capacity:
            model_waiting.sort()
            prio, arrival = model_waiting.pop(0)
            model_users.append(arrival)
            model_granted.append(arrival)

    for op in ops:
        if op[0] == "request":
            ident = len(requests)
            req = res.request(priority=op[1])
            req.callbacks.append(
                lambda event, ident=ident: granted_order.append(ident))
            requests.append(req)
            model_waiting.append((op[1], ident))
            model_grant()
        elif op[0] == "cancel" and op[1] < len(requests):
            requests[op[1]].cancel()
            model_waiting[:] = [w for w in model_waiting if w[1] != op[1]]
        elif op[0] == "release" and op[1] < len(requests):
            res.release(requests[op[1]])
            if op[1] in model_users:
                model_users.remove(op[1])
                model_grant()
            else:
                model_waiting[:] = [w for w in model_waiting
                                    if w[1] != op[1]]
        sim.run()
        # Heap invariant must hold even with tombstones in flight.
        assert _heap_ok(res._heap)
        assert res.queued == len(model_waiting)
        assert res.count == len(model_users)
    assert granted_order == model_granted


@given(st.lists(st.tuples(_priorities, st.booleans()),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_lazy_deletion_heap_invariant_under_interleaving(plan):
    """Push/cancel/pop interleavings never corrupt the waiter heap."""
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    blocker = res.request(priority=-10)  # hold the only slot
    sim.run()
    assert blocker.triggered
    live = []
    for priority, cancel_it in plan:
        req = res.request(priority=priority)
        if cancel_it:
            req.cancel()
            req.cancel()
        else:
            live.append((priority, req))
        assert _heap_ok(res._heap)
        assert res.queued == len(live)
    # Releasing the blocker grants the live waiters in priority order.
    res.release(blocker)
    sim.run()
    granted = [req for _, req in live if req.triggered]
    assert len(granted) == min(1, len(live))
    if live:
        # The grant goes to the smallest priority (ties: earliest arrival).
        assert granted[0].key == min(p for p, _ in live)


def test_heap_helper_rejects_corruption():
    """Sanity-check the invariant checker itself."""
    good, bad = [], []
    for entry in [(3, 1), (1, 2), (2, 3)]:
        heappush(good, entry)
    bad = [(3, 1), (1, 2), (2, 3)]  # raw list, not heapified
    assert _heap_ok(good)
    assert not _heap_ok(bad)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])

"""Unit tests for the kernel's event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout
from repro.sim.errors import EventAlreadyTriggered


@pytest.fixture
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_triggers(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_default_value_is_none(self, sim):
        ev = sim.event()
        ev.succeed()
        assert ev.value is None

    def test_fail_stores_exception(self, sim):
        ev = sim.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        ev.defuse()
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_double_succeed_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed()

    def test_succeed_after_fail_rejected(self, sim):
        ev = sim.event()
        ev.fail(ValueError("x"))
        ev.defuse()
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed()

    def test_value_unavailable_before_trigger(self, sim):
        ev = sim.event()
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_processed_after_run(self, sim):
        ev = sim.event()
        ev.succeed("done")
        sim.run()
        assert ev.processed

    def test_callbacks_receive_event(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(seen.append)
        ev.succeed("v")
        sim.run()
        assert seen == [ev]

    def test_trigger_copies_outcome(self, sim):
        src = sim.event()
        dst = sim.event()
        src.succeed("payload")
        dst.trigger(src)
        sim.run()
        assert dst.value == "payload"
        assert dst.ok

    def test_repr_shows_state(self, sim):
        ev = sim.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "triggered" in repr(ev)
        sim.run()
        assert "processed" in repr(ev)


class TestTimeout:
    def test_fires_at_delay(self, sim):
        t = sim.timeout(7.5)
        sim.run()
        assert sim.now == 7.5
        assert t.processed

    def test_carries_value(self, sim):
        t = sim.timeout(1, value="hello")
        sim.run()
        assert t.value == "hello"

    def test_zero_delay_allowed(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert sim.now == 0.0
        assert t.processed

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_repr(self, sim):
        assert "3" in repr(sim.timeout(3))


class TestAllOf:
    def test_waits_for_all(self, sim):
        t1, t2 = sim.timeout(3, "a"), sim.timeout(9, "b")
        cond = sim.all_of([t1, t2])
        sim.run()
        assert sim.now == 9
        assert sorted(cond.value.values()) == ["a", "b"]

    def test_empty_succeeds_immediately(self, sim):
        cond = sim.all_of([])
        assert cond.triggered
        sim.run()
        assert cond.value == {}

    def test_already_processed_subevents_count(self, sim):
        t1 = sim.timeout(1, "x")
        sim.run()
        cond = sim.all_of([t1])
        sim.run()
        assert cond.value == {t1: "x"}

    def test_failure_propagates(self, sim):
        ev = sim.event()
        t = sim.timeout(5)
        cond = sim.all_of([ev, t])
        exc = RuntimeError("sub-event failed")
        ev.fail(exc)
        cond.defuse()
        sim.run()
        assert not cond.ok
        assert cond.value is exc

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            sim.all_of([other.timeout(1)])

    def test_value_maps_events_to_values(self, sim):
        t1, t2 = sim.timeout(1, 10), sim.timeout(2, 20)
        cond = sim.all_of([t1, t2])
        sim.run()
        assert cond.value[t1] == 10
        assert cond.value[t2] == 20


class TestAnyOf:
    def test_fires_on_first(self, sim):
        t1, t2 = sim.timeout(3, "fast"), sim.timeout(100, "slow")
        cond = sim.any_of([t1, t2])
        results = {}

        def waiter():
            got = yield cond
            results.update(got)

        sim.process(waiter())
        sim.run()
        assert results == {t1: "fast"}

    def test_empty_succeeds_immediately(self, sim):
        cond = sim.any_of([])
        assert cond.triggered

    def test_wakes_process_at_first_event_time(self, sim):
        t1, t2 = sim.timeout(3), sim.timeout(100)
        woke_at = []

        def waiter():
            yield sim.any_of([t1, t2])
            woke_at.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert woke_at == [3.0]


class TestSlots:
    """The kernel's per-event classes must stay __dict__-free.

    Millions of Event/Timeout/Process instances churn through a full
    simulation; an accidental __dict__ (e.g. a subclass forgetting
    __slots__) multiplies their footprint several-fold.
    """

    def test_hot_classes_have_no_dict(self, sim):
        from repro.sim.process import Initialize, Process

        def proc():
            yield sim.timeout(1)

        instances = [
            sim.event(),
            sim.timeout(1),
            sim.all_of([sim.timeout(1)]),
            sim.any_of([sim.timeout(1)]),
            sim.process(proc()),
        ]
        for obj in instances:
            assert not hasattr(obj, "__dict__"), type(obj).__name__
        for cls in (Event, Timeout, AllOf, AnyOf, Process, Initialize):
            assert "__slots__" in cls.__dict__, cls.__name__

    def test_unknown_attribute_assignment_rejected(self, sim):
        with pytest.raises(AttributeError):
            sim.timeout(1).scratch = 1

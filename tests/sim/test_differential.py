"""Differential harness: production kernel vs. the naive reference oracle.

Every workload below is a *recorded-schedule equivalence* check: the same
canonical workload runs once on the optimized :class:`Simulator` (batched
buckets, pre-bound dispatch, free-listed bootstraps) and once on
:class:`ReferenceSimulator` (one ``min()``-scan per event), and the traces
— ``(time, label)`` pairs recorded from *inside* the simulation — must be
identical element for element.

Recording happens at user level (process bodies and event callbacks), not
via ``pre_event_hooks``, so the production kernel exercises its fast
no-hook drain.  ``test_hooked_path_matches_reference`` repeats the pile
with a hook attached to cover the instrumented drain too.

The workloads deliberately pile up the cases where the optimizations
could bend ordering: colliding timestamps, urgent/normal priority mixes,
nested spawns reusing recycled bootstrap events, interrupts that preempt
a same-time batch, and lazy-deleted resource cancellations.
"""

import random

import pytest

from repro.sim import (
    Container,
    Interrupt,
    PriorityResource,
    Resource,
    Simulator,
    Store,
)
from repro.sim.reference import ReferenceSimulator


# -- canonical workloads ------------------------------------------------------
#
# Each takes a freshly built simulator, runs it to completion, and returns
# the recorded schedule.  Determinism within one kernel is a given (no
# wall-clock, seeded RNG only); the point is equality *across* kernels.


def timeout_storm(sim):
    """Colliding timestamps and values; callbacks record delivery order."""
    trace = []
    for i in range(200):
        ev = sim.timeout(i % 7, value=i)
        ev.callbacks.append(
            lambda event, i=i: trace.append((sim.now, "timeout", i)))
    sim.run()
    return trace


def nested_spawns(sim):
    """Processes spawning processes at the same instant (free-list reuse)."""
    trace = []

    def child(ident, depth):
        trace.append((sim.now, "child-start", ident, depth))
        if depth < 3:
            sim.process(child(ident, depth + 1))
        yield sim.timeout(depth % 2)
        trace.append((sim.now, "child-end", ident, depth))

    def parent(ident):
        trace.append((sim.now, "parent", ident))
        sim.process(child(ident, 0))
        yield sim.timeout(0)
        sim.process(child(ident + 100, 0))

    for i in range(20):
        sim.process(parent(i))
    sim.run()
    return trace


def interrupt_storm(sim):
    """Interrupts landing inside a same-time batch (preemption path)."""
    trace = []
    sleepers = []

    def sleeper(ident):
        try:
            yield sim.timeout(50)
            trace.append((sim.now, "slept", ident))
        except Interrupt as interrupt:
            trace.append((sim.now, "interrupted", ident, interrupt.cause))
            yield sim.timeout(1)
            trace.append((sim.now, "recovered", ident))

    def interrupter():
        yield sim.timeout(5)
        for i, proc in enumerate(sleepers):
            if i % 3 != 2:
                proc.interrupt(cause=i)
        trace.append((sim.now, "interrupts-sent"))

    for i in range(15):
        sleepers.append(sim.process(sleeper(i)))
    sim.process(interrupter())
    sim.run()
    return trace


def resource_contention_with_cancels(sim):
    """FIFO resource under load, with a cancel wave (lazy deletion)."""
    trace = []
    res = Resource(sim, capacity=3)
    held = []

    def worker(ident):
        req = res.request()
        held.append((ident, req))
        yield req
        trace.append((sim.now, "granted", ident))
        yield sim.timeout(2)
        res.release(req)
        trace.append((sim.now, "released", ident))

    def canceller():
        yield sim.timeout(3)
        for ident, req in held:
            if ident % 4 == 1 and not req.triggered:
                req.cancel()
                req.cancel()  # idempotent
                trace.append((sim.now, "cancelled", ident))

    for i in range(24):
        sim.process(worker(i))
    sim.process(canceller())
    sim.run()
    trace.append(("final-queued", res.queued, res.count))
    return trace


def priority_resource_traffic(sim):
    """Priority grants with ties, plus cancellations inside the heap."""
    trace = []
    res = PriorityResource(sim, capacity=2)

    def worker(ident, prio, hold):
        req = res.request(priority=prio)
        yield req
        trace.append((sim.now, "granted", ident, prio))
        yield sim.timeout(hold)
        res.release(req)

    def late_canceller():
        req = res.request(priority=-5)
        yield sim.timeout(0)
        if not req.triggered:
            req.cancel()
            trace.append((sim.now, "cancelled-urgent"))
        else:
            res.release(req)
            trace.append((sim.now, "urgent-held"))

    rng = random.Random(7)
    for i in range(30):
        sim.process(worker(i, rng.randrange(-2, 3), 1 + i % 3))
    sim.process(late_canceller())
    sim.run()
    return trace


def store_and_container_traffic(sim):
    """Blocking puts/gets with filters and a quota container."""
    trace = []
    store = Store(sim, capacity=4)
    quota = Container(sim, capacity=10.0, init=5.0)

    def producer(ident):
        for n in range(5):
            yield store.put((ident, n))
            trace.append((sim.now, "put", ident, n))
            yield sim.timeout(1)

    def consumer(ident, wanted):
        for _ in range(5):
            item = yield store.get(
                lambda it, w=wanted: it[0] % 2 == w)
            trace.append((sim.now, "got", ident, item))
            yield quota.get(1.0)
            yield sim.timeout(2)
            yield quota.put(1.0)

    for i in range(4):
        sim.process(producer(i))
    sim.process(consumer("even", 0))
    sim.process(consumer("odd", 1))
    sim.run()
    trace.append(("final-level", quota.level, len(store.items)))
    return trace


def condition_fanin(sim):
    """AllOf/AnyOf over colliding timeouts, including pre-processed ones."""
    trace = []

    def waiter():
        early = sim.timeout(0)
        yield sim.timeout(1)  # `early` is processed by now
        events = [sim.timeout(i % 4, value=i) for i in range(30)]
        got = yield sim.all_of(events + [early])
        trace.append((sim.now, "all", len(got)))
        first = yield sim.any_of([sim.timeout(3, "slow"),
                                  sim.timeout(1, "fast")])
        trace.append((sim.now, "any", sorted(first.values())))

    sim.process(waiter())
    sim.run()
    return trace


def seeded_random_mix(sim):
    """A seeded blend of every primitive, 60 actors deep."""
    trace = []
    rng = random.Random(42)
    res = Resource(sim, capacity=5)
    store = Store(sim)

    def actor(ident):
        for step in range(rng.randrange(1, 5)):
            roll = rng.random()
            if roll < 0.4:
                yield sim.timeout(rng.randrange(0, 5))
            elif roll < 0.7:
                with res.request() as req:
                    yield req
                    yield sim.timeout(1)
            elif roll < 0.85:
                store.put((ident, step))
            elif store.items:
                item = yield store.get()
                trace.append((sim.now, "drained", ident, item))
            trace.append((sim.now, "step", ident, step))

    for i in range(60):
        sim.process(actor(i))
    sim.run()
    return trace


WORKLOADS = [
    timeout_storm,
    nested_spawns,
    interrupt_storm,
    resource_contention_with_cancels,
    priority_resource_traffic,
    store_and_container_traffic,
    condition_fanin,
    seeded_random_mix,
]


# -- the differential checks --------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=lambda w: w.__name__)
def test_fast_path_matches_reference(workload):
    fast = workload(Simulator())
    oracle = workload(ReferenceSimulator())
    assert fast == oracle


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=lambda w: w.__name__)
def test_hooked_path_matches_reference(workload):
    sim = Simulator()
    hook_count = [0]
    sim.pre_event_hooks.append(
        lambda s, e: hook_count.__setitem__(0, hook_count[0] + 1))
    assert sim.dispatch_plan == "hooked"
    hooked = workload(sim)
    oracle = workload(ReferenceSimulator())
    assert hooked == oracle
    assert hook_count[0] > 0


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=lambda w: w.__name__)
def test_stepwise_drain_matches_reference(workload):
    """run_until_empty (per-event step loop) agrees with the oracle too."""

    class StepSimulator(Simulator):
        __slots__ = ()

        def run(self, until=None):
            assert until is None, "workloads here run to exhaustion"
            self.run_until_empty()

    stepped = workload(StepSimulator())
    oracle = workload(ReferenceSimulator())
    assert stepped == oracle


def test_run_until_horizon_matches_reference():
    """Partial drains (run(until=t), then continue) stay equivalent."""

    def staged(sim):
        trace = []

        def ticker(ident, period):
            while True:
                yield sim.timeout(period)
                trace.append((sim.now, "tick", ident))

        for i, period in enumerate((1, 2, 3)):
            sim.process(ticker(i, period))
        sim.run(until=5)
        trace.append(("pause", sim.now))
        sim.run(until=9)
        trace.append(("end", sim.now))
        return trace

    assert staged(Simulator()) == staged(ReferenceSimulator())


def test_process_return_values_match_reference():
    def compute(sim):
        def inner():
            yield sim.timeout(2)
            return "inner-done"

        def outer():
            value = yield sim.process(inner())
            yield sim.timeout(1)
            return ("outer", value, sim.now)

        proc = sim.process(outer())
        sim.run()
        return proc.value

    assert compute(Simulator()) == compute(ReferenceSimulator())

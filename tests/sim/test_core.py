"""Unit tests for the simulator loop: ordering, run modes, error surfacing."""

import pytest

from repro.sim import Event, Simulator
from repro.sim.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_initial_time(self):
        assert Simulator(initial_time=100.0).now == 100.0

    def test_peek_empty_queue_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_event_time(self, sim):
        sim.timeout(5)
        sim.timeout(3)
        assert sim.peek() == 3.0

    def test_len_counts_scheduled_events(self, sim):
        sim.timeout(1)
        sim.timeout(2)
        assert len(sim) == 2


class TestStep:
    def test_advances_clock(self, sim):
        sim.timeout(4)
        sim.step()
        assert sim.now == 4.0

    def test_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_unhandled_failed_event_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.step()

    def test_defused_failed_event_does_not_raise(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("handled"))
        ev.defuse()
        sim.step()  # no exception
        assert ev.processed


class TestOrdering:
    def test_time_order(self, sim):
        order = []
        for delay in (5, 1, 3):
            sim.timeout(delay).callbacks.append(
                lambda ev, d=delay: order.append(d))
        sim.run()
        assert order == [1, 3, 5]

    def test_fifo_within_same_time(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(2).callbacks.append(
                lambda ev, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_schedule_rejected(self, sim):
        ev = Event(sim)
        ev._ok = True
        ev._value = None
        with pytest.raises(SimulationError):
            sim.schedule(ev, delay=-0.5)


class TestRun:
    def test_until_none_drains_queue(self, sim):
        sim.timeout(10)
        sim.run()
        assert sim.now == 10.0
        assert len(sim) == 0

    def test_until_time_stops_exactly(self, sim):
        def ticker():
            while True:
                yield sim.timeout(1)

        sim.process(ticker())
        sim.run(until=5.5)
        assert sim.now == 5.5

    def test_until_time_excludes_later_events(self, sim):
        fired = []
        sim.timeout(3).callbacks.append(lambda ev: fired.append(3))
        sim.timeout(8).callbacks.append(lambda ev: fired.append(8))
        sim.run(until=5)
        assert fired == [3]

    def test_until_past_time_rejected(self, sim):
        sim.timeout(10)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_until_event_returns_value(self, sim):
        def proc():
            yield sim.timeout(3)
            return "result"

        p = sim.process(proc())
        assert sim.run(until=p) == "result"

    def test_until_event_raises_failure(self, sim):
        def proc():
            yield sim.timeout(1)
            raise ValueError("deliberate")

        p = sim.process(proc())
        with pytest.raises(ValueError, match="deliberate"):
            sim.run(until=p)

    def test_until_already_processed_event(self, sim):
        t = sim.timeout(2, value="early")
        sim.run()
        assert sim.run(until=t) == "early"

    def test_until_event_stops_before_draining(self, sim):
        late = []
        sim.timeout(100).callbacks.append(lambda ev: late.append(1))

        def proc():
            yield sim.timeout(3)

        sim.run(until=sim.process(proc()))
        assert sim.now == 3.0
        assert late == []

    def test_until_never_triggered_event_raises(self, sim):
        ev = sim.event()  # nothing will ever trigger it
        sim.timeout(1)
        with pytest.raises(SimulationError):
            sim.run(until=ev)


class TestRunUntilEmpty:
    def test_counts_events(self, sim):
        sim.timeout(1)
        sim.timeout(2)
        assert sim.run_until_empty() == 2

    def test_max_events_guard(self, sim):
        def forever():
            while True:
                yield sim.timeout(1)

        sim.process(forever())
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until_empty(max_events=50)


class TestHooks:
    def test_pre_event_hooks_called(self, sim):
        seen = []
        sim.pre_event_hooks.append(lambda s, ev: seen.append(s.now))
        sim.timeout(2)
        sim.timeout(7)
        sim.run()
        assert seen == [2.0, 7.0]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def proc(name, delay):
                yield sim.timeout(delay)
                trace.append((name, sim.now))
                yield sim.timeout(delay)
                trace.append((name, sim.now))

            for i in range(10):
                sim.process(proc(f"p{i}", (i * 7) % 5 + 1))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()

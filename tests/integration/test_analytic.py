"""Analytic golden scenarios: hand-computed expectations, exact numbers.

Each test constructs a grid small enough that queue/transfer/compute
times can be derived with pencil and paper, and checks the simulator to
float precision.  These pin down the execution semantics the paper-scale
results rest on (overlap of fetch and queueing, equal-share contention,
FIFO processor grants, sequential users).
"""

import random

import pytest

from repro.grid import DataGrid, Dataset, DatasetCollection, Job, JobState, User
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def build(n_sites=3, processors=1, bandwidth=10.0, sizes=(1000,)):
    """Star grid; dataset dK (sizes[K] MB) primary at siteK."""
    sim = Simulator()
    topology = Topology.star(n_sites, bandwidth)
    datasets = DatasetCollection(
        [Dataset(f"d{i}", size) for i, size in enumerate(sizes)])
    grid = DataGrid.create(
        sim=sim, topology=topology, datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={s: processors for s in topology.sites},
        storage_capacity_mb=100_000,
        datamover_rng=random.Random(0),
    )
    grid.place_initial_replicas(
        {f"d{i}": f"site{i:02d}" for i in range(len(sizes))})
    return sim, grid


def job(job_id, origin, inputs, runtime):
    j = Job(job_id=job_id, user=f"u{job_id}", origin_site=origin,
            input_files=list(inputs), runtime_s=runtime)
    j.advance(JobState.SUBMITTED, 0.0)
    j.advance(JobState.DISPATCHED, 0.0)
    j.execution_site = origin
    return j


class TestSingleJob:
    def test_local_data_pure_compute(self):
        sim, grid = build()
        j = job(0, "site00", ["d0"], 400)
        p = grid.sites["site00"].enqueue(j)
        sim.run(until=p)
        # No fetch, no queue: response == compute == 400 s.
        assert j.completed_at == pytest.approx(400.0)

    def test_remote_fetch_then_compute(self):
        sim, grid = build()
        j = job(0, "site01", ["d0"], 400)
        p = grid.sites["site01"].enqueue(j)
        sim.run(until=p)
        # 1000 MB over two uncontended 10 MB/s hops: 100 s, then 400 s.
        assert j.data_ready_at == pytest.approx(100.0)
        assert j.completed_at == pytest.approx(500.0)

    def test_transfer_time_scales_inverse_bandwidth(self):
        for bw, expected in ((10.0, 100.0), (100.0, 10.0), (50.0, 20.0)):
            sim, grid = build(bandwidth=bw)
            j = job(0, "site01", ["d0"], 0)
            p = grid.sites["site01"].enqueue(j)
            sim.run(until=p)
            assert j.completed_at == pytest.approx(expected)


class TestQueueingExact:
    def test_fifo_serialization_one_processor(self):
        sim, grid = build(processors=1)
        jobs = [job(i, "site00", ["d0"], 100) for i in range(3)]
        procs = [grid.sites["site00"].enqueue(j) for j in jobs]
        sim.run(until=sim.all_of(procs))
        assert [j.completed_at for j in jobs] == [
            pytest.approx(100.0), pytest.approx(200.0),
            pytest.approx(300.0)]
        assert jobs[2].queue_time == pytest.approx(200.0)

    def test_max_queue_transfer_overlap_exact(self):
        # One processor runs a 300 s local job; a second job's 100 s
        # fetch fully overlaps the queue wait.
        sim, grid = build(processors=1)
        blocker = job(0, "site01", ["d1"], 300)
        fetcher = job(1, "site01", ["d0"], 50)
        grid.datasets.add(Dataset("d1", 100))
        grid.place_initial_replica("d1", "site01")
        p0 = grid.sites["site01"].enqueue(blocker)
        p1 = grid.sites["site01"].enqueue(fetcher)
        sim.run(until=sim.all_of([p0, p1]))
        # fetcher: max(queue 300, transfer 100) + 50 = 350.
        assert fetcher.completed_at == pytest.approx(350.0)
        assert fetcher.transfer_time == pytest.approx(0.0)

    def test_transfer_longer_than_queue(self):
        # Queue frees at 100 s but the fetch needs 200 s: the processor
        # then sits idle-holding until data arrives.
        sim, grid = build(processors=1, sizes=(2000,))
        blocker = job(0, "site01", ["d1"], 100)
        fetcher = job(1, "site01", ["d0"], 50)
        grid.datasets.add(Dataset("d1", 100))
        grid.place_initial_replica("d1", "site01")
        p0 = grid.sites["site01"].enqueue(blocker)
        p1 = grid.sites["site01"].enqueue(fetcher)
        sim.run(until=sim.all_of([p0, p1]))
        # fetcher: max(queue 100, transfer 200) + 50 = 250.
        assert fetcher.completed_at == pytest.approx(250.0)
        assert fetcher.transfer_time == pytest.approx(100.0)
        # Idle accounting: processor computed 150 s of the 250 s span.
        ce = grid.sites["site01"].compute
        assert ce.busy_processor_seconds(250.0) == pytest.approx(150.0)


class TestContentionExact:
    def test_two_fetches_share_source_uplink(self):
        # Both site01 and site02 pull d0 (1000 MB) from site00 at the
        # same instant: the shared source uplink halves both rates.
        sim, grid = build()
        j1 = job(0, "site01", ["d0"], 0)
        j2 = job(1, "site02", ["d0"], 0)
        p1 = grid.sites["site01"].enqueue(j1)
        p2 = grid.sites["site02"].enqueue(j2)
        sim.run(until=sim.all_of([p1, p2]))
        assert j1.completed_at == pytest.approx(200.0)
        assert j2.completed_at == pytest.approx(200.0)

    def test_dedup_two_jobs_same_site_one_transfer(self):
        # Two jobs at site01 both need d0: one wire transfer, both wait
        # the same 100 s (then serialize on the single processor).
        sim, grid = build(processors=2)
        j1 = job(0, "site01", ["d0"], 50)
        j2 = job(1, "site01", ["d0"], 50)
        p1 = grid.sites["site01"].enqueue(j1)
        p2 = grid.sites["site01"].enqueue(j2)
        sim.run(until=sim.all_of([p1, p2]))
        assert grid.transfers.total_mb_moved == pytest.approx(1000.0)
        assert j1.completed_at == pytest.approx(150.0)
        assert j2.completed_at == pytest.approx(150.0)


class TestSequentialUser:
    def test_user_makespan_is_sum_of_responses(self):
        sim, grid = build()
        jobs = [
            Job(job_id=i, user="u0", origin_site="site00",
                input_files=["d0"], runtime_s=100)
            for i in range(4)
        ]
        grid.add_user(User(sim, "u0", "site00", jobs, grid))
        makespan = grid.run()
        assert makespan == pytest.approx(400.0)
        for i, j in enumerate(jobs):
            assert j.submitted_at == pytest.approx(100.0 * i)

    def test_two_users_one_processor_interleave(self):
        sim, grid = build(processors=1)
        jobs_a = [Job(job_id=i, user="a", origin_site="site00",
                      input_files=["d0"], runtime_s=100) for i in range(2)]
        jobs_b = [Job(job_id=10 + i, user="b", origin_site="site00",
                      input_files=["d0"], runtime_s=100) for i in range(2)]
        grid.add_user(User(sim, "a", "site00", jobs_a, grid))
        grid.add_user(User(sim, "b", "site00", jobs_b, grid))
        makespan = grid.run()
        # 4 × 100 s of work on one processor, no gaps.
        assert makespan == pytest.approx(400.0)
        # Perfect alternation: a0 b0 a1 b1.
        starts = sorted(
            (j.started_at, j.user) for j in jobs_a + jobs_b)
        assert [u for _, u in starts] == ["a", "b", "a", "b"]


class TestReplicationTimingExact:
    def test_replica_transfer_duration(self):
        sim, grid = build()
        p = grid.datamover.replicate("d0", "site00", "site02")
        moved = sim.run(until=p)
        assert moved == pytest.approx(1000.0)
        assert sim.now == pytest.approx(100.0)  # 1000 MB over 10 MB/s

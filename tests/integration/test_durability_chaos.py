"""Durability acceptance: corruption + permanent rack loss, end to end.

One hostile plan — stochastic bit-rot plus a permanent rack-correlated
outage — drives two configurations of the same grid:

* **durable**: RF=2 with the RepairManager and a 300 s scrubber.  The
  acceptance bar is *zero data loss*: every dataset survives, every job
  completes, and repair traffic is accounted.
* **baseline**: detection only (RF=1, no repair).  Corruption and the
  rack loss destroy sole copies; the affected datasets must be recorded
  lost and their dependent jobs retired through the terminal
  ``abandon-data-lost`` edge — never left in limbo.

Both runs must be bitwise-deterministic across worker counts and cache
replays, and their trace streams must cross-validate exactly against
the metrics collector.
"""

import dataclasses

import pytest

from repro import FaultPlan, SimulationConfig, build_grid, make_workload
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import run_single
from repro.faults.plan import OutageGroup
from repro.sim.trace import Tracer
from repro.trace.crossval import counters_from_trace, mismatches

pytestmark = pytest.mark.slow

PLAN = FaultPlan(
    # The whole "rack" (site03) vanishes for good mid-run.
    outage_groups=(OutageGroup(("site03",), 6_000.0),),
    # Grid-wide bit-rot: roughly one silent corruption every 8000 s.
    corruption_mtbf_s=8_000.0,
    job_max_retries=10,
    redispatch_delay_s=10.0,
    seed=5,
)
BASE = SimulationConfig.paper().scaled(0.15).with_(
    fault_plan=PLAN, watchdog=True)
DURABLE = BASE.with_(replication_factor=2, durability_repair=True,
                     scrub_interval_s=300.0)
BASELINE = BASE.with_(scrub_interval_s=300.0)  # detection only
ES, DS = "JobDataPresent", "DataRandom"


def traced_run(config):
    tracer = Tracer()
    metrics = run_single(config, ES, DS, seed=0, tracer=tracer)
    return tracer.records, metrics


@pytest.fixture(scope="module")
def durable_run():
    return traced_run(DURABLE)


@pytest.fixture(scope="module")
def baseline_run():
    return traced_run(BASELINE)


class TestRepairOnSurvives:
    def test_zero_data_loss(self, durable_run):
        _, metrics = durable_run
        assert metrics.datasets_lost == 0
        assert metrics.jobs_abandoned_data_lost == 0

    def test_faults_actually_fired(self, durable_run):
        _, metrics = durable_run
        assert metrics.replicas_corrupted > 0
        assert metrics.outages > 0

    def test_every_job_completes(self, durable_run):
        _, metrics = durable_run
        assert metrics.n_jobs == BASE.n_jobs
        assert metrics.jobs_failed == 0
        assert metrics.completion_rate == 1.0

    def test_repairs_ran_and_are_accounted(self, durable_run):
        records, metrics = durable_run
        assert metrics.replicas_repaired > 0
        assert metrics.repair_bytes_mb > 0.0
        assert metrics.mean_repair_latency_s > 0.0
        done = [r for r in records if r.kind == "repair.done"]
        assert len(done) == metrics.replicas_repaired

    def test_inputs_were_verified(self):
        # Grid-level rerun of the same spec: checksum verification must
        # have guarded reads, and no corrupt copy may survive a scrub
        # interval undetected while still cataloged at run end.
        workload = make_workload(DURABLE, seed=0)
        sim, grid = build_grid(DURABLE, ES, DS, workload, seed=0)
        grid.run()
        durability = grid.durability
        assert durability is not None
        assert durability.stats.verifications > 0
        assert durability.stats.replicas_quarantined > 0
        for name in grid.datasets.names:
            assert grid.catalog.replica_count(name) > 0, name


class TestRepairOffRecordsLoss:
    def test_data_was_lost(self, baseline_run):
        _, metrics = baseline_run
        assert metrics.datasets_lost > 0
        assert metrics.replicas_repaired == 0
        assert metrics.repair_bytes_mb == 0.0

    def test_dependent_jobs_take_terminal_edge(self, baseline_run):
        records, metrics = baseline_run
        assert metrics.jobs_abandoned_data_lost > 0
        abandoned = [r for r in records
                     if r.kind == "job.abandoned_data_lost"]
        assert len(abandoned) == metrics.jobs_abandoned_data_lost
        lost = {r.detail["dataset"] for r in records
                if r.kind == "dataset.lost"}
        assert lost, "loss must be traced"
        assert all(r.detail["dataset"] in lost for r in abandoned)

    def test_books_still_balance(self, baseline_run):
        _, metrics = baseline_run
        assert (metrics.n_jobs + metrics.jobs_failed
                + metrics.jobs_abandoned_data_lost) == BASE.n_jobs


class TestCrossValidation:
    def test_durable_trace_matches_metrics_exactly(self, durable_run):
        records, metrics = durable_run
        assert mismatches(records, metrics) == {}

    def test_baseline_trace_matches_metrics_exactly(self, baseline_run):
        records, metrics = baseline_run
        assert mismatches(records, metrics) == {}

    def test_repair_bytes_sum_exactly(self, durable_run):
        records, metrics = durable_run
        counters = counters_from_trace(records)
        assert counters.repair_traffic_mb == metrics.repair_bytes_mb


class TestDeterminism:
    SPECS = [RunSpec(DURABLE, ES, DS, 0), RunSpec(BASELINE, ES, DS, 0)]

    @staticmethod
    def fingerprints(metrics_list):
        return [dataclasses.asdict(m) for m in metrics_list]

    def test_worker_count_invariance(self):
        serial = self.fingerprints(ParallelRunner(jobs=1).map(self.SPECS))
        pooled = self.fingerprints(ParallelRunner(jobs=2).map(self.SPECS))
        assert pooled == serial

    def test_cache_replay_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_runner = ParallelRunner(jobs=1, cache_dir=cache_dir)
        cold = self.fingerprints(cold_runner.map(self.SPECS))
        warm_runner = ParallelRunner(jobs=1, cache_dir=cache_dir)
        warm = self.fingerprints(warm_runner.map(self.SPECS))
        assert warm_runner.cache.hits == len(self.SPECS)
        assert warm == cold

    def test_durability_knobs_participate_in_cache_key(self):
        durable, baseline = self.SPECS
        assert durable.cache_key() != baseline.cache_key()

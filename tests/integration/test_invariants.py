"""Integration tests: system-wide invariants on full runs."""

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.grid.job import JobState
from repro.metrics import RunMetrics


@pytest.fixture(scope="module", params=[
    ("JobLocal", "DataDoNothing"),
    ("JobDataPresent", "DataRandom"),
    ("JobLeastLoaded", "DataLeastLoaded"),
    ("JobRandom", "DataRandom"),
])
def finished(request):
    es, ds = request.param
    config = SimulationConfig.paper().scaled(0.1).with_(
        ds_check_interval_s=100.0, watchdog=True)
    workload = make_workload(config, seed=0)
    sim, grid = build_grid(config, es, ds, workload, seed=0)
    makespan = grid.run()
    return config, workload, sim, grid, makespan


class TestJobAccounting:
    def test_every_job_completed_exactly_once(self, finished):
        config, workload, sim, grid, _ = finished
        assert len(grid.submitted_jobs) == config.n_jobs
        assert len(grid.completed_jobs) == config.n_jobs
        ids = [j.job_id for j in grid.completed_jobs]
        assert len(set(ids)) == config.n_jobs

    def test_timestamps_monotone(self, finished):
        _, _, _, grid, _ = finished
        for job in grid.completed_jobs:
            assert 0 <= job.submitted_at <= job.dispatched_at
            assert job.dispatched_at <= job.queued_at
            assert job.queued_at <= job.processor_at
            assert job.processor_at <= job.data_ready_at
            assert job.data_ready_at <= job.started_at
            assert job.started_at <= job.completed_at

    def test_compute_phase_matches_runtime(self, finished):
        _, _, _, grid, _ = finished
        for job in grid.completed_jobs:
            assert job.compute_time == pytest.approx(job.runtime_s)

    def test_site_counters_consistent(self, finished):
        config, _, _, grid, _ = finished
        per_site = sum(s.jobs_completed for s in grid.sites.values())
        assert per_site == config.n_jobs
        assert all(s.jobs_in_system == 0 for s in grid.sites.values())

    def test_jobs_ran_where_dispatched(self, finished):
        _, _, _, grid, _ = finished
        for job in grid.completed_jobs:
            assert job.execution_site in grid.sites


class TestDataConsistency:
    def test_catalog_matches_storage_exactly(self, finished):
        _, _, _, grid, _ = finished
        for site_name, storage in grid.storages.items():
            for fname in storage.files:
                assert grid.catalog.has_replica(fname, site_name), \
                    f"{fname} stored at {site_name} but not cataloged"
        for fname in grid.datasets.names:
            for site_name in grid.catalog.locations(fname):
                assert fname in grid.storages[site_name], \
                    f"{fname} cataloged at {site_name} but not stored"

    def test_every_dataset_still_has_a_replica(self, finished):
        _, _, _, grid, _ = finished
        for name in grid.datasets.names:
            assert grid.catalog.replica_count(name) >= 1

    def test_no_transfers_left_running(self, finished):
        _, _, _, grid, _ = finished
        assert grid.transfers.active == []

    def test_storage_never_over_capacity(self, finished):
        config, _, _, grid, _ = finished
        for storage in grid.storages.values():
            assert storage.used_mb <= storage.capacity_mb + 1e-6

    def test_no_pins_leak(self, finished):
        """After the run, only permanent primary pins remain."""
        _, workload, _, grid, _ = finished
        for site_name, storage in grid.storages.items():
            for fname in storage.files:
                if storage.is_pinned(fname):
                    entry = storage._entries[fname]
                    assert entry.pins == 1, \
                        f"{fname}@{site_name} has {entry.pins} pins"


class TestTrafficAccounting:
    def test_traffic_decomposition_complete(self, finished):
        _, _, _, grid, makespan = finished
        by_purpose = grid.transfers.mb_moved_by_purpose()
        assert set(by_purpose) <= {"job-fetch", "replication"}
        assert sum(by_purpose.values()) == pytest.approx(
            grid.transfers.total_mb_moved)

    def test_metrics_extraction_succeeds(self, finished):
        _, _, _, grid, makespan = finished
        m = RunMetrics.from_grid(grid, makespan)
        assert m.n_jobs > 0


class TestDeterminism:
    def test_identical_runs_bit_identical_metrics(self):
        config = SimulationConfig.paper().scaled(0.1)

        def once():
            workload = make_workload(config, seed=4)
            sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                                   workload, seed=4)
            makespan = grid.run()
            m = RunMetrics.from_grid(grid, makespan)
            return (m.avg_response_time_s, m.avg_data_transferred_mb,
                    m.idle_fraction, m.makespan_s, m.replications_done,
                    m.evictions, tuple(sorted(m.jobs_per_site.items())))

        assert once() == once()

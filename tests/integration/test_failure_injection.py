"""Failure injection: broken components must fail loudly and precisely.

A simulation that silently absorbs a buggy scheduler or a corrupted
catalog produces plausible-looking wrong numbers — the worst possible
outcome for a reproduction study.  These tests inject misbehaving
components and assert the failure surfaces at the injection point with a
diagnosable error, not as corrupted metrics.
"""

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.grid import Job, JobState
from repro.grid.datamover import DataUnavailableError
from repro.metrics import RunMetrics
from repro.scheduling.base import DatasetScheduler, ExternalScheduler


def small_setup(es="JobLocal", ds="DataDoNothing", seed=0):
    config = SimulationConfig.paper().scaled(0.05)
    workload = make_workload(config, seed)
    sim, grid = build_grid(config, es, ds, workload, seed)
    return config, sim, grid


class TestBrokenExternalScheduler:
    def test_es_raising_propagates_at_submit(self):
        _, sim, grid = small_setup()

        class Exploding(ExternalScheduler):
            name = "boom"

            def select_site(self, job, grid):
                raise RuntimeError("scheduler bug")

        grid.external_scheduler = Exploding()
        job = Job(job_id=0, user="u", origin_site="site00",
                  input_files=[grid.datasets.names[0]], runtime_s=10)
        with pytest.raises(RuntimeError, match="scheduler bug"):
            grid.submit(job)

    def test_es_returning_garbage_site_rejected(self):
        _, sim, grid = small_setup()

        class Liar(ExternalScheduler):
            name = "liar"

            def select_site(self, job, grid):
                return "atlantis"

        grid.external_scheduler = Liar()
        job = Job(job_id=0, user="u", origin_site="site00",
                  input_files=[grid.datasets.names[0]], runtime_s=10)
        with pytest.raises(ValueError, match="unknown site"):
            grid.submit(job)

    def test_es_raising_mid_run_crashes_run_not_metrics(self):
        _, sim, grid = small_setup()
        calls = {"n": 0}
        original = grid.external_scheduler

        class FailsLater(ExternalScheduler):
            name = "fails-later"

            def select_site(self, job, g):
                calls["n"] += 1
                if calls["n"] > 5:
                    raise RuntimeError("died mid-run")
                return original.select_site(job, g)

        grid.external_scheduler = FailsLater()
        with pytest.raises(RuntimeError, match="died mid-run"):
            grid.run()
        # The metrics layer then refuses the partial run (either because
        # nothing completed or because submitted jobs are unfinished).
        with pytest.raises(ValueError,
                           match="never completed|no completed jobs"):
            RunMetrics.from_grid(grid)


class TestBrokenDatasetScheduler:
    def test_ds_replicating_unknown_dataset_fails_its_process(self):
        _, sim, grid = small_setup()
        p = grid.datamover.replicate("no-such-file", "site00", "site01")
        with pytest.raises(KeyError, match="no-such-file"):
            sim.run(until=p)

    def test_ds_raising_inside_loop_crashes_run(self):
        config, sim, grid = small_setup()

        class Exploding(DatasetScheduler):
            name = "boom-ds"

            def attach(self, site, grid):
                def loop():
                    yield site.sim.timeout(50.0)
                    raise RuntimeError("DS bug")

                site.sim.process(loop(), name="boom")

        Exploding().attach(grid.sites["site00"], grid)
        with pytest.raises(RuntimeError, match="DS bug"):
            grid.run()


class TestCorruptedCatalog:
    def test_fetch_of_unregistered_data_fails_cleanly(self):
        _, sim, grid = small_setup()
        victim = grid.datasets.names[0]
        # Corrupt: deregister the only replica without touching storage.
        for site in list(grid.catalog.locations(victim)):
            grid.catalog.deregister(victim, site)
        # A site that doesn't physically hold it can no longer fetch it.
        holder = None
        for name, storage in grid.storages.items():
            if victim in storage:
                holder = name
        target = next(s for s in grid.sites if s != holder)
        p = grid.datamover.ensure_local(target, victim)
        with pytest.raises(DataUnavailableError, match=victim):
            sim.run(until=p)


class TestBrokenJobInput:
    def test_job_with_unknown_input_fails_its_execution(self):
        _, sim, grid = small_setup()
        job = Job(job_id=0, user="u", origin_site="site00",
                  input_files=["phantom-file"], runtime_s=10)
        job.advance(JobState.SUBMITTED, 0.0)
        job.advance(JobState.DISPATCHED, 0.0)
        job.execution_site = "site00"
        p = grid.sites["site00"].enqueue(job)
        with pytest.raises(KeyError, match="phantom-file"):
            sim.run(until=p)

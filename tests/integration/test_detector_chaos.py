"""Detector-driven chaos: observed-only failure knowledge, hostile plan.

The oracle channel is cut (``health_observed_only``): outages never mark
sites down in the information service, so the phi detector, the circuit
breakers, and the half-open probes are the *only* failure knowledge the
schedulers get.  The plan mixes a network partition, a flapping site,
and background MTBF churn; speculation is armed on top.  The bar: the
workload still finishes, the detector demonstrably did the driving, and
the speculative safety valve wastes only bounded work.
"""

import pytest

from repro import FaultPlan, SimulationConfig, run_single
from repro.faults import NetworkPartition

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def build_config():
    base = SimulationConfig.paper().scaled(0.15)
    n = base.n_sites
    cut = [f"site{s:02d}" for s in range(max(1, n // 4))]
    plan = FaultPlan(
        site_mtbf_s=20_000.0,
        site_mttr_s=2_000.0,
        partitions=(NetworkPartition(cut, 2_000.0, 5_000.0),),
        flap_sites=(f"site{n - 1:02d}",),
        flap_mtbf_s=900.0,
        flap_mttr_s=120.0,
        # Enough retry budget to outlast the partition window: a job
        # trapped on the minority side burns one attempt per redispatch
        # delay for up to 3000 s before the network heals.
        job_max_retries=150,
        redispatch_delay_s=30.0,
    )
    return base.with_(
        fault_plan=plan,
        watchdog=True,
        health_heartbeat_s=30.0,
        health_heartbeat_jitter=0.1,
        health_phi_threshold=3.0,
        health_observed_only=True,
        speculate_quantile=0.9,
        speculate_multiplier=3.0,
    )


@pytest.fixture(scope="module")
def chaos_run():
    config = build_config()
    metrics = run_single(config, "JobDataPresent", "DataRandom")
    return config, metrics


class TestObservedOnlyChaos:
    def test_workload_completes(self, chaos_run):
        config, metrics = chaos_run
        assert metrics.n_jobs + metrics.jobs_failed == config.n_jobs
        assert metrics.jobs_failed == 0
        assert metrics.makespan_s < float("inf")

    def test_detector_did_the_driving(self, chaos_run):
        _, metrics = chaos_run
        # Failures happened and were *observed*: suspicions were raised,
        # breakers tripped, and probes eventually re-admitted the sites.
        assert metrics.outages > 0
        assert metrics.suspicions > 0
        assert metrics.breaker_trips > 0
        assert metrics.breaker_restores > 0
        assert metrics.health_probes > 0

    def test_detection_latency_is_plausible(self, chaos_run):
        config, metrics = chaos_run
        # Genuine failures are noticed within a few heartbeats of
        # silence, never instantaneously (that would be the oracle).
        assert metrics.mean_detection_latency_s > 0.0
        assert metrics.mean_detection_latency_s < \
            10 * config.health_heartbeat_s

    def test_speculative_waste_is_bounded(self, chaos_run):
        config, metrics = chaos_run
        # The valve may fire, but never runs away: at most a sliver of
        # the workload gets a backup, and the thrown-away attempt-time
        # stays small next to the useful compute delivered.
        assert metrics.speculative_launched <= 0.2 * config.n_jobs
        useful_s = metrics.n_jobs * metrics.avg_compute_time_s
        assert metrics.speculative_wasted_s <= 0.1 * useful_s

    def test_books_balance(self, chaos_run):
        _, metrics = chaos_run
        assert metrics.n_jobs > 0
        assert metrics.completion_rate == 1.0

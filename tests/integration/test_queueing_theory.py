"""Validation against M/M/c queueing theory.

A single site with ``c`` processors, Poisson arrivals, exponential
service, and local data is exactly an M/M/c queue.  Running the *entire
stack* (user arrivals → External Scheduler → site queue → compute) and
comparing the measured mean wait with the Erlang-C prediction is a
strong end-to-end correctness check of the kernel's resources, event
ordering, and timestamp accounting.
"""

import math
import random

import pytest

from repro.grid import DataGrid, Dataset, DatasetCollection, Job
from repro.grid.arrivals import OpenArrivalProcess
from repro.network import Topology
from repro.scheduling import DataDoNothing, FIFOLocalScheduler, JobLocal
from repro.sim import Simulator


def erlang_c_wait(arrival_rate, service_rate, c):
    """Theoretical M/M/c mean waiting time (Erlang C)."""
    rho = arrival_rate / (c * service_rate)
    assert rho < 1, "offered load must be stable"
    a = arrival_rate / service_rate
    summation = sum(a ** k / math.factorial(k) for k in range(c))
    p_wait = (a ** c / (math.factorial(c) * (1 - rho))) / (
        summation + a ** c / (math.factorial(c) * (1 - rho)))
    return p_wait / (c * service_rate - arrival_rate)


def run_mmc(arrival_rate, mean_service, c, n_jobs, seed=0):
    """One-site grid driven open-loop; returns measured mean wait."""
    sim = Simulator()
    topology = Topology.star(1, 10.0)
    datasets = DatasetCollection([Dataset("d0", 100)])
    grid = DataGrid.create(
        sim=sim, topology=topology, datasets=datasets,
        external_scheduler=JobLocal(),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataDoNothing(),
        site_processors={"site00": c},
        storage_capacity_mb=10_000,
        datamover_rng=random.Random(seed),
    )
    grid.place_initial_replicas({"d0": "site00"})

    service_rng = random.Random(seed + 1)

    def factory(i):
        return Job(job_id=i, user="open", origin_site="site00",
                   input_files=["d0"],
                   runtime_s=service_rng.expovariate(1.0 / mean_service))

    arrivals = OpenArrivalProcess(
        sim, grid, rate_per_s=arrival_rate, job_factory=factory,
        n_jobs=n_jobs, rng=random.Random(seed + 2))
    sim.run(until=arrivals.start())

    waits = [j.queue_time for j in arrivals.submitted]
    return sum(waits) / len(waits)


class TestErlangC:
    @pytest.mark.parametrize("c,rho", [(1, 0.5), (2, 0.7), (4, 0.6)])
    def test_mean_wait_matches_theory(self, c, rho):
        mean_service = 100.0
        arrival_rate = rho * c / mean_service
        expected = erlang_c_wait(arrival_rate, 1.0 / mean_service, c)
        # Average three independent long runs to tame stochastic noise.
        measured = sum(
            run_mmc(arrival_rate, mean_service, c, n_jobs=4000, seed=s)
            for s in (1, 2, 3)) / 3
        assert measured == pytest.approx(expected, rel=0.15)

    def test_low_load_no_waiting(self):
        measured = run_mmc(arrival_rate=0.0005, mean_service=100.0,
                           c=4, n_jobs=500)
        assert measured < 1.0  # essentially never queues

    def test_heavier_load_waits_longer(self):
        light = run_mmc(0.005, 100.0, 1, n_jobs=2000)   # rho = 0.5
        heavy = run_mmc(0.008, 100.0, 1, n_jobs=2000)   # rho = 0.8
        assert heavy > 2 * light


class TestOpenArrivals:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OpenArrivalProcess(sim, None, rate_per_s=0,
                               job_factory=lambda i: None, n_jobs=1)
        with pytest.raises(ValueError):
            OpenArrivalProcess(sim, None, rate_per_s=1.0,
                               job_factory=lambda i: None, n_jobs=0)

    def test_submits_exact_count_and_completes(self):
        measured = run_mmc(0.01, 10.0, 2, n_jobs=100)
        assert measured >= 0.0

    def test_interarrival_times_exponentialish(self):
        # Kolmogorov-style sanity: mean interarrival ~ 1/λ.
        sim = Simulator()
        topology = Topology.star(1, 10.0)
        datasets = DatasetCollection([Dataset("d0", 100)])
        grid = DataGrid.create(
            sim=sim, topology=topology, datasets=datasets,
            external_scheduler=JobLocal(),
            local_scheduler=FIFOLocalScheduler(),
            dataset_scheduler=DataDoNothing(),
            site_processors={"site00": 64},
            storage_capacity_mb=10_000,
            datamover_rng=random.Random(0),
        )
        grid.place_initial_replicas({"d0": "site00"})
        arrivals = OpenArrivalProcess(
            sim, grid, rate_per_s=0.02,
            job_factory=lambda i: Job(
                job_id=i, user="u", origin_site="site00",
                input_files=["d0"], runtime_s=1.0),
            n_jobs=2000, rng=random.Random(7))
        sim.run(until=arrivals.start())
        times = sorted(j.submitted_at for j in arrivals.submitted)
        gaps = [b - a for a, b in zip(times[:-1], times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(50.0, rel=0.1)

"""Property-based tests over randomized whole-grid scenarios.

Hypothesis drives small but structurally varied grids (topology, scale,
bandwidth, algorithm pair, storage) through complete runs and checks the
invariants that must hold for *any* configuration.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, build_grid, make_workload
from repro.metrics import RunMetrics
from repro.scheduling.registry import ALL_DS, ALL_ES

scenario = st.fixed_dictionaries({
    "es": st.sampled_from(ALL_ES),
    "ds": st.sampled_from(ALL_DS),
    "seed": st.integers(min_value=0, max_value=50),
    "n_sites": st.integers(min_value=2, max_value=6),
    "n_jobs": st.integers(min_value=20, max_value=80),
    "n_datasets": st.integers(min_value=5, max_value=25),
    "bandwidth": st.sampled_from([5.0, 10.0, 100.0]),
    "topology": st.sampled_from(["hierarchical", "star"]),
    "storage_gb": st.sampled_from([15.0, 30.0, 1000.0]),
})


def run_scenario(params):
    # Keep storage feasible: each site must be able to hold its share of
    # the corpus (worst case 2 GB/dataset) plus one max-file of headroom,
    # otherwise initial placement correctly rejects the configuration.
    min_storage_mb = 2000.0 * (
        1 + -(-params["n_datasets"] // params["n_sites"]))
    config = SimulationConfig(
        n_users=params["n_sites"] * 2,
        n_sites=params["n_sites"],
        n_datasets=params["n_datasets"],
        n_jobs=max(params["n_jobs"], params["n_sites"] * 2),
        bandwidth_mbps=params["bandwidth"],
        topology=params["topology"],
        storage_capacity_mb=max(params["storage_gb"] * 1000,
                                min_storage_mb),
        ds_check_interval_s=150.0,
        seed=params["seed"],
    )
    workload = make_workload(config, seed=params["seed"])
    sim, grid = build_grid(config, params["es"], params["ds"], workload,
                           seed=params["seed"])
    makespan = grid.run()
    return config, grid, makespan


@given(params=scenario)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_scenario_completes_all_jobs(params):
    config, grid, makespan = run_scenario(params)
    assert len(grid.completed_jobs) == config.n_jobs
    assert makespan > 0
    metrics = RunMetrics.from_grid(grid, makespan)
    assert metrics.avg_response_time_s > 0
    assert 0.0 <= metrics.idle_fraction <= 1.0


@given(params=scenario)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_catalog_storage_consistency_everywhere(params):
    _, grid, _ = run_scenario(params)
    for site_name, storage in grid.storages.items():
        for fname in storage.files:
            assert grid.catalog.has_replica(fname, site_name)
        assert storage.used_mb <= storage.capacity_mb + 1e-6
    for name in grid.datasets.names:
        assert grid.catalog.replica_count(name) >= 1
        for site_name in grid.catalog.locations(name):
            assert name in grid.storages[site_name]


@given(params=scenario)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_response_time_decomposition_holds(params):
    _, grid, _ = run_scenario(params)
    for job in grid.completed_jobs:
        total = job.queue_time + job.transfer_time + job.compute_time
        # queued_at may lag submitted_at only through instantaneous
        # dispatch, so decomposition covers the full response time.
        assert total == pytest.approx(job.response_time, abs=1e-6)
        assert job.compute_time == pytest.approx(job.runtime_s, abs=1e-6)


@given(params=scenario)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_traffic_never_exceeds_worst_case(params):
    config, grid, _ = run_scenario(params)
    metrics = RunMetrics.from_grid(grid)
    workload_mb = sum(
        grid.datasets.get(f).size_mb
        for j in grid.completed_jobs for f in j.input_files)
    # Fetch traffic can't exceed one full fetch per job input (dedup and
    # caching only reduce it).
    assert metrics.fetch_traffic_mb <= workload_mb + 1e-6


@given(params=scenario)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_rerun_is_bit_identical(params):
    _, grid1, makespan1 = run_scenario(params)
    _, grid2, makespan2 = run_scenario(params)
    assert makespan1 == makespan2
    m1 = RunMetrics.from_grid(grid1, makespan1)
    m2 = RunMetrics.from_grid(grid2, makespan2)
    assert m1 == m2

"""Overload chaos matrix: every pair saturated, faulted, and audited.

The full ES × DS matrix runs under a moderate fault plan *and* genuine
saturation: an open-loop arrival stream well past the grid's service
rate, bounded queues, deadlines, and storage reservations, with the
invariant watchdog on for every run.  The bar: every run terminates,
every job lands in exactly one terminal ledger (completed / failed /
shed / expired — never silently lost), and the degradation counters
agree with the job states.
"""

import dataclasses

import pytest

from repro import (
    ALL_DS,
    ALL_ES,
    FaultPlan,
    SimulationConfig,
    run_matrix,
)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

MODERATE_PLAN = FaultPlan(
    site_mtbf_s=20_000.0,
    site_mttr_s=2_000.0,
    transfer_fail_prob=0.1,
    job_max_retries=40,
    redispatch_delay_s=30.0,
)


@pytest.fixture(scope="module")
def overload_matrix():
    config = SimulationConfig.paper().scaled(0.05).with_(
        fault_plan=MODERATE_PLAN,
        watchdog=True,
        queue_capacity=6,
        deflect_budget=2,
        job_deadline_s=4_000.0,
        storage_reservations=True,
        arrival_rate_per_s=0.2,
    )
    return run_matrix(config, seeds=(0,))


class TestOverloadChaosMatrix:
    def test_every_pair_ran(self, overload_matrix):
        assert set(overload_matrix.runs) == {
            (es, ds) for es in ALL_ES for ds in ALL_DS}
        assert all(len(runs) == 1
                   for runs in overload_matrix.runs.values())

    def test_jobs_conserved_in_every_cell(self, overload_matrix):
        total = overload_matrix.config.n_jobs
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            accounted = (metrics.n_jobs + metrics.jobs_failed
                         + metrics.jobs_shed + metrics.jobs_expired)
            assert accounted == total, (es, ds)
            assert metrics.n_jobs > 0, (es, ds)

    def test_saturation_actually_happened(self, overload_matrix):
        # The matrix must exercise the overload paths, not skate by.
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            refused = metrics.jobs_shed + metrics.jobs_expired
            assert refused > 0, (es, ds)
            assert metrics.peak_queue_depth > 0, (es, ds)

    def test_queue_bound_respected_everywhere(self, overload_matrix):
        cap = overload_matrix.config.queue_capacity
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            assert metrics.peak_queue_depth <= cap, (es, ds)

    def test_no_negative_metrics(self, overload_matrix):
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            for field, value in dataclasses.asdict(metrics).items():
                if isinstance(value, dict):
                    assert all(v >= 0 for v in value.values()), \
                        (es, ds, field)
                elif isinstance(value, (int, float)):
                    assert value >= 0, (es, ds, field)

    def test_runs_terminate_in_bounded_time(self, overload_matrix):
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            assert metrics.makespan_s < float("inf"), (es, ds)

    def test_admitted_work_still_mostly_completes(self, overload_matrix):
        # Graceful degradation: what the grid admits, it finishes.
        for (es, ds), (metrics,) in overload_matrix.runs.items():
            admitted = (metrics.n_jobs + metrics.jobs_failed
                        + metrics.jobs_expired)
            assert metrics.n_jobs / admitted >= 0.5, (es, ds)

"""Integration tests: the paper's qualitative claims must reproduce.

These run the actual 12-combination sweep.  The default tests use a
0.2-scaled grid (6 sites, 1200 jobs) for speed; the full Table-1 scale is
exercised once in ``TestPaperScale`` (a ~15 s run) since several claims —
notably the hotspot overload behind C1 — only show their full strength at
paper scale.
"""

import pytest

from repro import SimulationConfig, run_matrix
from repro.experiments.paper import reproduce_figure5
from repro.scheduling.registry import ALL_DS, ALL_ES

REPLICATED = ("DataRandom", "DataLeastLoaded")
OTHERS = ("JobRandom", "JobLeastLoaded", "JobLocal")


@pytest.fixture(scope="module")
def matrix_small():
    config = SimulationConfig.paper().scaled(0.2)
    return run_matrix(config, seeds=(0, 1))


@pytest.fixture(scope="module")
def matrix_paper():
    config = SimulationConfig.paper()
    return run_matrix(config, seeds=(0,))


class TestClaimsSmallScale:
    """Scaled-down sweep: the robust claims must already hold here."""

    def test_c2_datapresent_with_replication_wins(self, matrix_small):
        rt = matrix_small.metric_matrix("avg_response_time_s")
        best_jdp = min(rt[("JobDataPresent", ds)] for ds in REPLICATED)
        best_no_repl = min(rt[(es, "DataDoNothing")] for es in ALL_ES)
        assert best_jdp <= best_no_repl * 1.02

    def test_c3_datapresent_transfers_least(self, matrix_small):
        mb = matrix_small.metric_matrix("avg_data_transferred_mb")
        for ds in ALL_DS:
            jdp = mb[("JobDataPresent", ds)]
            for es in OTHERS:
                assert jdp < mb[(es, ds)] * 0.8

    def test_c5_two_replication_policies_similar(self, matrix_small):
        rt = matrix_small.metric_matrix("avg_response_time_s")
        a = rt[("JobDataPresent", "DataRandom")]
        b = rt[("JobDataPresent", "DataLeastLoaded")]
        assert abs(a - b) / min(a, b) < 0.25

    def test_c4_replication_does_not_help_others(self, matrix_small):
        rt = matrix_small.metric_matrix("avg_response_time_s")
        for es in OTHERS:
            no_repl = rt[(es, "DataDoNothing")]
            for ds in REPLICATED:
                assert rt[(es, ds)] >= no_repl * 0.90

    def test_idle_time_follows_response_ordering(self, matrix_small):
        idle = matrix_small.metric_matrix("idle_percent")
        # JobDataPresent with replication keeps processors busiest.
        jdp = min(idle[("JobDataPresent", ds)] for ds in REPLICATED)
        for es in OTHERS:
            for ds in ALL_DS:
                assert jdp <= idle[(es, ds)] + 1.0


@pytest.mark.slow
class TestPaperScale:
    """Full Table-1 scale: all six §5.3/§5.4 claims."""

    def test_c1_no_replication_local_best_datapresent_worst(
            self, matrix_paper):
        rt = matrix_paper.metric_matrix("avg_response_time_s")
        column = {es: rt[(es, "DataDoNothing")] for es in ALL_ES}
        assert max(column, key=column.get) == "JobDataPresent"
        # JobLocal is best (within noise of the runner-up).
        best = min(column, key=column.get)
        assert column["JobLocal"] <= column[best] * 1.05

    def test_c2_decoupled_combination_wins_everything(self, matrix_paper):
        rt = matrix_paper.metric_matrix("avg_response_time_s")
        best_jdp = min(rt[("JobDataPresent", ds)] for ds in REPLICATED)
        for es in ALL_ES:
            for ds in ALL_DS:
                if es == "JobDataPresent" and ds in REPLICATED:
                    continue
                assert best_jdp < rt[(es, ds)]

    def test_c2_beats_best_no_replication_clearly(self, matrix_paper):
        rt = matrix_paper.metric_matrix("avg_response_time_s")
        best_jdp = min(rt[("JobDataPresent", ds)] for ds in REPLICATED)
        best_no_repl = min(rt[(es, "DataDoNothing")] for es in ALL_ES)
        assert best_jdp < best_no_repl * 0.75

    def test_c3_large_traffic_gap(self, matrix_paper):
        """Figure 3b: 'the difference ... is very large (> 400 MB/job)'."""
        mb = matrix_paper.metric_matrix("avg_data_transferred_mb")
        for ds in ALL_DS:
            jdp = mb[("JobDataPresent", ds)]
            others_min = min(mb[(es, ds)] for es in OTHERS)
            assert others_min - jdp > 300.0

    def test_c4_replication_does_not_help_others(self, matrix_paper):
        rt = matrix_paper.metric_matrix("avg_response_time_s")
        for es in OTHERS:
            no_repl = rt[(es, "DataDoNothing")]
            for ds in REPLICATED:
                assert rt[(es, ds)] >= no_repl * 0.95

    def test_c5_replication_policies_equivalent(self, matrix_paper):
        rt = matrix_paper.metric_matrix("avg_response_time_s")
        a = rt[("JobDataPresent", "DataRandom")]
        b = rt[("JobDataPresent", "DataLeastLoaded")]
        assert abs(a - b) / min(a, b) < 0.15

    def test_figure4_idle_shape(self, matrix_paper):
        idle = matrix_paper.metric_matrix("idle_percent")
        # Without replication JobDataPresent idles the most (hotspot);
        # with replication it idles the least.
        no_repl = {es: idle[(es, "DataDoNothing")] for es in ALL_ES}
        assert max(no_repl, key=no_repl.get) == "JobDataPresent"
        with_repl = min(idle[("JobDataPresent", ds)] for ds in REPLICATED)
        for es in OTHERS:
            for ds in ALL_DS:
                assert with_repl < idle[(es, ds)]


@pytest.mark.slow
class TestBandwidthSensitivity:
    """Figure 5 / claim C6 at paper scale."""

    @pytest.fixture(scope="class")
    def figure5(self):
        return reproduce_figure5(SimulationConfig.paper(), seeds=(0,))

    def test_c6_no_clear_winner_at_high_bandwidth(self, figure5):
        fast = figure5["100MB/sec"]
        ratio = fast["JobLocal"] / fast["JobDataPresent"]
        assert 0.6 <= ratio <= 1.4

    def test_transfer_heavy_algorithms_improve_dramatically(self, figure5):
        for es in OTHERS:
            assert figure5["100MB/sec"][es] < figure5["10MB/sec"][es] * 0.8

    def test_datapresent_consistent_across_bandwidths(self, figure5):
        slow = figure5["10MB/sec"]["JobDataPresent"]
        fast = figure5["100MB/sec"]["JobDataPresent"]
        assert abs(slow - fast) / slow < 0.25

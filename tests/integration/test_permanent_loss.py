"""The pre-existing durability gap: permanent loss of a pinned primary.

The paper's model pins one primary replica per dataset and never looks
at it again.  A *permanent* site outage (or a rack-correlated group)
invalidates every replica record at the dead site — including sole
pinned primaries — and, without the durability layer, nothing records
the loss or repairs it: dependent jobs simply burn their retry budget
against data that no longer exists and are accounted FAILED.

These tests nail down that baseline behavior (catalog state, job
outcomes, conservation), then show how the durability layer changes
the semantics of the *same* scenario: losses become recorded facts and
dependent jobs take the terminal ``abandon-data-lost`` edge instead of
failing blind.
"""

import pytest

from repro import (
    FaultPlan,
    SimulationConfig,
    SiteOutage,
    build_grid,
    make_workload,
)
from repro.faults.plan import OutageGroup
from repro.grid.job import JobState
from repro.watchdog import Watchdog

RETRY_PLAN = dict(job_max_retries=3, redispatch_delay_s=10.0)
N_JOBS = 120  # paper().scaled(0.02)


def run_scenario(plan, **config_overrides):
    """Run the 2-site grid under ``plan``; returns (grid, sole_pinned).

    ``sole_pinned`` is the set of datasets whose only replica at t=0
    was the pinned primary at site00 — the copies the outage destroys.
    """
    config = SimulationConfig.paper().scaled(0.02).with_(
        fault_plan=plan, watchdog=True, **config_overrides)
    workload = make_workload(config, seed=0)
    sim, grid = build_grid(config, "JobDataPresent", "DataDoNothing",
                           workload, seed=0)
    sole_pinned = {
        n for n in grid.datasets.names
        if grid.catalog.locations(n) == ["site00"]
        and grid.storages["site00"].is_pinned(n)}
    grid.run()
    return grid, sole_pinned


@pytest.fixture(
    scope="module",
    params=["site-outage", "outage-group"],
)
def gap_run(request):
    """The baseline (no durability layer) under both fault spellings."""
    if request.param == "site-outage":
        plan = FaultPlan(site_outages=(SiteOutage("site00", 1000.0),),
                         **RETRY_PLAN)
    else:
        plan = FaultPlan(outage_groups=(OutageGroup(("site00",), 1000.0),),
                         **RETRY_PLAN)
    return run_scenario(plan)


class TestTheGap:
    def test_sole_pinned_primaries_existed(self, gap_run):
        _, sole_pinned = gap_run
        assert sole_pinned  # the scenario is live: pinned sole copies

    def test_catalog_drops_the_dead_sites_replicas(self, gap_run):
        grid, sole_pinned = gap_run
        for name in grid.datasets.names:
            assert "site00" not in grid.catalog.locations(name), name
        # Sole-hosted datasets end with zero replicas and — the gap —
        # nothing anywhere records that they are gone for good.
        for name in sole_pinned:
            assert grid.catalog.replica_count(name) == 0, name
        assert grid.durability is None

    def test_dependent_jobs_fail_blind(self, gap_run):
        grid, sole_pinned = gap_run
        assert grid.failed_jobs
        # Every failure traces back to an input that no longer exists
        # anywhere; the jobs burned retries to find that out.
        for job in grid.failed_jobs:
            assert any(f in sole_pinned for f in job.input_files), job

    def test_jobs_are_conserved(self, gap_run):
        grid, _ = gap_run
        assert len(grid.submitted_jobs) == N_JOBS
        assert (len(grid.completed_jobs)
                + len(grid.failed_jobs)) == N_JOBS
        states = {j.state for j in grid.submitted_jobs}
        assert states <= {JobState.COMPLETED, JobState.FAILED}

    def test_watchdog_has_no_objection(self, gap_run):
        # The gap is *legal* without the durability layer: the books
        # balance even though data silently vanished.
        grid, _ = gap_run
        Watchdog(grid.sim, grid).check_now()


class TestTheGapClosed:
    """Same outage, durability armed: loss becomes a recorded fact."""

    @pytest.fixture(scope="class")
    def durable_run(self):
        plan = FaultPlan(site_outages=(SiteOutage("site00", 1000.0),),
                         **RETRY_PLAN)
        return run_scenario(plan, replication_factor=2,
                            durability_repair=True)

    def test_every_empty_dataset_is_recorded_lost(self, durable_run):
        grid, _ = durable_run
        durability = grid.durability
        assert durability is not None
        for name in grid.datasets.names:
            if grid.catalog.replica_count(name) == 0:
                assert durability.is_lost(name), name
            else:
                assert not durability.is_lost(name), name

    def test_jobs_abandon_instead_of_failing_blind(self, durable_run):
        grid, _ = durable_run
        assert grid.failed_jobs == []
        assert grid.abandoned_jobs
        lost = set(grid.durability.lost_datasets())
        for job in grid.abandoned_jobs:
            assert any(f in lost for f in job.input_files), job
        assert (len(grid.completed_jobs)
                + len(grid.abandoned_jobs)) == N_JOBS

    def test_repair_saved_what_it_could(self, durable_run):
        grid, sole_pinned = durable_run
        stats = grid.durability.stats
        # The audit copied some primaries off site00 before it died.
        assert stats.replicas_repaired > 0
        saved = [n for n in sole_pinned
                 if grid.catalog.replica_count(n) > 0]
        assert saved
        assert stats.datasets_lost < len(sole_pinned)

    def test_watchdog_durability_invariant_holds(self, durable_run):
        grid, _ = durable_run
        Watchdog(grid.sim, grid).check_now()

"""Chaos smoke test: the full algorithm matrix under a hostile plan.

Every ES × DS pair runs a 4-site grid through heavy MTBF churn (~30%
per-site downtime), a lossy wide-area network (20% of transfers dropped
mid-flight) and a degraded-link window.  The bar: every run terminates
(no deadlock), the books stay non-negative and balanced, and the paper's
preferred pair (JobDataPresent + DataRandom) still completes ≥ 90% of
the workload.
"""

import dataclasses

import pytest

from repro import (
    ALL_DS,
    ALL_ES,
    FaultPlan,
    LinkDegradation,
    SimulationConfig,
    run_matrix,
)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

HOSTILE_PLAN = FaultPlan(
    # availability = MTBF / (MTBF + MTTR) = 0.7 -> ~30% downtime per site.
    site_mtbf_s=7_000.0,
    site_mttr_s=3_000.0,
    transfer_fail_prob=0.2,
    link_degradations=(
        LinkDegradation("site00", "tier1-0", 1_000.0, 4_000.0, 0.05),),
    job_max_retries=40,
    redispatch_delay_s=30.0,
)


@pytest.fixture(scope="module")
def chaos_matrix():
    config = SimulationConfig.paper().scaled(0.15).with_(
        fault_plan=HOSTILE_PLAN, watchdog=True)
    return run_matrix(config, seeds=(0,))


class TestChaosMatrix:
    def test_every_pair_ran(self, chaos_matrix):
        assert set(chaos_matrix.runs) == {
            (es, ds) for es in ALL_ES for ds in ALL_DS}
        assert all(len(runs) == 1 for runs in chaos_matrix.runs.values())

    def test_books_balance_everywhere(self, chaos_matrix):
        total = chaos_matrix.config.n_jobs
        for (es, ds), (metrics,) in chaos_matrix.runs.items():
            assert metrics.n_jobs + metrics.jobs_failed == total, (es, ds)
            assert metrics.n_jobs > 0, (es, ds)

    def test_no_negative_metrics(self, chaos_matrix):
        for (es, ds), (metrics,) in chaos_matrix.runs.items():
            for field, value in dataclasses.asdict(metrics).items():
                if isinstance(value, dict):
                    assert all(v >= 0 for v in value.values()), \
                        (es, ds, field)
                elif isinstance(value, (int, float)):
                    assert value >= 0, (es, ds, field)

    def test_faults_actually_happened(self, chaos_matrix):
        for (es, ds), (metrics,) in chaos_matrix.runs.items():
            assert metrics.outages > 0, (es, ds)
            assert metrics.site_downtime_s > 0, (es, ds)
            assert metrics.jobs_retried > 0, (es, ds)

    def test_runs_terminate_in_bounded_time(self, chaos_matrix):
        for (es, ds), (metrics,) in chaos_matrix.runs.items():
            assert metrics.makespan_s < float("inf"), (es, ds)

    def test_preferred_pair_completes_90_percent(self, chaos_matrix):
        (metrics,) = chaos_matrix.runs[("JobDataPresent", "DataRandom")]
        assert metrics.completion_rate >= 0.90

    def test_no_pair_collapses(self, chaos_matrix):
        # Even the weakest combination keeps the grid mostly useful.
        for (es, ds), (metrics,) in chaos_matrix.runs.items():
            assert metrics.completion_rate >= 0.5, (es, ds)

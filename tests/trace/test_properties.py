"""Property-based well-formedness of trace streams.

Hypothesis varies the seed and algorithm pair of a small traced run and
checks structural invariants that must hold for *any* trace the simulator
can produce:

* timestamps never decrease (the kernel clock is monotone);
* every job.start is preceded by a matching job.submit (and dispatch);
* every job finishes or fails at most once;
* transfer.done/abort events match an earlier transfer.start and never
  outnumber the starts;
* every record survives the wire-format round trip unchanged.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.scheduling.registry import ALL_DS, ALL_ES
from repro.sim.trace import Tracer
from repro.trace import schema
from repro.trace.jsonl import dumps_record

_CONFIG = SimulationConfig.paper().scaled(0.02).with_(
    popularity_threshold=2, ds_check_interval_s=120.0)

_JOB_EVENTS_AFTER_SUBMIT = {
    schema.JOB_DISPATCH, schema.JOB_QUEUE, schema.JOB_DATA_READY,
    schema.JOB_START, schema.JOB_FINISH, schema.JOB_RETRY,
    schema.JOB_REDIRECT, schema.JOB_FAIL,
}


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       es=st.sampled_from(ALL_ES),
       ds=st.sampled_from(ALL_DS))
def test_trace_well_formedness(seed, es, ds):
    tracer = Tracer()
    run_single(_CONFIG, es, ds, seed=seed, tracer=tracer)
    records = tracer.records
    assert records

    # Monotone timestamps, known kinds, wire round-trip.
    last_time = float("-inf")
    for record in records:
        assert record.time >= last_time, (
            f"time went backwards at {record}")
        last_time = record.time
        assert record.kind in schema.ALL_KINDS
        assert schema.dict_to_record(
            schema.record_to_dict(record)) == record
        # Canonical line is pure ASCII single-line JSON.
        line = dumps_record(record)
        assert "\n" not in line

    # Job lifecycle ordering and multiplicity.
    submitted, started, finished, failed = set(), set(), set(), set()
    for record in records:
        job = schema.job_id_of(record)
        if job is None:
            continue
        if record.kind == schema.JOB_SUBMIT:
            assert job not in submitted, f"job {job} submitted twice"
            submitted.add(job)
        elif record.kind in _JOB_EVENTS_AFTER_SUBMIT:
            assert job in submitted, (
                f"{record.kind} for job {job} before its submit")
        if record.kind == schema.JOB_START:
            started.add(job)
        elif record.kind == schema.JOB_FINISH:
            assert job in started, f"job {job} finished without starting"
            assert job not in finished, f"job {job} finished twice"
            finished.add(job)
        elif record.kind == schema.JOB_FAIL:
            assert job not in failed, f"job {job} failed twice"
            failed.add(job)
    assert finished | failed == submitted, (
        "some submitted jobs neither finished nor failed in the trace")

    # Transfer accounting: completions/aborts never outnumber starts, and
    # a done/abort is only legal for a (src, dst, dataset) seen starting.
    starts = {}
    ends = 0
    for record in records:
        key = (record.detail.get("src"), record.detail.get("dst"),
               record.detail.get("dataset"))
        if record.kind == schema.TRANSFER_START:
            starts[key] = starts.get(key, 0) + 1
        elif record.kind in (schema.TRANSFER_DONE, schema.TRANSFER_ABORT):
            assert starts.get(key, 0) > 0, (
                f"{record.kind} without a matching start: {record}")
            starts[key] -= 1
            ends += 1
    assert ends <= sum(
        1 for r in records if r.kind == schema.TRANSFER_START)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_kind_filter_is_a_pure_subset(seed):
    """Filtering kinds must drop records, never reorder or invent them."""
    full = Tracer()
    run_single(_CONFIG, "JobLeastLoaded", "DataRandom", seed=seed,
               tracer=full)
    filtered = Tracer(kinds=schema.expand_kinds(["job"]))
    run_single(_CONFIG, "JobLeastLoaded", "DataRandom", seed=seed,
               tracer=filtered)
    expected = [r for r in full.records
                if r.kind in schema.KIND_GROUPS["job"]]
    assert filtered.records == expected

"""Cross-validation: RunMetrics counters recomputed from the trace.

The metrics collector and the trace layer observe the same run through
independent code paths.  These tests demand *exact* agreement (integer
equality and same-order float sums) between the two on every shared
counter — in clean runs and under fault injection.
"""

import pytest

from repro.faults import FaultPlan, SiteOutage
from repro.experiments.runner import run_single
from repro.sim.trace import Tracer
from repro.trace.crossval import counters_from_trace, mismatches
from repro.trace.golden import golden_config


def _traced_run(config, es, ds):
    tracer = Tracer()
    metrics = run_single(config, es, ds, tracer=tracer)
    return tracer.records, metrics


class TestCleanRuns:
    @pytest.mark.parametrize("es,ds", [
        ("JobRandom", "DataDoNothing"),
        ("JobLeastLoaded", "DataRandom"),
        ("JobDataPresent", "DataLeastLoaded"),
        ("JobLocal", "DataRandom"),
    ])
    def test_trace_agrees_with_metrics(self, es, ds):
        records, metrics = _traced_run(golden_config(), es, ds)
        assert mismatches(records, metrics) == {}

    def test_counters_reflect_the_run(self):
        records, metrics = _traced_run(
            golden_config(), "JobLeastLoaded", "DataRandom")
        counters = counters_from_trace(records)
        assert counters.jobs_completed == 50
        assert counters.jobs_failed == 0
        assert counters.outages == 0
        # Same-order summation → exact float equality, not approximate.
        assert counters.fetch_traffic_mb == metrics.fetch_traffic_mb
        assert counters.replication_traffic_mb == \
            metrics.replication_traffic_mb


class TestFaultyRuns:
    def _faulty_config(self):
        plan = FaultPlan(
            site_outages=(SiteOutage("site01", 300.0, 1800.0),
                          SiteOutage("site03", 900.0, 2400.0)),
            transfer_fail_prob=0.05,
            seed=7,
        )
        return golden_config().with_(fault_plan=plan)

    @pytest.mark.parametrize("es,ds", [
        ("JobLeastLoaded", "DataDoNothing"),
        ("JobDataPresent", "DataRandom"),
    ])
    def test_trace_agrees_with_metrics_under_faults(self, es, ds):
        records, metrics = _traced_run(self._faulty_config(), es, ds)
        assert mismatches(records, metrics) == {}

    def test_fault_counters_are_exercised(self):
        records, metrics = _traced_run(
            self._faulty_config(), "JobLeastLoaded", "DataDoNothing")
        counters = counters_from_trace(records)
        assert counters.outages == 2
        assert counters.outages == metrics.outages
        # The outage windows overlap the run, so recovery machinery must
        # actually fire — otherwise the fault kinds are untested.
        assert counters.jobs_retried == metrics.jobs_retried
        assert counters.failovers == metrics.failovers
        assert counters.transfers_failed == metrics.transfers_failed


class TestOverloadedRuns:
    def _overloaded_config(self):
        return golden_config().with_(
            queue_capacity=2,
            deflect_budget=1,
            job_deadline_s=2_000.0,
            storage_reservations=True,
            arrival_rate_per_s=0.3,
        )

    @pytest.mark.parametrize("es,ds", [
        ("JobLeastLoaded", "DataDoNothing"),
        ("JobDataPresent", "DataRandom"),
    ])
    def test_trace_agrees_with_metrics_under_overload(self, es, ds):
        records, metrics = _traced_run(self._overloaded_config(), es, ds)
        assert mismatches(records, metrics) == {}

    def test_degradation_counters_are_exercised(self):
        records, metrics = _traced_run(
            self._overloaded_config(), "JobLeastLoaded", "DataDoNothing")
        counters = counters_from_trace(records)
        # The stream is well past the service rate: the shed/expiry
        # trace kinds must actually fire for the agreement to mean
        # anything.
        assert counters.jobs_shed + counters.jobs_expired > 0
        assert counters.jobs_shed == metrics.jobs_shed
        assert counters.jobs_deflected == metrics.jobs_deflected
        assert counters.jobs_expired == metrics.jobs_expired

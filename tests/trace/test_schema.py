"""Unit tests for the trace schema, JSONL round-trip, and summary views."""

import io

import pytest

from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.trace import jsonl, schema, summary


class TestKinds:
    def test_groups_cover_all_kinds(self):
        flat = [k for kinds in schema.KIND_GROUPS.values() for k in kinds]
        assert sorted(flat) == sorted(schema.ALL_KINDS)
        assert len(set(flat)) == len(flat)

    def test_every_kind_starts_with_its_group_prefix(self):
        for group, kinds in schema.KIND_GROUPS.items():
            for kind in kinds:
                assert kind.split(".")[0] == group

    def test_expand_group(self):
        assert schema.expand_kinds(["job"]) == schema.KIND_GROUPS["job"]

    def test_expand_exact_kind(self):
        assert schema.expand_kinds(["transfer.done"]) == ("transfer.done",)

    def test_expand_mixed_dedups_preserving_order(self):
        out = schema.expand_kinds(["transfer.done", "transfer", "job.submit"])
        assert out[0] == "transfer.done"
        assert out.count("transfer.done") == 1
        assert "job.submit" in out

    def test_expand_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            schema.expand_kinds(["job.submitt"])


class TestWireForm:
    def test_round_trip(self):
        record = TraceRecord(12.5, "job.submit",
                             {"job": 3, "inputs": ["f1", "f2"]})
        back = schema.dict_to_record(schema.record_to_dict(record))
        assert back == record

    def test_wire_dict_shape(self):
        data = schema.record_to_dict(TraceRecord(1.0, "job.queue", {"a": 1}))
        assert data == {"v": schema.SCHEMA_VERSION, "t": 1.0,
                        "k": "job.queue", "d": {"a": 1}}

    @pytest.mark.parametrize("broken", [
        [],                                        # not an object
        {"t": 1.0, "k": "x", "d": {}},             # missing version
        {"v": 99, "t": 1.0, "k": "x", "d": {}},    # future version
        {"v": 1, "t": "soon", "k": "x", "d": {}},  # non-numeric time
        {"v": 1, "t": 1.0, "k": 7, "d": {}},       # non-string kind
        {"v": 1, "t": 1.0, "k": "x", "d": []},     # non-object detail
    ])
    def test_validate_rejects_malformed(self, broken):
        with pytest.raises(ValueError):
            schema.validate_dict(broken)

    def test_job_id_of(self):
        assert schema.job_id_of(TraceRecord(0.0, "job.start", {"job": 9})) == 9
        assert schema.job_id_of(TraceRecord(0.0, "fault.site_up",
                                            {"site": "s"})) is None


class TestJsonl:
    def test_canonical_line_sorts_keys(self):
        line = jsonl.dumps_record(TraceRecord(1.0, "x", {"b": 2, "a": 1}))
        assert line.index('"a"') < line.index('"b"')
        assert " " not in line

    def test_file_round_trip(self, tmp_path):
        records = [TraceRecord(float(i), "job.queue", {"job": i})
                   for i in range(5)]
        path = tmp_path / "trace.jsonl"
        assert jsonl.write_jsonl(records, path) == 5
        assert jsonl.read_jsonl(path) == records

    def test_accepts_wire_dicts_and_stream_objects(self):
        record = TraceRecord(2.0, "job.start", {"job": 1})
        buffer = io.StringIO()
        jsonl.write_jsonl([schema.record_to_dict(record)], buffer)
        assert jsonl.read_jsonl(io.StringIO(buffer.getvalue())) == [record]

    def test_read_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(jsonl.dumps_record(
            TraceRecord(0.0, "job.queue", {})) + "\nnot json\n")
        with pytest.raises(ValueError, match="line 2"):
            jsonl.read_jsonl(path)

    def test_empty_trace_is_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert jsonl.write_jsonl([], path) == 0
        assert path.read_text() == ""
        assert jsonl.read_jsonl(path) == []


class TestTracer:
    def test_of_kind_uses_index_not_rescan(self):
        tracer = Tracer()
        for i in range(10):
            tracer.emit(float(i), "a" if i % 2 else "b", i=i)
        assert [r.detail["i"] for r in tracer.of_kind("a")] == [1, 3, 5, 7, 9]
        assert tracer.counts_by_kind() == {"a": 5, "b": 5}
        assert tracer.of_kind("missing") == []

    def test_kind_filter_and_cap(self):
        tracer = Tracer(kinds=("keep",), max_records=2)
        tracer.emit(0.0, "drop")
        tracer.emit(1.0, "keep")
        tracer.emit(2.0, "keep")
        tracer.emit(3.0, "keep")
        assert len(tracer.records) == 2
        assert tracer.dropped == 1

    def test_str_sorts_detail_keys(self):
        record = TraceRecord(1.0, "x", {"zeta": 1, "alpha": 2})
        text = str(record)
        assert text.index("alpha=2") < text.index("zeta=1")

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.emit(0.0, "job.submit", job=1)
        assert len(tracer) == 0


class TestSummary:
    def _records(self):
        return [
            TraceRecord(0.0, schema.JOB_SUBMIT, {"job": 1, "user": "u0"}),
            TraceRecord(0.0, schema.JOB_DISPATCH, {"job": 1, "site": "s0"}),
            TraceRecord(0.0, schema.JOB_QUEUE, {"job": 1, "site": "s0"}),
            TraceRecord(4.0, schema.JOB_DATA_READY, {"job": 1, "site": "s0"}),
            TraceRecord(4.0, schema.JOB_START, {"job": 1, "site": "s0"}),
            TraceRecord(9.0, schema.JOB_FINISH, {"job": 1, "site": "s0"}),
            TraceRecord(1.0, schema.FAULT_SITE_DOWN, {"site": "s1"}),
        ]

    def test_timeline_derivations(self):
        timelines = summary.job_timelines(self._records())
        assert list(timelines) == [1]
        timeline = timelines[1]
        assert timeline.site == "s0"
        assert timeline.completed and not timeline.failed
        assert timeline.retries == 0
        assert timeline.response_time == 9.0
        assert timeline.data_wait == 4.0
        assert timeline.compute_time == 5.0

    def test_format_timelines_renders(self):
        text = summary.format_timelines(self._records())
        assert "1 jobs" in text
        assert "completed" in text
        assert schema.JOB_FINISH in text

    def test_format_timelines_limit(self):
        records = []
        for job in range(5):
            records.append(TraceRecord(0.0, schema.JOB_SUBMIT, {"job": job}))
        text = summary.format_timelines(records, limit=2)
        assert "… 3 more jobs" in text

    def test_count_by_kind_sorted(self):
        counts = summary.count_by_kind(self._records())
        assert list(counts) == sorted(counts)
        assert counts[schema.JOB_SUBMIT] == 1

"""Seeded replay equivalence: serial vs. parallel vs. cache-replay.

One spec, three execution paths, identical metrics.  This is the
campaign-level determinism regression for the optimized kernel: if the
batched drain, bucketed queue, or free-list recycling perturbed event
order anywhere, the three paths would diverge (the parallel path
regenerates workloads in worker processes; the cache path re-reads
serialized metrics from disk).
"""

import dataclasses

from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import run_single
from repro.trace.golden import golden_config

_COMBOS = [
    ("JobDataPresent", "DataRandom", 0),
    ("JobLeastLoaded", "DataDoNothing", 1),
    ("JobRandom", "DataLeastLoaded", 2),
    ("JobLocal", "DataRandom", 3),
]


def _as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


def test_serial_parallel_and_cache_replay_agree(tmp_path):
    config = golden_config()
    specs = [RunSpec(config, es, ds, seed) for es, ds, seed in _COMBOS]

    serial = [run_single(config, es, ds, seed=seed)
              for es, ds, seed in _COMBOS]

    parallel = ParallelRunner(jobs=2).map(specs)

    cached_runner = ParallelRunner(jobs=2, cache_dir=tmp_path)
    first_pass = cached_runner.map(specs)   # cold: computes and stores
    assert cached_runner.cache.hits == 0
    replay = cached_runner.map(specs)       # warm: pure cache replay
    assert cached_runner.cache.hits == len(specs)

    assert _as_dicts(serial) == _as_dicts(parallel)
    assert _as_dicts(serial) == _as_dicts(first_pass)
    assert _as_dicts(serial) == _as_dicts(replay)

"""Tracing must never change, and must itself be, deterministic.

Three contracts:

* a traced run's metrics are identical to the untraced run of the same
  seed (emissions draw no randomness and schedule no events);
* the same spec traced twice yields byte-identical JSONL;
* the parallel runner returns byte-identical traces at 1, 2, and 4
  workers (results merged by input position, workloads regenerated in
  the workers).
"""

import dataclasses

import pytest

from repro.experiments.parallel import ParallelRunner, RunSpec, TracedRun
from repro.experiments.runner import run_single
from repro.sim.trace import Tracer
from repro.trace.golden import golden_config
from repro.trace.jsonl import dumps
from repro.trace.schema import expand_kinds


class TestTracingIsPassive:
    @pytest.mark.parametrize("es,ds", [
        ("JobDataPresent", "DataRandom"),
        ("JobRandom", "DataLeastLoaded"),
    ])
    def test_traced_metrics_equal_untraced_metrics(self, es, ds):
        config = golden_config()
        plain = run_single(config, es, ds)
        traced = run_single(config, es, ds, tracer=Tracer())
        assert dataclasses.asdict(plain) == dataclasses.asdict(traced)

    def test_same_seed_yields_identical_jsonl(self):
        config = golden_config()
        payloads = []
        for _ in range(2):
            tracer = Tracer()
            run_single(config, "JobLeastLoaded", "DataRandom", tracer=tracer)
            payloads.append(dumps(tracer.records))
        assert payloads[0] == payloads[1]


class TestParallelDeterminism:
    def _specs(self, trace_kinds=None):
        config = golden_config()
        return [
            RunSpec(config, es, ds, seed, trace=True,
                    trace_kinds=trace_kinds)
            for es, ds, seed in [
                ("JobDataPresent", "DataRandom", 0),
                ("JobLeastLoaded", "DataDoNothing", 1),
                ("JobRandom", "DataLeastLoaded", 2),
                ("JobLocal", "DataRandom", 3),
            ]
        ]

    def test_traced_runs_are_byte_identical_across_worker_counts(self):
        baseline = None
        for jobs in (1, 2, 4):
            results = ParallelRunner(jobs=jobs).map(self._specs())
            assert all(isinstance(r, TracedRun) for r in results)
            payloads = [dumps(r.records) for r in results]
            if baseline is None:
                baseline = payloads
            else:
                assert payloads == baseline, (
                    f"trace bytes differ at {jobs} workers")

    def test_traced_specs_bypass_the_result_cache(self, tmp_path):
        spec = self._specs()[0]
        runner = ParallelRunner(jobs=1, cache_dir=tmp_path)
        first = runner.map([spec])[0]
        assert isinstance(first, TracedRun)
        assert runner.cache.hits == 0
        # Nothing was stored either: a traced result cannot round-trip
        # through the metrics-only cache.
        again = runner.map([spec])[0]
        assert isinstance(again, TracedRun)
        assert runner.cache.hits == 0
        assert dumps(first.records) == dumps(again.records)

        # The untraced twin of the spec still uses the cache normally.
        plain = dataclasses.replace(spec, trace=False, trace_kinds=None)
        runner.map([plain])
        cached = runner.map([plain])[0]
        assert runner.cache.hits == 1
        assert dataclasses.asdict(cached) == dataclasses.asdict(first.metrics)

    def test_kind_filtered_parallel_traces_match_serial(self):
        kinds = expand_kinds(["job", "transfer"])
        serial = ParallelRunner(jobs=1).map(self._specs(kinds))
        pooled = ParallelRunner(jobs=2).map(self._specs(kinds))
        assert [dumps(r.records) for r in serial] == \
            [dumps(r.records) for r in pooled]
        assert all(
            record["k"].split(".")[0] in ("job", "transfer")
            for result in serial for record in result.records)

"""Golden-trace regression tests: one digest per (ES, DS) combination.

Each test runs the canonical 50-job workload (``golden_config``) with one
algorithm pair, fingerprints the full domain-event stream, and compares
against the committed digest in ``tests/trace/golden/digests.json``.  Any
behavioural drift — different site choice, different transfer order, a
replication firing at a different count — fails the affected combos with
a first-divergence report.

Regenerate intentionally changed baselines with::

    PYTHONPATH=src python -m pytest tests/trace/test_golden.py --regen-golden
"""

import json
from pathlib import Path

import pytest

from repro.scheduling.registry import ALL_DS, ALL_ES
from repro.trace.golden import describe_divergence, fingerprint, run_golden

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"
COMBOS = [(es, ds) for es in ALL_ES for ds in ALL_DS]

# Session-local memo of golden runs, so the digest-uniqueness test reuses
# the streams already produced by the per-combo tests.
_RUNS = {}


def _golden_records(es, ds):
    key = (es, ds)
    if key not in _RUNS:
        _RUNS[key] = run_golden(es, ds)
    return _RUNS[key]


def _load_digests():
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _store_digest(key, fp):
    digests = _load_digests()
    digests[key] = fp
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("es,ds", COMBOS,
                         ids=[f"{es}-{ds}" for es, ds in COMBOS])
def test_golden_trace(es, ds, request):
    records = _golden_records(es, ds)
    assert records, "golden run produced an empty trace"
    fp = fingerprint(records)
    key = f"{es}/{ds}"
    if request.config.getoption("--regen-golden"):
        _store_digest(key, fp)
        return
    stored = _load_digests().get(key)
    assert stored is not None, (
        f"no golden digest for {key}; generate with "
        f"pytest tests/trace/test_golden.py --regen-golden")
    assert (fp["digest"], fp["count"]) == (stored["digest"],
                                           stored["count"]), \
        describe_divergence(stored, records)


def test_all_combo_digests_are_distinct():
    """Each of the 12 combinations must leave a distinguishable trace.

    If two combos ever hash identically, the golden harness has lost the
    power to localize a regression to an algorithm pair (and the canonical
    workload is too small to exercise the schedulers).
    """
    digests = _load_digests()
    missing = [f"{es}/{ds}" for es, ds in COMBOS
               if f"{es}/{ds}" not in digests]
    assert not missing, (
        f"golden digests missing for {missing}; run --regen-golden")
    seen = {}
    for key in (f"{es}/{ds}" for es, ds in COMBOS):
        digest = digests[key]["digest"]
        assert digest not in seen, (
            f"{key} and {seen[digest]} produced identical traces")
        seen[digest] = key


def test_perturbation_fails_only_affected_combos(request, monkeypatch):
    """Changing one scheduler's behaviour must fail exactly its combos."""
    if request.config.getoption("--regen-golden"):
        pytest.skip("baselines are being regenerated")
    digests = _load_digests()
    if not digests:
        pytest.skip("no golden digests committed yet")

    from repro.scheduling.external import JobLeastLoaded

    def first_site(self, job, grid):
        return grid.info.site_names[0]

    monkeypatch.setattr(JobLeastLoaded, "select_site", first_site)

    perturbed = fingerprint(run_golden("JobLeastLoaded", "DataDoNothing"))
    stored = digests["JobLeastLoaded/DataDoNothing"]
    assert perturbed["digest"] != stored["digest"], (
        "perturbing JobLeastLoaded did not change its golden trace")

    unaffected = fingerprint(run_golden("JobLocal", "DataDoNothing"))
    stored_local = digests["JobLocal/DataDoNothing"]
    assert (unaffected["digest"], unaffected["count"]) == (
        stored_local["digest"], stored_local["count"]), \
        describe_divergence(stored_local, _golden_records(
            "JobLocal", "DataDoNothing"))


def test_divergence_report_is_readable():
    """A tampered baseline yields a pointable first-divergence window."""
    records = _golden_records("JobLocal", "DataDoNothing")
    fp = fingerprint(records)
    tampered = dict(fp)
    tampered["checkpoints"] = list(fp["checkpoints"])
    if tampered["checkpoints"]:
        tampered["checkpoints"][1] = "0" * 64
    tampered["digest"] = "0" * 64
    report = describe_divergence(tampered, records)
    assert "diverges from golden" in report
    assert "--regen-golden" in report
    assert "#" in report  # record lines from the diverging window

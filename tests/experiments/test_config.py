"""Unit tests for SimulationConfig (Table 1)."""

import pytest

from repro.experiments.config import (
    SCENARIO_1_BANDWIDTH,
    SCENARIO_2_BANDWIDTH,
    SimulationConfig,
)


class TestTable1:
    """The defaults must encode Table 1 of the paper verbatim."""

    def test_users(self):
        assert SimulationConfig.paper().n_users == 120

    def test_sites(self):
        assert SimulationConfig.paper().n_sites == 30

    def test_processors_per_site(self):
        c = SimulationConfig.paper()
        assert (c.min_processors_per_site, c.max_processors_per_site) == (2, 5)

    def test_datasets(self):
        assert SimulationConfig.paper().n_datasets == 200

    def test_bandwidth_scenarios(self):
        assert SCENARIO_1_BANDWIDTH == 10.0
        assert SCENARIO_2_BANDWIDTH == 100.0
        assert SimulationConfig.paper().bandwidth_mbps == 10.0
        assert SimulationConfig.paper(
            bandwidth_mbps=SCENARIO_2_BANDWIDTH).bandwidth_mbps == 100.0

    def test_jobs(self):
        assert SimulationConfig.paper().n_jobs == 6000

    def test_workload_constants(self):
        c = SimulationConfig.paper()
        assert c.min_dataset_mb == 500.0
        assert c.max_dataset_mb == 2000.0
        assert c.compute_seconds_per_gb == 300.0
        assert c.inputs_per_job == 1
        assert c.popularity_model == "geometric"

    def test_table1_rows_render(self):
        rows = SimulationConfig.paper().table1()
        assert rows["Total number of users"] == "120"
        assert rows["Number of Sites"] == "30"
        assert rows["Compute Elements/Site"] == "2-5"
        assert rows["Total number of Datasets"] == "200"
        assert rows["Connectivity Bandwidth"] == "10 MB/sec"
        assert rows["Size of Workload"] == "6000 jobs"


class TestValidation:
    def test_jobs_fewer_than_users_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_users=100, n_jobs=50)

    def test_bad_processor_range_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(min_processors_per_site=5,
                             max_processors_per_site=2)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(bandwidth_mbps=0)

    def test_storage_below_largest_dataset_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(storage_capacity_mb=1000.0)


class TestScaling:
    def test_scaled_preserves_ratios_roughly(self):
        c = SimulationConfig.paper().scaled(0.1)
        assert c.n_sites == 3
        assert c.n_users == 12
        assert c.n_datasets == 20
        assert c.n_jobs == 600

    def test_scaled_keeps_other_fields(self):
        c = SimulationConfig.paper().scaled(0.1)
        assert c.bandwidth_mbps == 10.0
        assert c.compute_seconds_per_gb == 300.0

    def test_scaled_floors(self):
        c = SimulationConfig.paper().scaled(0.001)
        assert c.n_sites >= 2
        assert c.n_users >= c.n_sites
        assert c.n_jobs >= c.n_users

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SimulationConfig.paper().scaled(0)


class TestWith:
    def test_with_replaces_fields(self):
        c = SimulationConfig.paper().with_(bandwidth_mbps=100.0, seed=7)
        assert c.bandwidth_mbps == 100.0
        assert c.seed == 7
        assert c.n_jobs == 6000

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            SimulationConfig.paper().n_jobs = 5

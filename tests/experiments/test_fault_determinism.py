"""Determinism regression: faulty runs are bitwise-reproducible.

A run under a fault plan must be a pure function of (config, es, ds,
seed): the same seed and plan produce byte-identical metrics whether the
specs execute serially, across 2 or 4 worker processes, or come back
from the on-disk result cache — and an all-zero plan must be
indistinguishable from no plan at all.
"""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import FaultPlan, SimulationConfig, SiteOutage, run_single
from repro.experiments.parallel import ParallelRunner, RunSpec

PLAN = FaultPlan(
    site_outages=(SiteOutage("site00", 400.0, 2500.0),),
    transfer_fail_prob=0.25,
    site_mtbf_s=9_000.0,
    site_mttr_s=1_500.0,
)
CONFIG = SimulationConfig.paper().scaled(0.02).with_(fault_plan=PLAN)

SPECS = [
    RunSpec(CONFIG, es, ds, seed)
    for es, ds in (("JobDataPresent", "DataRandom"),
                   ("JobRandom", "DataDoNothing"))
    for seed in (0, 1)
]


def fingerprints(metrics_list):
    return [dataclasses.asdict(m) for m in metrics_list]


@pytest.fixture(scope="module")
def serial_baseline():
    return fingerprints(ParallelRunner(jobs=1).map(SPECS))


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_pool_matches_serial(self, jobs, serial_baseline):
        got = fingerprints(ParallelRunner(jobs=jobs).map(SPECS))
        assert got == serial_baseline

    def test_serial_rerun_identical(self, serial_baseline):
        assert fingerprints(ParallelRunner(jobs=1).map(SPECS)) == \
            serial_baseline


class TestCacheInvariance:
    def test_hit_and_miss_agree(self, tmp_path, serial_baseline):
        cache_dir = tmp_path / "cache"
        runner = ParallelRunner(jobs=1, cache_dir=cache_dir)
        cold = fingerprints(runner.map(SPECS))
        assert runner.cache.hits == 0
        warm_runner = ParallelRunner(jobs=1, cache_dir=cache_dir)
        warm = fingerprints(warm_runner.map(SPECS))
        assert warm_runner.cache.hits == len(set(SPECS))
        assert cold == serial_baseline
        assert warm == serial_baseline

    def test_plan_participates_in_cache_key(self):
        spec = SPECS[0]
        other_plan = PLAN.with_(transfer_fail_prob=0.3)
        other = RunSpec(CONFIG.with_(fault_plan=other_plan),
                        spec.es_name, spec.ds_name, spec.seed)
        assert spec.cache_key() != other.cache_key()


class TestHashSeedInvariance:
    # A faulty run must not depend on Python's per-process hash
    # randomization: iteration over id-hashed objects (processes,
    # events) anywhere in an outage's kill path would reorder
    # interrupts and silently fork the timeline.  Pools that fork
    # inherit the parent's hash seed, so only fresh interpreters with
    # explicitly different seeds can catch this class of bug.
    # Scale 0.05, not 0.02: outages must catch *several* concurrent
    # executions per site for interrupt order to be observable at all
    # (verified to diverge under a reintroduced set-ordering bug).
    SCRIPT = """
import dataclasses, json
from repro import FaultPlan, SimulationConfig, SiteOutage, run_single
plan = FaultPlan(site_outages=(SiteOutage("site00", 400.0, 2500.0),),
                 transfer_fail_prob=0.1,
                 site_mtbf_s=9_000.0, site_mttr_s=1_500.0)
config = SimulationConfig.paper().scaled(0.05).with_(fault_plan=plan)
metrics = run_single(config, "JobDataPresent", "DataRandom", seed=0)
print(json.dumps(dataclasses.asdict(metrics), sort_keys=True))
"""

    def one_run(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True, text=True, env=env, check=True)
        return result.stdout

    def test_metrics_survive_hash_randomization(self):
        assert self.one_run("1") == self.one_run("2")


class TestNullPlanIdentity:
    def test_all_zero_plan_is_bitwise_no_plan(self):
        config = SimulationConfig.paper().scaled(0.02)
        bare = run_single(config, "JobDataPresent", "DataRandom", seed=3)
        nulled = run_single(config.with_(fault_plan=FaultPlan.none()),
                            "JobDataPresent", "DataRandom", seed=3)
        assert dataclasses.asdict(bare) == dataclasses.asdict(nulled)

    def test_fault_free_run_reports_zero_fault_metrics(self):
        config = SimulationConfig.paper().scaled(0.02)
        metrics = run_single(config, "JobDataPresent", "DataRandom", seed=3)
        assert metrics.jobs_failed == 0
        assert metrics.jobs_retried == 0
        assert metrics.transfers_failed == 0
        assert metrics.failovers == 0
        assert metrics.outages == 0
        assert metrics.site_downtime_s == 0.0
        assert metrics.downtime_per_site == {}
        assert metrics.completion_rate == 1.0

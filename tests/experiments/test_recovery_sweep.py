"""Unit tests for the recovery-sweep experiment.

Covers the sweep grid's shape, the detection-speed/false-positive
trade-off it exists to expose (lower phi detects faster but suspects
healthy sites more), the safe-threshold picker, and the determinism
contract: serial vs parallel and cache replay are bitwise-identical.
"""

import dataclasses

import pytest

from repro import SimulationConfig
from repro.experiments.sensitivity import (
    DEFAULT_MTBFS,
    DEFAULT_THRESHOLDS,
    recovery_sweep,
)

PAIRS = (("JobDataPresent", "DataRandom"),)
THRESHOLDS = (2.0, 6.0)
MTBFS = (0.0, 3600.0)
PARTITIONED = (False, True)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig.paper().scaled(0.05).with_(
        health_heartbeat_jitter=0.3)


@pytest.fixture(scope="module")
def result(config):
    return recovery_sweep(config, thresholds=THRESHOLDS, mtbfs=MTBFS,
                          partitioned=PARTITIONED, pairs=PAIRS,
                          seeds=(0,), partition_start_s=600.0,
                          partition_duration_s=600.0)


def _dump(result):
    return {
        key: [dataclasses.asdict(m) for m in runs]
        for key, runs in result.runs.items()
    }


class TestShape:
    def test_every_cell_populated(self, result):
        assert set(result.runs) == {
            (es, ds, t, mtbf, part)
            for es, ds in PAIRS for t in THRESHOLDS
            for mtbf in MTBFS for part in PARTITIONED}
        assert all(len(runs) == 1 for runs in result.runs.values())

    def test_series_in_threshold_order(self, result):
        es, ds = PAIRS[0]
        series = result.series(es, ds, MTBFS[0], False, "goodput")
        assert len(series) == len(THRESHOLDS)
        assert all(v >= 0 for v in series)

    def test_table_lists_every_cell(self, result):
        table = result.table()
        for word in ("phi", "mtbf", "fp rate", "goodput"):
            assert word in table
        for threshold in THRESHOLDS:
            assert f"{threshold:g}" in table


class TestDetectorTradeoff:
    def test_detection_latency_grows_with_threshold(self, result):
        """phi is a patience knob: a more patient detector waits longer
        before suspecting a genuinely dead site."""
        es, ds = PAIRS[0]
        latencies = result.series(es, ds, MTBFS[-1], False,
                                  "mean_detection_latency_s")
        assert latencies[0] < latencies[-1]

    def test_no_failures_without_faults(self, result):
        es, ds = PAIRS[0]
        for threshold in THRESHOLDS:
            run = result.runs[(es, ds, threshold, 0.0, False)][0]
            assert run.outages == 0
            assert run.completion_rate == 1.0

    def test_fault_free_suspicions_are_all_false(self, result):
        """With MTBF 0 and no partition every suspicion is, by
        construction, a false positive — the control cell the
        safe-threshold picker needs."""
        es, ds = PAIRS[0]
        run = result.runs[(es, ds, THRESHOLDS[0], 0.0, False)][0]
        assert run.false_suspicions == run.suspicions

    def test_partition_cells_actually_partition(self, result):
        es, ds = PAIRS[0]
        with_part = result.runs[(es, ds, THRESHOLDS[0], 0.0, True)][0]
        assert with_part.suspicions > 0
        assert with_part.breaker_trips > 0

    def test_safe_threshold_is_from_the_swept_grid(self, result):
        es, ds = PAIRS[0]
        safe = result.safe_threshold(es, ds, 0.0, False)
        assert safe is None or safe in THRESHOLDS

    def test_safe_threshold_relaxes_with_the_cap(self, result):
        """An infinite false-positive budget accepts the lowest
        threshold; an impossible one accepts none."""
        es, ds = PAIRS[0]
        assert result.safe_threshold(es, ds, 0.0, False,
                                     max_fp_rate=1.0) == THRESHOLDS[0]
        assert result.safe_threshold(es, ds, 0.0, False,
                                     max_fp_rate=-1.0) is None


class TestDeterminism:
    def test_parallel_equals_serial(self, config):
        kwargs = dict(thresholds=(2.0,), mtbfs=(3600.0,),
                      partitioned=(False,), pairs=PAIRS, seeds=(0,))
        serial = recovery_sweep(config, jobs=1, **kwargs)
        parallel = recovery_sweep(config, jobs=2, **kwargs)
        assert _dump(parallel) == _dump(serial)

    def test_cache_replay_identical(self, config, tmp_path):
        kwargs = dict(thresholds=(2.0,), mtbfs=(3600.0,),
                      partitioned=(False,), pairs=PAIRS, seeds=(0,))
        first = recovery_sweep(config, cache_dir=tmp_path, **kwargs)
        replay = recovery_sweep(config, cache_dir=tmp_path, **kwargs)
        assert _dump(replay) == _dump(first)


class TestValidation:
    def test_no_thresholds_rejected(self, config):
        with pytest.raises(ValueError):
            recovery_sweep(config, thresholds=())

    def test_no_mtbfs_rejected(self, config):
        with pytest.raises(ValueError):
            recovery_sweep(config, mtbfs=())

    def test_no_partition_settings_rejected(self, config):
        with pytest.raises(ValueError):
            recovery_sweep(config, partitioned=())

    def test_no_pairs_rejected(self, config):
        with pytest.raises(ValueError):
            recovery_sweep(config, pairs=())

    def test_defaults_span_the_tradeoff(self):
        assert min(DEFAULT_THRESHOLDS) < max(DEFAULT_THRESHOLDS)
        assert 0.0 in DEFAULT_MTBFS and max(DEFAULT_MTBFS) > 0

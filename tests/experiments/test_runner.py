"""Unit tests for the experiment runner (scaled-down configs)."""

import pytest

from repro import SimulationConfig, run_matrix, run_replicated, run_single
from repro.experiments.runner import build_grid, make_workload


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig.paper().scaled(0.05).with_(
        ds_check_interval_s=100.0)


class TestRunSingle:
    def test_completes_all_jobs(self, small_config):
        m = run_single(small_config, "JobLocal", "DataDoNothing")
        assert m.n_jobs == small_config.n_jobs
        assert m.avg_response_time_s > 0
        assert m.makespan_s > 0

    def test_deterministic_for_seed(self, small_config):
        m1 = run_single(small_config, "JobRandom", "DataRandom", seed=3)
        m2 = run_single(small_config, "JobRandom", "DataRandom", seed=3)
        assert m1.avg_response_time_s == m2.avg_response_time_s
        assert m1.avg_data_transferred_mb == m2.avg_data_transferred_mb
        assert m1.idle_fraction == m2.idle_fraction
        assert m1.makespan_s == m2.makespan_s

    def test_seeds_differ(self, small_config):
        m1 = run_single(small_config, "JobRandom", "DataRandom", seed=0)
        m2 = run_single(small_config, "JobRandom", "DataRandom", seed=1)
        assert m1.avg_response_time_s != m2.avg_response_time_s

    def test_explicit_workload_reused_fresh(self, small_config):
        workload = make_workload(small_config, seed=0)
        m1 = run_single(small_config, "JobLocal", "DataDoNothing",
                        workload=workload, seed=0)
        m2 = run_single(small_config, "JobLocal", "DataDoNothing",
                        workload=workload, seed=0)
        assert m1.avg_response_time_s == m2.avg_response_time_s

    def test_unknown_scheduler_names_rejected(self, small_config):
        with pytest.raises(ValueError):
            run_single(small_config, "JobMagic", "DataDoNothing")
        with pytest.raises(ValueError):
            run_single(small_config, "JobLocal", "DataMagic")

    def test_adaptive_extension_runs(self, small_config):
        m = run_single(small_config, "JobAdaptive", "DataRandom")
        assert m.n_jobs == small_config.n_jobs

    def test_maxmin_allocator_runs(self, small_config):
        m = run_single(small_config.with_(allocator="max-min"),
                       "JobLocal", "DataDoNothing")
        assert m.n_jobs == small_config.n_jobs

    def test_alternative_topologies_run(self, small_config):
        # A ring needs >= 3 sites; the 0.05-scaled config has only 2.
        config = small_config.with_(n_sites=4)
        for topo in ("star", "ring", "random"):
            m = run_single(config.with_(topology=topo),
                           "JobDataPresent", "DataRandom")
            assert m.n_jobs == config.n_jobs

    def test_unknown_topology_rejected(self, small_config):
        with pytest.raises(ValueError):
            run_single(small_config.with_(topology="torus"),
                       "JobLocal", "DataDoNothing")

    def test_sjf_local_scheduler_runs(self, small_config):
        m = run_single(small_config.with_(local_scheduler="SJF"),
                       "JobLeastLoaded", "DataRandom")
        assert m.n_jobs == small_config.n_jobs

    def test_multi_input_jobs_run(self, small_config):
        m = run_single(small_config.with_(inputs_per_job=2),
                       "JobDataPresent", "DataRandom")
        assert m.n_jobs == small_config.n_jobs


class TestBuildGrid:
    def test_processor_counts_in_range(self, small_config):
        workload = make_workload(small_config, seed=0)
        _, grid = build_grid(small_config, "JobLocal", "DataDoNothing",
                             workload, seed=0)
        for site in grid.sites.values():
            assert 2 <= site.compute.n_processors <= 5

    def test_processor_counts_same_across_algorithms(self, small_config):
        workload = make_workload(small_config, seed=0)
        _, g1 = build_grid(small_config, "JobLocal", "DataDoNothing",
                           workload.fresh(), seed=0)
        _, g2 = build_grid(small_config, "JobRandom", "DataRandom",
                           workload.fresh(), seed=0)
        assert {n: s.compute.n_processors for n, s in g1.sites.items()} == \
            {n: s.compute.n_processors for n, s in g2.sites.items()}

    def test_every_dataset_has_one_initial_replica(self, small_config):
        workload = make_workload(small_config, seed=0)
        _, grid = build_grid(small_config, "JobLocal", "DataDoNothing",
                             workload, seed=0)
        for name in workload.datasets.names:
            assert grid.catalog.replica_count(name) == 1


class TestReplication:
    def test_run_replicated_returns_per_seed(self, small_config):
        runs = run_replicated(small_config, "JobLocal", "DataDoNothing",
                              seeds=(0, 1))
        assert len(runs) == 2


class TestMatrix:
    def test_matrix_covers_all_pairs(self, small_config):
        result = run_matrix(small_config,
                            es_names=["JobLocal", "JobDataPresent"],
                            ds_names=["DataDoNothing", "DataRandom"],
                            seeds=(0,))
        assert set(result.runs) == {
            ("JobLocal", "DataDoNothing"),
            ("JobLocal", "DataRandom"),
            ("JobDataPresent", "DataDoNothing"),
            ("JobDataPresent", "DataRandom"),
        }

    def test_metric_matrix_means(self, small_config):
        result = run_matrix(small_config, es_names=["JobLocal"],
                            ds_names=["DataDoNothing"], seeds=(0, 1))
        values = result.metric_matrix("avg_response_time_s")
        runs = result.runs[("JobLocal", "DataDoNothing")]
        expected = sum(r.avg_response_time_s for r in runs) / 2
        assert values[("JobLocal", "DataDoNothing")] == pytest.approx(
            expected)

    def test_summary_access(self, small_config):
        result = run_matrix(small_config, es_names=["JobLocal"],
                            ds_names=["DataDoNothing"], seeds=(0, 1))
        summary = result.summary("JobLocal", "DataDoNothing")
        assert summary["avg_response_time_s"].n == 2

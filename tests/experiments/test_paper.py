"""Unit tests for the per-figure reproduction entry points (scaled)."""

import pytest

from repro import SimulationConfig
from repro.experiments.paper import (
    PAPER_CLAIMS,
    reproduce_figure2,
    reproduce_figure3_and_4,
    reproduce_figure5,
    table1_parameters,
)
from repro.scheduling.registry import ALL_DS, ALL_ES


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig.paper().scaled(0.05).with_(
        ds_check_interval_s=100.0)


class TestTable1:
    def test_default_is_paper_config(self):
        rows = table1_parameters()
        assert rows["Size of Workload"] == "6000 jobs"

    def test_custom_config(self, small_config):
        rows = table1_parameters(small_config)
        assert rows["Size of Workload"] == f"{small_config.n_jobs} jobs"


class TestFigure2:
    def test_returns_ranked_counts(self, small_config):
        ranked = reproduce_figure2(small_config, top_n=10)
        assert len(ranked) == 10
        counts = [c for _, c in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_counts_sum_bounded_by_jobs(self, small_config):
        ranked = reproduce_figure2(small_config,
                                   top_n=small_config.n_datasets)
        assert sum(c for _, c in ranked) == small_config.n_jobs

    def test_geometric_head_dominates(self, small_config):
        # Use a sharper skew so dominance is unambiguous even with the
        # tiny 10-dataset scaled config.
        config = small_config.with_(geometric_p=0.3)
        ranked = reproduce_figure2(config, top_n=config.n_datasets)
        head = sum(c for _, c in ranked[:5])
        tail = sum(c for _, c in ranked[-5:])
        assert head > 3 * max(tail, 1)


class TestFigures3And4:
    @pytest.fixture(scope="class")
    def result(self, small_config):
        return reproduce_figure3_and_4(small_config, seeds=(0,))

    def test_all_twelve_combinations(self, result):
        assert set(result.matrix.runs) == {
            (es, ds) for es in ALL_ES for ds in ALL_DS}

    def test_figure3a_values_positive(self, result):
        for value in result.figure3a().values():
            assert value > 0

    def test_figure3b_datapresent_no_replication_zero(self, result):
        fig3b = result.figure3b()
        assert fig3b[("JobDataPresent", "DataDoNothing")] == 0.0

    def test_figure4_percent_range(self, result):
        for value in result.figure4().values():
            assert 0.0 <= value <= 100.0


class TestFigure5:
    def test_two_scenarios_four_algorithms(self, small_config):
        out = reproduce_figure5(small_config, seeds=(0,))
        assert set(out) == {"10MB/sec", "100MB/sec"}
        for scenario in out.values():
            assert set(scenario) == set(ALL_ES)

    def test_more_bandwidth_never_hurts_transfer_heavy(self, small_config):
        out = reproduce_figure5(small_config, seeds=(0,))
        for es in ("JobRandom", "JobLeastLoaded", "JobLocal"):
            assert out["100MB/sec"][es] <= out["10MB/sec"][es] * 1.05


class TestClaims:
    def test_six_documented_claims(self):
        assert len(PAPER_CLAIMS) == 6
        assert all(claim.startswith("C") for claim in PAPER_CLAIMS)

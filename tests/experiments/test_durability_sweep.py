"""Unit tests for the durability-sweep experiment.

Covers the sweep grid's shape, the survival trade-off it exists to
expose (RF=1 loses data under bit-rot; RF=2 with repair does not), the
surviving-RF picker, and the determinism contract: serial vs parallel
and cache replay are bitwise-identical.
"""

import dataclasses

import pytest

from repro import SimulationConfig
from repro.experiments.sensitivity import (
    DEFAULT_CORRUPTION_MTBFS,
    DEFAULT_RFS,
    DEFAULT_SCRUBS,
    durability_sweep,
)

PAIRS = (("JobDataPresent", "DataRandom"),)
MTBFS = (0.0, 4_000.0)
RFS = (1, 2)
SCRUBS = (600.0,)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig.paper().scaled(0.05)


@pytest.fixture(scope="module")
def result(config):
    return durability_sweep(config, mtbfs=MTBFS, rfs=RFS, scrubs=SCRUBS,
                            pairs=PAIRS, seeds=(0,))


def _dump(result):
    return {
        key: [dataclasses.asdict(m) for m in runs]
        for key, runs in result.runs.items()
    }


class TestShape:
    def test_every_cell_populated(self, result):
        assert set(result.runs) == {
            (es, ds, mtbf, rf, scrub)
            for es, ds in PAIRS for mtbf in MTBFS
            for rf in RFS for scrub in SCRUBS}
        assert all(len(runs) == 1 for runs in result.runs.values())

    def test_series_in_mtbf_order(self, result):
        es, ds = PAIRS[0]
        series = result.series(es, ds, RFS[1], SCRUBS[0],
                               "datasets_lost")
        assert len(series) == len(MTBFS)
        assert all(v >= 0 for v in series)

    def test_table_lists_every_cell(self, result):
        table = result.table()
        for word in ("mtbf", "rf", "scrub", "lost", "repaired"):
            assert word in table
        for mtbf in MTBFS:
            assert f"{mtbf:g}" in table

    def test_defaults_are_sane(self):
        assert 0.0 in DEFAULT_CORRUPTION_MTBFS
        assert 1 in DEFAULT_RFS
        assert 0.0 in DEFAULT_SCRUBS


class TestSurvivalTradeoff:
    def test_no_corruption_loses_nothing(self, result):
        es, ds = PAIRS[0]
        for rf in RFS:
            (metrics,) = result.runs[(es, ds, 0.0, rf, SCRUBS[0])]
            assert metrics.datasets_lost == 0, rf

    def test_rf1_loses_data_under_bit_rot(self, result):
        es, ds = PAIRS[0]
        (metrics,) = result.runs[(es, ds, MTBFS[1], 1, SCRUBS[0])]
        assert metrics.replicas_corrupted > 0
        assert metrics.datasets_lost > 0
        assert metrics.replicas_repaired == 0

    def test_rf2_with_repair_survives(self, result):
        es, ds = PAIRS[0]
        (metrics,) = result.runs[(es, ds, MTBFS[1], 2, SCRUBS[0])]
        assert metrics.replicas_repaired > 0
        assert metrics.datasets_lost == 0

    def test_surviving_rf_picker(self, result):
        es, ds = PAIRS[0]
        assert result.surviving_rf(es, ds, 0.0, SCRUBS[0]) == 1
        assert result.surviving_rf(es, ds, MTBFS[1], SCRUBS[0]) == 2


class TestDeterminism:
    def test_parallel_equals_serial(self, config):
        serial = durability_sweep(config, mtbfs=MTBFS, rfs=RFS,
                                  scrubs=SCRUBS, pairs=PAIRS, seeds=(0,),
                                  jobs=1)
        pooled = durability_sweep(config, mtbfs=MTBFS, rfs=RFS,
                                  scrubs=SCRUBS, pairs=PAIRS, seeds=(0,),
                                  jobs=2)
        assert _dump(pooled) == _dump(serial)

    def test_cache_replay_identical(self, config, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = durability_sweep(config, mtbfs=MTBFS, rfs=RFS,
                                scrubs=SCRUBS, pairs=PAIRS, seeds=(0,),
                                cache_dir=cache_dir)
        warm = durability_sweep(config, mtbfs=MTBFS, rfs=RFS,
                                scrubs=SCRUBS, pairs=PAIRS, seeds=(0,),
                                cache_dir=cache_dir)
        assert _dump(warm) == _dump(cold)


class TestValidation:
    def test_empty_axes_rejected(self, config):
        with pytest.raises(ValueError):
            durability_sweep(config, mtbfs=(), rfs=RFS, scrubs=SCRUBS)
        with pytest.raises(ValueError):
            durability_sweep(config, mtbfs=MTBFS, rfs=(), scrubs=SCRUBS)
        with pytest.raises(ValueError):
            durability_sweep(config, mtbfs=MTBFS, rfs=RFS, scrubs=())

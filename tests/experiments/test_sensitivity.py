"""Unit tests for the staleness-sensitivity experiment."""

import dataclasses

import pytest

from repro import SimulationConfig
from repro.experiments.sensitivity import (
    DEFAULT_PAIRS,
    SensitivityResult,
    staleness_sensitivity,
)

PAIRS = (("JobDataPresent", "DataLeastLoaded"),)
DELAYS = (0.0, 600.0)


@pytest.fixture(scope="module")
def config():
    # Tight storage forces evictions, so delayed deregistrations create
    # phantom replicas and misdirections actually occur.
    return SimulationConfig.paper().scaled(0.1).with_(
        storage_capacity_mb=14_000.0, watchdog=True)


@pytest.fixture(scope="module")
def result(config):
    return staleness_sensitivity(
        config, delays=DELAYS, pairs=PAIRS, seeds=(0,))


def _dump(result):
    return {
        key: [dataclasses.asdict(m) for m in runs]
        for key, runs in result.runs.items()
    }


class TestShape:
    def test_every_cell_populated(self, result):
        assert set(result.runs) == {
            (es, ds, delay) for es, ds in PAIRS for delay in DELAYS}
        assert all(len(runs) == 1 for runs in result.runs.values())

    def test_series_in_delay_order(self, result):
        es, ds = PAIRS[0]
        series = result.series(es, ds, "avg_response_time_s")
        assert len(series) == len(DELAYS)
        assert all(v > 0 for v in series)

    def test_table_lists_every_cell(self, result):
        table = result.table()
        assert "misdirected" in table
        for delay in DELAYS:
            assert f"{delay:g}" in table

    def test_degradation_is_a_ratio(self, result):
        es, ds = PAIRS[0]
        assert result.degradation(es, ds) >= 1.0


class TestStalenessEffects:
    def test_zero_delay_reports_no_staleness(self, result):
        es, ds = PAIRS[0]
        run = result.runs[(es, ds, 0.0)][0]
        assert run.misdirected_jobs == 0
        assert run.bounced_jobs == 0
        assert run.stale_reads == 0

    def test_delay_produces_misdirections(self, result):
        """The acceptance scenario: under delay, jobs chase phantoms."""
        es, ds = PAIRS[0]
        run = result.runs[(es, ds, 600.0)][0]
        assert run.stale_reads > 0
        assert run.misdirected_jobs > 0
        assert run.bounced_jobs > 0


class TestDeterminism:
    def test_parallel_equals_serial(self, config):
        serial = staleness_sensitivity(
            config, delays=DELAYS, pairs=PAIRS, seeds=(0,), jobs=1)
        parallel = staleness_sensitivity(
            config, delays=DELAYS, pairs=PAIRS, seeds=(0,), jobs=2)
        assert _dump(parallel) == _dump(serial)

    def test_cache_replay_identical(self, config, tmp_path):
        first = staleness_sensitivity(
            config, delays=DELAYS, pairs=PAIRS, seeds=(0,),
            cache_dir=tmp_path)
        replay = staleness_sensitivity(
            config, delays=DELAYS, pairs=PAIRS, seeds=(0,),
            cache_dir=tmp_path)
        assert _dump(replay) == _dump(first)


class TestValidation:
    def test_no_delays_rejected(self, config):
        with pytest.raises(ValueError):
            staleness_sensitivity(config, delays=())

    def test_no_pairs_rejected(self, config):
        with pytest.raises(ValueError):
            staleness_sensitivity(config, pairs=())

    def test_default_pairs_cover_decoupled_and_coupled(self):
        schedulers = {es for es, _ in DEFAULT_PAIRS}
        assert "JobDataPresent" in schedulers
        assert len(DEFAULT_PAIRS) >= 2

"""Unit tests for the parallel experiment engine.

The load-bearing property is the determinism contract: fanning runs out
over worker processes (or replaying them from the on-disk cache) yields
*bitwise-identical* results to the serial path — exact float equality,
not approximate agreement.
"""

import dataclasses
import json
import multiprocessing
import pickle

import pytest

from repro import SimulationConfig, run_matrix
from repro.experiments.parallel import (
    CACHE_VERSION,
    ParallelRunner,
    ResultCache,
    RunSpec,
    execute_spec,
    resolve_jobs,
)
from repro.experiments.sweep import sweep

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig.paper().scaled(0.05)


def _matrix_dump(result):
    """Every metric of every run, as exactly comparable dicts."""
    return {
        key: [dataclasses.asdict(m) for m in runs]
        for key, runs in result.runs.items()
    }


class TestDeterminism:
    def test_run_matrix_parallel_equals_serial(self, config):
        serial = run_matrix(config, seeds=SEEDS, jobs=1)
        parallel = run_matrix(config, seeds=SEEDS, jobs=4)
        assert _matrix_dump(parallel) == _matrix_dump(serial)

    def test_sweep_parallel_equals_serial(self, config):
        kwargs = dict(parameter="bandwidth_mbps", values=[10.0, 100.0],
                      es_name="JobLocal", ds_name="DataDoNothing",
                      seeds=SEEDS)
        serial = sweep(config, jobs=1, **kwargs)
        parallel = sweep(config, jobs=4, **kwargs)
        assert {
            v: [dataclasses.asdict(m) for m in parallel.runs[v]]
            for v in parallel.values
        } == {
            v: [dataclasses.asdict(m) for m in serial.runs[v]]
            for v in serial.values
        }

    def test_spawn_context_supported(self, config):
        """The worker path survives spawn (fresh interpreter, Windows)."""
        specs = [RunSpec(config, "JobRandom", "DataDoNothing", 0),
                 RunSpec(config, "JobLocal", "DataDoNothing", 0)]
        runner = ParallelRunner(
            jobs=2, mp_context=multiprocessing.get_context("spawn"))
        assert [dataclasses.asdict(m) for m in runner.map(specs)] == \
            [dataclasses.asdict(execute_spec(s)) for s in specs]


class TestRunSpec:
    def test_picklable(self, config):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 7)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_cache_key_stable_and_distinct(self, config):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 0)
        assert spec.cache_key() == spec.cache_key()
        # Any field change produces a different key.
        assert spec.cache_key() != \
            RunSpec(config, "JobLocal", "DataDoNothing", 1).cache_key()
        assert spec.cache_key() != \
            RunSpec(config, "JobRandom", "DataDoNothing", 0).cache_key()
        assert spec.cache_key() != RunSpec(
            config.with_(bandwidth_mbps=99.0),
            "JobLocal", "DataDoNothing", 0).cache_key()


class TestResultCache:
    def test_round_trip(self, config, tmp_path):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 0)
        metrics = execute_spec(spec)
        cache = ResultCache(tmp_path)
        assert cache.get(spec) is None  # cold miss
        cache.put(spec, metrics)
        restored = cache.get(spec)
        assert dataclasses.asdict(restored) == dataclasses.asdict(metrics)
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, config, tmp_path):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 0)
        cache = ResultCache(tmp_path)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(spec) is None

    def test_stale_version_is_a_miss(self, config, tmp_path):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 0)
        cache = ResultCache(tmp_path)
        cache.put(spec, execute_spec(spec))
        path = cache.path_for(spec)
        data = json.loads(path.read_text())
        data["cache_version"] = CACHE_VERSION - 1
        path.write_text(json.dumps(data))
        assert cache.get(spec) is None

    def test_cached_matrix_identical_on_second_invocation(
            self, config, tmp_path):
        first = run_matrix(config, seeds=(0, 1), cache_dir=tmp_path)
        # Every run is now on disk; the second invocation replays the
        # cache (exercised by JSON round-tripping every float) and must
        # reproduce the results exactly.
        second = run_matrix(config, seeds=(0, 1), cache_dir=tmp_path)
        assert _matrix_dump(second) == _matrix_dump(first)
        assert any(tmp_path.rglob("*.json"))


class TestParallelRunner:
    def test_duplicate_specs_computed_once(self, config, tmp_path):
        spec = RunSpec(config, "JobLocal", "DataDoNothing", 0)
        runner = ParallelRunner(jobs=1, cache_dir=tmp_path)
        results = runner.map([spec, spec, spec])
        assert len(results) == 3
        assert [dataclasses.asdict(m) for m in results] == \
            [dataclasses.asdict(results[0])] * 3
        # One compute, one cache entry.
        assert len(list(tmp_path.rglob("*.json"))) == 1

    def test_empty_spec_list(self):
        assert ParallelRunner(jobs=4).map([]) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(8) == 8
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

"""Unit tests for result persistence."""

import pytest

from repro import SimulationConfig, run_matrix
from repro.experiments.persistence import (
    load_matrix,
    matrix_from_dict,
    matrix_to_dict,
    run_metrics_from_dict,
    run_metrics_to_dict,
    save_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    config = SimulationConfig.paper().scaled(0.05)
    return run_matrix(config, es_names=["JobLocal", "JobDataPresent"],
                      ds_names=["DataDoNothing"], seeds=(0, 1))


class TestRunMetricsRoundTrip:
    def test_round_trip_identical(self, matrix):
        original = matrix.runs[("JobLocal", "DataDoNothing")][0]
        restored = run_metrics_from_dict(run_metrics_to_dict(original))
        assert restored == original

    def test_unknown_field_rejected(self, matrix):
        data = run_metrics_to_dict(
            matrix.runs[("JobLocal", "DataDoNothing")][0])
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            run_metrics_from_dict(data)


class TestMatrixRoundTrip:
    def test_dict_round_trip(self, matrix):
        restored = matrix_from_dict(matrix_to_dict(matrix))
        assert restored.seeds == matrix.seeds
        assert restored.config == matrix.config
        assert set(restored.runs) == set(matrix.runs)
        for key in matrix.runs:
            assert restored.runs[key] == matrix.runs[key]

    def test_file_round_trip(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_matrix(matrix, path)
        restored = load_matrix(path)
        assert restored.metric_matrix("avg_response_time_s") == \
            matrix.metric_matrix("avg_response_time_s")

    def test_restored_summaries_work(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_matrix(matrix, path)
        restored = load_matrix(path)
        summary = restored.summary("JobLocal", "DataDoNothing")
        assert summary["avg_response_time_s"].n == 2

    def test_bad_version_rejected(self, matrix):
        data = matrix_to_dict(matrix)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            matrix_from_dict(data)

    def test_malformed_key_rejected(self, matrix):
        data = matrix_to_dict(matrix)
        runs = data["runs"].pop(next(iter(data["runs"])))
        data["runs"]["no-separator"] = runs
        with pytest.raises(ValueError, match="malformed"):
            matrix_from_dict(data)

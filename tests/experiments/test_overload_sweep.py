"""Unit tests for the overload-sweep experiment.

Covers the degradation table's shape and knee detection, the graceful-
degradation acceptance scenario (response and refusals grow with offered
load, nothing is silently lost), and the determinism contract: the sweep
is bitwise-identical serial vs parallel and across cache replay.
"""

import dataclasses

import pytest

from repro import SimulationConfig
from repro.experiments.sensitivity import (
    DEFAULT_CAPACITIES,
    DEFAULT_RATES,
    OverloadSweepResult,
    overload_sweep,
)

PAIRS = (("JobDataPresent", "DataRandom"),)
# ~0.023 jobs/s is this configuration's service rate: 0.005 is
# comfortably sub-critical, 0.3 is an order of magnitude past it.
RATES = (0.005, 0.3)
CAPACITIES = (4,)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig.paper().scaled(0.05).with_(
        watchdog=True,
        deflect_budget=2,
        job_deadline_s=4_000.0,
        storage_reservations=True,
    )


@pytest.fixture(scope="module")
def result(config):
    return overload_sweep(config, rates=RATES, capacities=CAPACITIES,
                          pairs=PAIRS, seeds=(0,))


def _dump(result):
    return {
        key: [dataclasses.asdict(m) for m in runs]
        for key, runs in result.runs.items()
    }


class TestShape:
    def test_every_cell_populated(self, result):
        assert set(result.runs) == {
            (es, ds, rate, cap)
            for es, ds in PAIRS for rate in RATES for cap in CAPACITIES}
        assert all(len(runs) == 1 for runs in result.runs.values())

    def test_series_in_rate_order(self, result):
        es, ds = PAIRS[0]
        series = result.series(es, ds, CAPACITIES[0],
                               "avg_response_time_s")
        assert len(series) == len(RATES)
        assert all(v > 0 for v in series)

    def test_table_lists_every_cell_and_the_knee(self, result):
        table = result.table()
        assert "shed" in table and "deflected" in table
        assert "knee" in table
        for rate in RATES:
            assert f"{rate:g}" in table


class TestGracefulDegradation:
    def test_subcritical_rate_refuses_nothing(self, result):
        es, ds = PAIRS[0]
        run = result.runs[(es, ds, RATES[0], CAPACITIES[0])][0]
        assert run.jobs_shed == 0
        assert run.jobs_expired == 0
        assert run.completion_rate == 1.0

    def test_saturating_rate_degrades_but_conserves(self, result):
        """The acceptance scenario: past the knee the grid sheds and
        expires instead of collapsing, and every refusal is counted."""
        es, ds = PAIRS[0]
        run = result.runs[(es, ds, RATES[-1], CAPACITIES[0])][0]
        assert run.jobs_shed + run.jobs_expired > 0
        assert (run.n_jobs + run.jobs_failed + run.jobs_shed
                + run.jobs_expired) == 300
        assert run.n_jobs > 0  # still doing useful work while refusing
        assert run.peak_queue_depth <= CAPACITIES[0]

    def test_response_time_rises_with_offered_load(self, result):
        es, ds = PAIRS[0]
        series = result.series(es, ds, CAPACITIES[0],
                               "avg_response_time_s")
        assert series[-1] >= series[0]

    def test_knee_is_found_at_the_saturating_rate(self, result):
        # With queues capped at 4 the response of *admitted* jobs stays
        # bounded even at 10x the service rate (346 -> 675 s here) —
        # that bounding is the mechanism under test, so the knee is
        # probed at 1.5x rather than the default 2x.
        es, ds = PAIRS[0]
        knee = result.knee(es, ds, CAPACITIES[0], factor=1.5)
        assert knee == RATES[-1]

    def test_knee_none_when_factor_unreachable(self, result):
        es, ds = PAIRS[0]
        assert result.knee(es, ds, CAPACITIES[0], factor=1e9) is None


class TestDeterminism:
    def test_parallel_equals_serial(self, config):
        serial = overload_sweep(config, rates=RATES,
                                capacities=CAPACITIES, pairs=PAIRS,
                                seeds=(0,), jobs=1)
        parallel = overload_sweep(config, rates=RATES,
                                  capacities=CAPACITIES, pairs=PAIRS,
                                  seeds=(0,), jobs=2)
        assert _dump(parallel) == _dump(serial)

    def test_cache_replay_identical(self, config, tmp_path):
        first = overload_sweep(config, rates=RATES,
                               capacities=CAPACITIES, pairs=PAIRS,
                               seeds=(0,), cache_dir=tmp_path)
        replay = overload_sweep(config, rates=RATES,
                                capacities=CAPACITIES, pairs=PAIRS,
                                seeds=(0,), cache_dir=tmp_path)
        assert _dump(replay) == _dump(first)


class TestValidation:
    def test_no_rates_rejected(self, config):
        with pytest.raises(ValueError):
            overload_sweep(config, rates=())

    def test_no_capacities_rejected(self, config):
        with pytest.raises(ValueError):
            overload_sweep(config, capacities=())

    def test_no_pairs_rejected(self, config):
        with pytest.raises(ValueError):
            overload_sweep(config, pairs=())

    def test_defaults_span_sub_and_super_critical(self):
        assert min(DEFAULT_RATES) < max(DEFAULT_RATES)
        assert len(DEFAULT_CAPACITIES) >= 2

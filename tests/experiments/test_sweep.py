"""Unit tests for the generic parameter-sweep utility."""

import pytest

from repro import SimulationConfig
from repro.experiments.sweep import sweep


@pytest.fixture(scope="module")
def bandwidth_sweep():
    config = SimulationConfig.paper().scaled(0.05)
    return sweep(config, "bandwidth_mbps", (5.0, 10.0, 100.0),
                 es_name="JobLocal", ds_name="DataDoNothing",
                 seeds=(0, 1))


class TestSweep:
    def test_validation(self):
        config = SimulationConfig.paper().scaled(0.05)
        with pytest.raises(ValueError, match="no sweep values"):
            sweep(config, "bandwidth_mbps", ())
        with pytest.raises(ValueError, match="not a SimulationConfig"):
            sweep(config, "warp_factor", (1,))

    def test_covers_every_value_and_seed(self, bandwidth_sweep):
        assert bandwidth_sweep.values == (5.0, 10.0, 100.0)
        for value in bandwidth_sweep.values:
            assert len(bandwidth_sweep.runs[value]) == 2

    def test_series_ordering(self, bandwidth_sweep):
        series = bandwidth_sweep.series("avg_response_time_s")
        assert len(series) == 3
        # More bandwidth never slows a transfer-bound configuration.
        assert series[0] >= series[1] >= series[2]

    def test_best_value(self, bandwidth_sweep):
        assert bandwidth_sweep.best_value("avg_response_time_s") == 100.0
        assert bandwidth_sweep.best_value(
            "avg_response_time_s", minimize=False) == 5.0

    def test_summary_per_value(self, bandwidth_sweep):
        summary = bandwidth_sweep.summary(10.0, "avg_response_time_s")
        assert summary.n == 2
        assert summary.mean > 0

    def test_table_renders(self, bandwidth_sweep):
        out = bandwidth_sweep.table()
        assert "bandwidth_mbps" in out
        assert "JobLocal + DataDoNothing" in out
        assert len(out.splitlines()) == 5  # title + header + 3 rows

    def test_environmental_sweep_shares_workload(self):
        """Same seed + environmental parameter → identical workloads,
        so compute components match exactly across values."""
        config = SimulationConfig.paper().scaled(0.05)
        result = sweep(config, "bandwidth_mbps", (10.0, 100.0),
                       es_name="JobLocal", ds_name="DataDoNothing",
                       seeds=(0,))
        a = result.runs[10.0][0]
        b = result.runs[100.0][0]
        assert a.avg_compute_time_s == pytest.approx(b.avg_compute_time_s)

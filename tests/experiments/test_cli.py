"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main

SMALL = ["--scale", "0.05"]


class TestTable1:
    def test_prints_parameters(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "120" in out
        assert "6000 jobs" in out

    def test_scale_override(self, capsys):
        assert main(["table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "600 jobs" in out


class TestRun:
    def test_default_combination(self, capsys):
        assert main(["run", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "JobDataPresent + DataRandom" in out
        assert "avg response time" in out

    def test_explicit_combination(self, capsys):
        assert main(["run", "--es", "JobLocal", "--ds", "DataDoNothing",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "JobLocal + DataDoNothing" in out

    def test_invalid_scheduler_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--es", "JobMagic", *SMALL])

    def test_config_overrides_applied(self, capsys):
        assert main(["run", *SMALL, "--n-jobs", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "jobs completed:            50" in out

    def test_bad_config_returns_error_code(self, capsys):
        # storage below the largest dataset is a config error
        code = main(["run", *SMALL, "--storage-gb", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMatrix:
    def test_prints_three_figures(self, capsys):
        assert main(["matrix", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "Figure 3b" in out
        assert "Figure 4" in out
        assert "JobDataPresent" in out


class TestParallelFlags:
    def test_matrix_with_workers(self, capsys):
        assert main(["matrix", *SMALL, "-j", "2"]) == 0
        assert "Figure 3a" in capsys.readouterr().out

    def test_cache_flag_creates_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["matrix", *SMALL, "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert any(cache.rglob("*.json"))
        # Second invocation is served from the cache, identically.
        assert main(["matrix", *SMALL, "--cache-dir", str(cache)]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_with_workers(self, capsys):
        assert main(["sweep", "bandwidth_mbps", "10", "100",
                     *SMALL, "-j", "2"]) == 0
        assert "sweep of bandwidth_mbps" in capsys.readouterr().out


class TestFigure:
    def test_figure2(self, capsys):
        assert main(["figure", "2", *SMALL, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 5

    @pytest.mark.parametrize("which", ["3a", "3b", "4"])
    def test_figure_matrix_views(self, which, capsys):
        assert main(["figure", which, *SMALL]) == 0
        assert "JobLocal" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "10MB/sec" in out and "100MB/sec" in out


class TestSweepCommand:
    def test_sweeps_and_reports_best(self, capsys):
        assert main(["sweep", "bandwidth_mbps", "10", "100",
                     "--es", "JobLocal", "--ds", "DataDoNothing",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "sweep of bandwidth_mbps" in out
        assert "best bandwidth_mbps" in out

    def test_string_values_parse(self, capsys):
        assert main(["sweep", "topology", "hierarchical", "star",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "star" in out

    def test_unknown_parameter_errors(self, capsys):
        assert main(["sweep", "warp_factor", "1", *SMALL]) == 2
        assert "error:" in capsys.readouterr().err

    def test_best_client_policy_accepted(self, capsys):
        assert main(["run", "--ds", "DataBestClient", *SMALL]) == 0
        assert "DataBestClient" in capsys.readouterr().out


class TestWorkload:
    def test_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["workload", "--out", str(out_file), *SMALL]) == 0
        data = json.loads(out_file.read_text())
        assert data["version"] == 1
        assert "wrote" in capsys.readouterr().out

    def test_trace_round_trips(self, tmp_path):
        from repro.workload.traces import load_workload
        out_file = tmp_path / "trace.json"
        main(["workload", "--out", str(out_file), *SMALL, "--seed", "9"])
        workload = load_workload(out_file)
        assert workload.n_jobs == 300


class TestStalenessKnobs:
    def test_catalog_delay_flows_into_config(self, capsys):
        assert main(["run", *SMALL, "--catalog-delay", "600",
                     "--storage-gb", "8"]) == 0
        out = capsys.readouterr().out
        assert "stale replica reads" in out

    def test_zero_delay_prints_no_staleness_block(self, capsys):
        assert main(["run", *SMALL, "--catalog-delay", "0"]) == 0
        assert "stale information" not in capsys.readouterr().out

    def test_negative_delay_is_config_error(self, capsys):
        assert main(["run", *SMALL, "--catalog-delay", "-5"]) == 2
        assert "catalog delay" in capsys.readouterr().err

    def test_info_timeout_accepted(self, capsys):
        assert main(["run", *SMALL, "--info-timeout", "30"]) == 0

    def test_watchdog_on_accepted(self, capsys):
        assert main(["run", *SMALL, "--watchdog", "on"]) == 0

    def test_watchdog_rejects_other_values(self):
        with pytest.raises(SystemExit):
            main(["run", *SMALL, "--watchdog", "maybe"])


class TestSensitivity:
    def test_sweep_prints_table_and_degradation(self, capsys):
        assert main(["sensitivity", *SMALL, "--delays", "0", "300",
                     "--pairs", "JobDataPresent+DataLeastLoaded"]) == 0
        out = capsys.readouterr().out
        assert "catalog-staleness sensitivity" in out
        assert "misdirected" in out
        assert "degradation for JobDataPresent + DataLeastLoaded" in out

    def test_bad_pair_is_an_error(self, capsys):
        assert main(["sensitivity", *SMALL, "--delays", "0",
                     "--pairs", "JobMagic"]) == 2
        assert "bad pair" in capsys.readouterr().err

    def test_parallel_workers_accepted(self, capsys):
        assert main(["sensitivity", *SMALL, "--delays", "0", "60",
                     "--pairs", "JobLocal+DataDoNothing",
                     "-j", "2"]) == 0
        assert "sensitivity" in capsys.readouterr().out


class TestOverloadKnobs:
    def test_saturated_run_prints_degradation_block(self, capsys):
        assert main(["run", *SMALL, "--arrival-rate", "0.3",
                     "--queue-capacity", "4", "--deflect-budget", "2",
                     "--job-deadline", "4000",
                     "--storage-reservations", "on",
                     "--watchdog", "on"]) == 0
        out = capsys.readouterr().out
        assert "overload & degradation" in out
        assert "jobs shed" in out

    def test_default_run_prints_no_degradation_block(self, capsys):
        assert main(["run", *SMALL]) == 0
        assert "overload & degradation" not in capsys.readouterr().out

    def test_negative_capacity_is_config_error(self, capsys):
        assert main(["run", *SMALL, "--queue-capacity", "-1"]) == 2
        assert "queue capacity" in capsys.readouterr().err

    def test_degraded_es_accepted(self, capsys):
        assert main(["run", *SMALL, "--queue-capacity", "8",
                     "--degraded-es", "JobRandom"]) == 0

    def test_unknown_degraded_es_is_config_error(self, capsys):
        assert main(["run", *SMALL, "--degraded-es", "JobMagic"]) == 2

    def test_aging_factor_accepted(self, capsys):
        assert main(["run", *SMALL, "--aging-factor", "0.01"]) == 0

    def test_reservations_reject_other_values(self):
        with pytest.raises(SystemExit):
            main(["run", *SMALL, "--storage-reservations", "maybe"])


class TestOverloadSweepCommand:
    def test_sweep_prints_degradation_table(self, capsys):
        assert main(["sensitivity", "overload-sweep", *SMALL,
                     "--rates", "0.005", "0.3", "--capacities", "4",
                     "--pairs", "JobDataPresent+DataRandom"]) == 0
        out = capsys.readouterr().out
        assert "overload sweep" in out
        assert "shed" in out
        assert "knee" in out

    def test_default_mode_is_still_staleness(self, capsys):
        assert main(["sensitivity", *SMALL, "--delays", "0",
                     "--pairs", "JobLocal+DataDoNothing"]) == 0
        assert "catalog-staleness sensitivity" in capsys.readouterr().out

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["sensitivity", "load-shedding-sweep", *SMALL])

    def test_parallel_workers_accepted(self, capsys):
        assert main(["sensitivity", "overload-sweep", *SMALL,
                     "--rates", "0.005", "--capacities", "4",
                     "--pairs", "JobLocal+DataDoNothing", "-j", "2"]) == 0
        assert "overload sweep" in capsys.readouterr().out


TINY_DAG = ["--users", "4", "--sites", "3", "--datasets", "8",
            "--n-jobs", "16"]


class TestDagCommand:
    def test_campaign_defaults_to_diamond(self, capsys):
        assert main(["dag", *TINY_DAG]) == 0
        out = capsys.readouterr().out
        assert "shape=diamond" in out
        assert "Average response time per job" in out
        assert "Jobs completed" in out

    def test_explicit_shape_and_bulk(self, capsys):
        assert main(["dag", *TINY_DAG, "--dag-shape", "mapreduce",
                     "--dag-width", "2", "--bulk", "on"]) == 0
        out = capsys.readouterr().out
        assert "shape=mapreduce width=2 bulk=on" in out

    def test_run_accepts_dag_knobs(self, capsys):
        assert main(["run", *TINY_DAG, "--dag-shape", "chain"]) == 0
        assert "jobs completed:            16" in capsys.readouterr().out

    def test_bulk_without_shape_is_a_config_error(self, capsys):
        assert main(["run", *TINY_DAG, "--bulk", "on"]) == 2
        assert "bulk submission requires" in capsys.readouterr().err

    def test_dag_with_arrivals_is_a_config_error(self, capsys):
        assert main(["run", *TINY_DAG, "--dag-shape", "diamond",
                     "--arrival-rate", "0.5"]) == 2
        assert "incompatible" in capsys.readouterr().err


class TestDurabilityKnobs:
    def test_armed_run_prints_durability_block(self, capsys):
        assert main(["run", *SMALL, "--corruption-mtbf", "2000",
                     "--replication-factor", "2", "--repair", "on",
                     "--scrub-interval", "600", "--watchdog", "on"]) == 0
        out = capsys.readouterr().out
        assert "data durability:" in out
        assert "replicas repaired:" in out
        assert "datasets lost for good:" in out

    def test_default_run_prints_no_durability_block(self, capsys):
        assert main(["run", *SMALL]) == 0
        assert "data durability" not in capsys.readouterr().out

    def test_scripted_events_are_accepted(self, capsys):
        assert main(["run", *SMALL,
                     "--corrupt-replica", "site00:dataset0000@1800",
                     "--lose-replica", "site01:dataset0001@2400"]) == 0

    def test_bad_replica_spec_is_one_line_exit_2(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", *SMALL, "--corrupt-replica", "nonsense"])

    def test_invalid_fault_plan_is_structured_exit_2(self, capsys):
        code = main(["run", *SMALL, "--corruption-mtbf", "-5"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid fault plan [corruption_mtbf_s]")
        assert err.count("\n") == 1  # one line, no traceback

    def test_rf_without_repair_is_config_error(self, capsys):
        code = main(["run", *SMALL, "--replication-factor", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repair" in err

    def test_negative_scrub_interval_is_config_error(self, capsys):
        assert main(["run", *SMALL, "--scrub-interval", "-1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corruption_sites_without_mtbf_is_plan_error(self, capsys):
        code = main(["run", *SMALL, "--corruption-sites", "site00"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid fault plan [corruption_sites]")


class TestDurabilitySweep:
    def test_sweep_prints_table_and_surviving_rf(self, capsys):
        assert main(["sensitivity", "durability-sweep", *SMALL,
                     "--corruption-mtbfs", "0", "3000",
                     "--rfs", "1", "2", "--scrubs", "600",
                     "--pairs", "JobDataPresent+DataRandom"]) == 0
        out = capsys.readouterr().out
        assert "corruption" in out
        assert "lowest surviving RF" in out

    def test_parallel_workers_accepted(self, capsys):
        assert main(["sensitivity", "durability-sweep", *SMALL,
                     "--corruption-mtbfs", "0", "--rfs", "1",
                     "--scrubs", "0",
                     "--pairs", "JobLocal+DataDoNothing", "-j", "2"]) == 0
        assert "lowest surviving RF" in capsys.readouterr().out

"""Unit tests for ASCII reporting."""

import pytest

from repro.metrics.report import format_comparison, format_matrix, format_run

from tests.metrics.test_summary import fake_metrics


class TestFormatMatrix:
    def test_renders_all_cells(self):
        values = {
            ("ES1", "DS1"): 1.5,
            ("ES1", "DS2"): 2.5,
            ("ES2", "DS1"): 3.5,
            ("ES2", "DS2"): 4.5,
        }
        out = format_matrix("Title", values, ["ES1", "ES2"], ["DS1", "DS2"])
        assert "Title" in out
        assert "1.5" in out and "4.5" in out
        assert out.index("ES1") < out.index("ES2")

    def test_missing_cells_dashed(self):
        out = format_matrix("T", {("A", "X"): 1.0}, ["A", "B"], ["X"])
        assert "--" in out

    def test_unit_footer(self):
        out = format_matrix("T", {("A", "X"): 1.0}, ["A"], ["X"],
                            unit="seconds")
        assert "(values in seconds)" in out

    def test_precision(self):
        out = format_matrix("T", {("A", "X"): 1.23456}, ["A"], ["X"],
                            precision=3)
        assert "1.235" in out


class TestFormatRun:
    def test_includes_headline_metrics(self):
        out = format_run(fake_metrics(response=123.4), label="test-run")
        assert "test-run" in out
        assert "123.4" in out
        assert "idle" in out.lower()
        assert "replication" in out.lower()


class TestFormatComparison:
    def test_tabulates_rows(self):
        rows = {
            "slow": fake_metrics(response=200.0),
            "fast": fake_metrics(response=50.0),
        }
        out = format_comparison(rows)
        assert "slow" in out and "fast" in out
        assert "200.0" in out and "50.0" in out

    def test_custom_metric(self):
        rows = {"x": fake_metrics(data=77.0)}
        out = format_comparison(
            rows, metric=lambda m: m.avg_data_transferred_mb,
            metric_name="MB/job")
        assert "77.0" in out
        assert "MB/job" in out

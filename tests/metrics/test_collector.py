"""Unit tests for RunMetrics extraction."""

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.metrics import RunMetrics


@pytest.fixture(scope="module")
def finished_run():
    config = SimulationConfig.paper().scaled(0.05)
    workload = make_workload(config, seed=0)
    sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                           workload, seed=0)
    makespan = grid.run()
    return grid, makespan


class TestFromGrid:
    def test_counts_all_jobs(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert m.n_jobs == len(grid.submitted_jobs)
        assert m.makespan_s == makespan

    def test_response_time_matches_job_records(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        expected = sum(j.response_time for j in grid.completed_jobs) / \
            m.n_jobs
        assert m.avg_response_time_s == pytest.approx(expected)

    def test_traffic_matches_transfer_manager(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert m.total_traffic_mb == pytest.approx(
            grid.transfers.total_mb_moved)
        assert m.avg_data_transferred_mb == pytest.approx(
            grid.transfers.total_mb_moved / m.n_jobs)

    def test_traffic_decomposition_sums(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert m.fetch_traffic_mb + m.replication_traffic_mb == \
            pytest.approx(m.total_traffic_mb)

    def test_idle_fraction_in_unit_interval(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert 0.0 <= m.idle_fraction <= 1.0
        assert m.idle_percent == pytest.approx(100 * m.idle_fraction)

    def test_idle_consistent_with_compute_time(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        total_compute = sum(j.compute_time for j in grid.completed_jobs)
        busy_fraction = total_compute / (m.total_processors * makespan)
        assert m.idle_fraction == pytest.approx(1 - busy_fraction, abs=1e-6)

    def test_jobs_per_site_sums_to_total(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert sum(m.jobs_per_site.values()) == m.n_jobs

    def test_idle_per_site_covers_all_sites(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert set(m.idle_per_site) == set(grid.sites)
        for v in m.idle_per_site.values():
            assert 0.0 <= v <= 1.0

    def test_fractions_in_unit_interval(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert 0.0 <= m.fraction_jobs_at_origin <= 1.0
        assert 0.0 <= m.fraction_jobs_local_data <= 1.0

    def test_load_imbalance_at_least_one(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert m.load_imbalance >= 1.0

    def test_queue_plus_wait_bounded_by_response(self, finished_run):
        grid, makespan = finished_run
        m = RunMetrics.from_grid(grid, makespan)
        assert m.avg_queue_time_s + m.avg_transfer_wait_s + \
            m.avg_compute_time_s == pytest.approx(
                m.avg_response_time_s, rel=1e-6)


class TestErrorCases:
    def test_unrun_grid_rejected(self):
        config = SimulationConfig.paper().scaled(0.05)
        workload = make_workload(config, seed=0)
        sim, grid = build_grid(config, "JobLocal", "DataDoNothing",
                               workload, seed=0)
        with pytest.raises(ValueError, match="no completed jobs"):
            RunMetrics.from_grid(grid)

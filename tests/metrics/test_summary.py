"""Unit tests for cross-seed aggregation."""

import dataclasses

import pytest

from repro.metrics import MetricSummary, RunMetrics, summarize


def fake_metrics(response=100.0, data=50.0, idle=0.3):
    return RunMetrics(
        n_jobs=10, makespan_s=1000.0, total_processors=8,
        avg_response_time_s=response,
        avg_data_transferred_mb=data,
        idle_fraction=idle,
        avg_queue_time_s=10.0, avg_transfer_wait_s=5.0,
        avg_compute_time_s=85.0,
        fetch_traffic_mb=400.0, replication_traffic_mb=100.0,
        replications_done=2, replications_skipped=1,
        total_replicas=20, evictions=3, outputs_dropped=0,
        fraction_jobs_at_origin=0.5, fraction_jobs_local_data=0.4,
        jobs_per_site={"a": 5, "b": 5},
        idle_per_site={"a": 0.3, "b": 0.3},
    )


class TestMetricSummary:
    def test_of_single_value(self):
        s = MetricSummary.of([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.n == 1

    def test_of_multiple_values(self):
        s = MetricSummary.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx((2 / 3) ** 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.of([])

    def test_relative_spread(self):
        s = MetricSummary.of([90.0, 100.0, 110.0])
        assert s.relative_spread == pytest.approx(0.2)

    def test_relative_spread_zero_mean(self):
        assert MetricSummary.of([0.0, 0.0]).relative_spread == 0.0


class TestSummarize:
    def test_aggregates_each_field(self):
        runs = [fake_metrics(response=r) for r in (100.0, 110.0, 120.0)]
        out = summarize(runs)
        assert out["avg_response_time_s"].mean == pytest.approx(110.0)
        assert out["avg_response_time_s"].n == 3

    def test_includes_counter_fields(self):
        out = summarize([fake_metrics()])
        assert "replications_done" in out
        assert "evictions" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_identical_runs_zero_spread(self):
        out = summarize([fake_metrics(), fake_metrics()])
        for summary in out.values():
            assert summary.std == 0.0
            assert summary.relative_spread == 0.0

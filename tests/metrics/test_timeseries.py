"""Unit tests for the GridMonitor time-series sampler."""

import pytest

from repro import SimulationConfig, build_grid, make_workload
from repro.metrics.timeseries import SAMPLED_FIELDS, GridMonitor


@pytest.fixture(scope="module")
def monitored_run():
    config = SimulationConfig.paper().scaled(0.05)
    workload = make_workload(config, seed=0)
    sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                           workload, seed=0)
    monitor = GridMonitor(grid, period_s=200.0, track_site_queues=True)
    makespan = grid.run()
    return grid, monitor, makespan


class TestSampling:
    def test_invalid_period_rejected(self, monitored_run):
        grid, _, _ = monitored_run
        with pytest.raises(ValueError):
            GridMonitor(grid, period_s=0)

    def test_samples_cover_run(self, monitored_run):
        _, monitor, makespan = monitored_run
        assert len(monitor) >= makespan / 200.0 - 1
        assert monitor.times[0] == 0.0
        assert monitor.times == sorted(monitor.times)

    def test_all_fields_sampled(self, monitored_run):
        _, monitor, _ = monitored_run
        for name in SAMPLED_FIELDS:
            series = monitor.series(name)
            assert len(series) == len(monitor)
            assert all(v >= 0 for v in series)

    def test_unknown_series_rejected(self, monitored_run):
        _, monitor, _ = monitored_run
        with pytest.raises(KeyError):
            monitor.series("nope")

    def test_completed_jobs_monotone(self, monitored_run):
        _, monitor, _ = monitored_run
        series = monitor.series("completed_jobs")
        assert all(a <= b for a, b in zip(series[:-1], series[1:]))

    def test_initial_sample_is_empty_grid(self, monitored_run):
        _, monitor, _ = monitored_run
        first = monitor.samples[0]
        assert first.values["completed_jobs"] == 0
        assert first.values["running_jobs"] == 0

    def test_replicas_grow_under_replication(self, monitored_run):
        _, monitor, _ = monitored_run
        series = monitor.series("total_replicas")
        assert series[-1] > series[0]


class TestDerived:
    def test_peak(self, monitored_run):
        _, monitor, _ = monitored_run
        t, v = monitor.peak("jobs_in_system")
        assert v == max(monitor.series("jobs_in_system"))
        assert t in monitor.times

    def test_completion_fraction_times_ordered(self, monitored_run):
        _, monitor, _ = monitored_run
        t50 = monitor.time_of_completion_fraction(0.5)
        t90 = monitor.time_of_completion_fraction(0.9)
        assert t50 is not None and t90 is not None
        assert t50 <= t90

    def test_completion_fraction_validation(self, monitored_run):
        _, monitor, _ = monitored_run
        with pytest.raises(ValueError):
            monitor.time_of_completion_fraction(0)
        with pytest.raises(ValueError):
            monitor.time_of_completion_fraction(1.5)

    def test_site_queue_series(self, monitored_run):
        grid, monitor, _ = monitored_run
        for site in grid.sites:
            series = monitor.site_queue_series(site)
            assert len(series) == len(monitor)

    def test_site_queues_require_flag(self):
        config = SimulationConfig.paper().scaled(0.05)
        workload = make_workload(config, seed=0)
        _, grid = build_grid(config, "JobLocal", "DataDoNothing",
                             workload, seed=0)
        monitor = GridMonitor(grid, period_s=100.0)
        grid.run()
        with pytest.raises(ValueError):
            monitor.site_queue_series("site00")

    def test_render_produces_plot(self, monitored_run):
        _, monitor, _ = monitored_run
        art = monitor.render("jobs_in_system", width=40, height=8)
        assert "peak" in art
        assert "#" in art

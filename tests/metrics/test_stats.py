"""Unit tests for the statistical-validation helpers."""

import random

import pytest

from repro.metrics.stats import (
    chi_square_popularity,
    confidence_interval,
    welch_t_test,
)
from repro.workload.popularity import GeometricPopularity, UniformPopularity


class TestChiSquare:
    def _observed(self, model, n, seed=0):
        rng = random.Random(seed)
        counts = [0] * model.n_items
        for _ in range(n):
            counts[model.sample(rng)] += 1
        return counts

    def test_matching_model_not_rejected(self):
        model = GeometricPopularity(50, p=0.05)
        observed = self._observed(model, 10_000)
        result = chi_square_popularity(observed, model)
        assert not result.rejected_at_5pct
        assert result.bins >= 2
        assert result.dof == result.bins - 1

    def test_wrong_model_rejected(self):
        geometric = GeometricPopularity(50, p=0.1)
        observed = self._observed(geometric, 10_000)
        result = chi_square_popularity(observed, UniformPopularity(50))
        assert result.rejected_at_5pct

    def test_tail_pooling_keeps_test_valid(self):
        # Very skewed model: most ranks expect << 5 counts and must pool.
        model = GeometricPopularity(200, p=0.2)
        observed = self._observed(model, 2000)
        result = chi_square_popularity(observed, model)
        assert result.bins < 200

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chi_square_popularity([1, 2], GeometricPopularity(3, p=0.1))

    def test_no_observations_rejected(self):
        with pytest.raises(ValueError):
            chi_square_popularity([0] * 10, GeometricPopularity(10, p=0.1))


class TestConfidenceInterval:
    def test_contains_mean(self):
        lo, hi = confidence_interval([10.0, 11.0, 12.0])
        assert lo < 11.0 < hi

    def test_narrower_at_lower_level(self):
        values = [10.0, 11.0, 12.0, 13.0]
        lo95, hi95 = confidence_interval(values, level=0.95)
        lo50, hi50 = confidence_interval(values, level=0.50)
        assert (hi50 - lo50) < (hi95 - lo95)

    def test_single_value_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_zero_variance_degenerate_interval(self):
        lo, hi = confidence_interval([5.0, 5.0, 5.0])
        assert lo == hi == 5.0


class TestWelch:
    def test_identical_samples_not_significant(self):
        result = welch_t_test([5.0, 5.0], [5.0, 5.0])
        assert result.p_value == 1.0
        assert not result.significant_at_5pct

    def test_constant_but_different_samples_significant(self):
        result = welch_t_test([5.0, 5.0], [9.0, 9.0])
        assert result.significant_at_5pct

    def test_clearly_different_means_significant(self):
        a = [10.0, 10.1, 9.9, 10.2, 9.8]
        b = [20.0, 20.1, 19.9, 20.2, 19.8]
        assert welch_t_test(a, b).significant_at_5pct

    def test_overlapping_samples_not_significant(self):
        a = [10.0, 12.0, 11.0, 13.0]
        b = [11.0, 13.0, 10.0, 12.0]
        assert not welch_t_test(a, b).significant_at_5pct

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [2.0, 3.0])


class TestPaperEquivalence:
    """Formalize C5: DataRandom ~ DataLeastLoaded for JobDataPresent."""

    def test_c5_not_significant_across_seeds(self):
        from repro import SimulationConfig, run_replicated

        config = SimulationConfig.paper().scaled(0.2)
        seeds = (0, 1, 2, 3)
        a = [m.avg_response_time_s for m in run_replicated(
            config, "JobDataPresent", "DataRandom", seeds)]
        b = [m.avg_response_time_s for m in run_replicated(
            config, "JobDataPresent", "DataLeastLoaded", seeds)]
        assert not welch_t_test(a, b).significant_at_5pct

"""Unit tests for CSV export."""

import csv

import pytest

from repro import SimulationConfig, build_grid, make_workload, run_matrix
from repro.experiments.sweep import sweep
from repro.metrics.export import (
    METRIC_COLUMNS,
    matrix_to_csv,
    sweep_to_csv,
    timeseries_to_csv,
)
from repro.metrics.timeseries import GridMonitor


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig.paper().scaled(0.05)


class TestColumns:
    def test_scalar_metrics_exported(self):
        assert "avg_response_time_s" in METRIC_COLUMNS
        assert "avg_data_transferred_mb" in METRIC_COLUMNS
        assert "idle_fraction" in METRIC_COLUMNS
        # dict-valued fields stay out of the CSV.
        assert "jobs_per_site" not in METRIC_COLUMNS


class TestMatrixCsv:
    def test_one_row_per_run(self, small_config, tmp_path):
        result = run_matrix(small_config,
                            es_names=["JobLocal", "JobDataPresent"],
                            ds_names=["DataDoNothing"], seeds=(0, 1))
        path = tmp_path / "matrix.csv"
        assert matrix_to_csv(result, path) == 4
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert {r["es"] for r in rows} == {"JobLocal", "JobDataPresent"}
        assert float(rows[0]["avg_response_time_s"]) > 0

    def test_values_match_metrics(self, small_config, tmp_path):
        result = run_matrix(small_config, es_names=["JobLocal"],
                            ds_names=["DataDoNothing"], seeds=(0,))
        path = tmp_path / "matrix.csv"
        matrix_to_csv(result, path)
        with open(path) as handle:
            row = next(csv.DictReader(handle))
        metrics = result.runs[("JobLocal", "DataDoNothing")][0]
        assert float(row["avg_response_time_s"]) == pytest.approx(
            metrics.avg_response_time_s)
        assert int(row["n_jobs"]) == metrics.n_jobs


class TestSweepCsv:
    def test_one_row_per_value_seed(self, small_config, tmp_path):
        result = sweep(small_config, "bandwidth_mbps", (10.0, 100.0),
                       es_name="JobLocal", ds_name="DataDoNothing",
                       seeds=(0, 1))
        path = tmp_path / "sweep.csv"
        assert sweep_to_csv(result, path) == 4
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert {r["bandwidth_mbps"] for r in rows} == {"10.0", "100.0"}


class TestTimeseriesCsv:
    def test_one_row_per_sample(self, small_config, tmp_path):
        workload = make_workload(small_config, seed=0)
        sim, grid = build_grid(small_config, "JobLocal", "DataDoNothing",
                               workload, seed=0)
        monitor = GridMonitor(grid, period_s=500.0)
        grid.run()
        path = tmp_path / "series.csv"
        assert timeseries_to_csv(monitor, path) == len(monitor)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(monitor)
        # The final sample precedes the last completions by up to one
        # period, but must be nearly done.
        assert float(rows[-1]["completed_jobs"]) >= 0.9 * small_config.n_jobs

"""Property-based tests for the stale-information layer.

Two contracts, checked over Hypothesis-generated workloads:

* **Zero staleness is exactly the live service.**  A grid built through
  the unified :class:`InfoPolicy` with ``catalog_delay_s == 0`` must
  behave bitwise-identically to one built through the legacy
  ``refresh_interval_s`` shorthand (the pre-policy construction), and a
  live-information run must never report misdirections, bounces, or
  stale reads.
* **Stale runs are deterministic.**  Any positive catalog delay yields
  the same job outcomes and the same staleness counters on every
  repetition.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, build_grid, make_workload, run_single
from repro.grid import (
    DataGrid,
    Dataset,
    DatasetCollection,
    InfoPolicy,
    Job,
)
from repro.network import Topology
from repro.scheduling import DataRandom, FIFOLocalScheduler
from repro.scheduling.external import JobDataPresent
from repro.sim import Simulator

DATASETS = ("d0", "d1", "d2")

job_specs = st.lists(
    st.tuples(
        st.sampled_from(DATASETS),                      # input file
        st.integers(0, 3),                              # origin site
        st.floats(5.0, 500.0, allow_nan=False),        # runtime
    ),
    min_size=1, max_size=25)

common_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def make_grid(policy=None, legacy_refresh=0.0):
    """A 4-site grid built either through a policy or the legacy knob."""
    sim = Simulator()
    topology = Topology.star(4, 10.0)
    datasets = DatasetCollection([
        Dataset("d0", 500), Dataset("d1", 1000), Dataset("d2", 1500)])
    grid = DataGrid.create(
        sim=sim,
        topology=topology,
        datasets=datasets,
        external_scheduler=JobDataPresent(random.Random(7)),
        local_scheduler=FIFOLocalScheduler(),
        dataset_scheduler=DataRandom(
            random.Random(3), popularity_threshold=2,
            check_interval_s=100.0),
        site_processors={name: 2 for name in topology.sites},
        storage_capacity_mb=6_000,
        datamover_rng=random.Random(1),
        info_policy=policy,
        info_refresh_interval_s=legacy_refresh,
        watchdog_interval_s=150.0,  # always-on-in-tests invariant audits
    )
    grid.place_initial_replicas(
        {"d0": "site00", "d1": "site01", "d2": "site02"})
    return sim, grid


def run_jobs(sim, grid, specs):
    """Submit one job per spec at t=0 and run to completion."""
    jobs = [
        Job(job_id=i, user="u", origin_site=f"site{origin:02d}",
            input_files=[name], runtime_s=runtime)
        for i, (name, origin, runtime) in enumerate(specs)
    ]
    done = [grid.submit(job) for job in jobs]
    sim.run(until=sim.all_of(done))
    grid.watchdog.check_now()
    return jobs


def outcome(sim, grid, jobs):
    """Everything observable about a finished run, exactly comparable."""
    view = grid.info.replica_view
    return {
        "makespan": sim.now,
        "jobs": [(j.execution_site, j.response_time, j.transfer_time)
                 for j in jobs],
        "replicas": grid.catalog.replica_records(),
        "misdirected": view.misdirected_jobs if view else 0,
        "bounced": view.bounced_jobs if view else 0,
        "stale_reads": view.stale_reads if view else 0,
    }


def run_outcome(specs, policy=None, legacy_refresh=0.0):
    sim, grid = make_grid(policy=policy, legacy_refresh=legacy_refresh)
    jobs = run_jobs(sim, grid, specs)
    return outcome(sim, grid, jobs)


@given(specs=job_specs, refresh=st.sampled_from([0.0, 60.0]))
@common_settings
def test_zero_delay_policy_equals_legacy_shorthand(specs, refresh):
    """InfoPolicy(catalog_delay_s=0) is bitwise the pre-policy service."""
    policy_run = run_outcome(
        specs, policy=InfoPolicy(refresh_interval_s=refresh))
    legacy_run = run_outcome(specs, legacy_refresh=refresh)
    assert policy_run == legacy_run


@given(specs=job_specs)
@common_settings
def test_no_staleness_means_no_misdirection_counters(specs):
    sim, grid = make_grid(policy=InfoPolicy())
    jobs = run_jobs(sim, grid, specs)
    assert grid.info.replica_view is None
    result = outcome(sim, grid, jobs)
    assert result["misdirected"] == 0
    assert result["bounced"] == 0
    assert result["stale_reads"] == 0


@given(specs=job_specs, delay=st.sampled_from([30.0, 250.0, 2_000.0]))
@common_settings
def test_stale_runs_are_deterministic(specs, delay):
    policy = InfoPolicy(catalog_delay_s=delay)
    assert run_outcome(specs, policy=policy) == run_outcome(
        specs, policy=policy)


@given(seed=st.integers(0, 4))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_full_run_zero_delay_equals_live_metrics(seed):
    """run_single with catalog_delay_s=0 is exactly the live-catalog run."""
    config = SimulationConfig.paper().scaled(0.02).with_(watchdog=True)
    live = run_single(config, "JobDataPresent", "DataRandom", seed=seed)
    zero = run_single(config.with_(catalog_delay_s=0.0, info_timeout_s=0.0),
                      "JobDataPresent", "DataRandom", seed=seed)
    assert live == zero
    assert live.misdirected_jobs == 0
    assert live.bounced_jobs == 0
    assert live.stale_reads == 0
    # And the grid really has no stale-view machinery installed.
    sim, grid = build_grid(
        config, "JobDataPresent", "DataRandom",
        workload=make_workload(config, seed), seed=seed)
    assert grid.info.replica_view is None

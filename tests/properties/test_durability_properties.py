"""Property-based tests: durability invariants under arbitrary faults.

Hypothesis generates fault plans that corrupt and destroy replicas —
scripted :class:`ReplicaCorruption`/:class:`ReplicaLoss` events,
stochastic bit-rot, permanent outages, lossy transfers — combined with
arbitrary durability knobs (replication factor, repair on/off, scrub
period).  Whatever the combination, the layer must keep its promises:

* **no limbo** — every managed dataset ends the run either with at
  least one cataloged replica or recorded as lost, never neither;
* every submitted job reaches a terminal state and the books conserve,
  with ``ABANDONED_DATA_LOST`` jobs tied to actually-lost inputs;
* storage accounting balances and no pinned file is LRU-evicted
  (quarantine removal is *not* an eviction and must not trip the
  audit);
* the replica catalog and storage contents agree exactly;
* durability counters stay internally consistent.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FaultPlan, SimulationConfig, SiteOutage
from repro import build_grid, make_workload
from repro.faults.plan import ReplicaCorruption, ReplicaLoss
from repro.grid.job import JobState

# The small grid: SimulationConfig.paper().scaled(0.02) — two sites
# under one tier-1 hub, 10 datasets, 120 jobs.
SITES = ["site00", "site01"]
DATASETS = [f"dataset{i:04d}" for i in range(10)]
N_JOBS = 120

TERMINAL = (JobState.COMPLETED, JobState.FAILED,
            JobState.ABANDONED_DATA_LOST)


@st.composite
def replica_events(draw, cls, max_events):
    events = []
    for _ in range(draw(st.integers(0, max_events))):
        events.append(cls(
            site=draw(st.sampled_from(SITES)),
            dataset=draw(st.sampled_from(DATASETS)),
            time_s=draw(st.floats(0.0, 20_000.0, allow_nan=False)),
        ))
    return tuple(events)


@st.composite
def durable_plans(draw):
    outages = []
    if draw(st.booleans()):
        start = draw(st.floats(0.0, 10_000.0, allow_nan=False))
        end = draw(st.one_of(
            st.none(),  # permanent: destroys every replica at the site
            st.floats(start + 100.0, start + 8_000.0, allow_nan=False)))
        outages.append(SiteOutage(draw(st.sampled_from(SITES)), start, end))
    return FaultPlan(
        site_outages=tuple(outages),
        replica_corruptions=draw(
            replica_events(ReplicaCorruption, max_events=4)),
        replica_losses=draw(replica_events(ReplicaLoss, max_events=3)),
        corruption_mtbf_s=draw(st.sampled_from([0.0, 3_000.0, 10_000.0])),
        transfer_fail_prob=draw(st.sampled_from([0.0, 0.1])),
        job_max_retries=draw(st.sampled_from([2, 8])),
        redispatch_delay_s=5.0,
        seed=draw(st.integers(0, 3)),
    )


durability_knobs = st.sampled_from([
    # (replication_factor, repair, scrub_interval_s)
    (1, False, 0.0),
    (1, False, 600.0),
    (2, True, 0.0),
    (2, True, 600.0),
])


def run_durable(plan, knobs, seed=0):
    rf, repair, scrub = knobs
    config = SimulationConfig.paper().scaled(0.02).with_(
        fault_plan=plan, watchdog=True, replication_factor=rf,
        durability_repair=repair, scrub_interval_s=scrub)
    workload = make_workload(config, seed=seed)
    sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                           workload, seed=seed)
    evicted_while_pinned = _audit_evictions(grid)
    grid.run()
    return grid, evicted_while_pinned


def _audit_evictions(grid):
    """Catch LRU evictions of pinned files, durability-aware.

    Shadow-counts pins via wrapped pin/unpin.  ``remove`` (the path
    quarantine, explicit loss, and site invalidation take) zeroes the
    shadow count: pins vanish with the entry, and a later refetch
    restarts from zero — mirroring the real element's accounting.
    """
    violations = []
    for site, storage in grid.storages.items():
        pins = {}

        def wrap(storage=storage, site=site, pins=pins):
            original_pin = storage.pin
            original_unpin = storage.unpin
            original_remove = storage.remove
            previous_evict = storage.on_evict

            def pin(name):
                original_pin(name)
                pins[name] = pins.get(name, 0) + 1

            def unpin(name):
                original_unpin(name)
                if pins.get(name, 0) > 0:
                    pins[name] -= 1

            def remove(name):
                original_remove(name)
                pins.pop(name, None)

            def on_evict(dataset):
                if pins.get(dataset.name, 0) > 0:
                    violations.append((site, dataset.name))
                if previous_evict is not None:
                    previous_evict(dataset)

            storage.pin = pin
            storage.unpin = unpin
            storage.remove = remove
            storage.on_evict = on_evict

        wrap()
    return violations


common_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_no_dataset_is_left_in_limbo(plan, knobs):
    grid, _ = run_durable(plan, knobs)
    durability = grid.durability
    if durability is None:
        return  # nothing armed this example: nothing to promise
    for name in grid.datasets.names:
        count = grid.catalog.replica_count(name)
        if count == 0:
            assert durability.is_lost(name), \
                f"{name} has no replica yet is not recorded lost"
        else:
            assert not durability.is_lost(name), \
                f"{name} is recorded lost yet still has {count} replicas"
    assert durability.stats.datasets_lost == len(durability.lost_datasets())


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_jobs_conserve_and_abandonment_is_justified(plan, knobs):
    grid, _ = run_durable(plan, knobs)
    states = [job.state for job in grid.submitted_jobs]
    assert all(s in TERMINAL for s in states)
    assert (len(grid.completed_jobs) + len(grid.failed_jobs)
            + len(grid.abandoned_jobs)) == len(states) == N_JOBS
    if grid.abandoned_jobs:
        lost = set(grid.durability.lost_datasets())
        for job in grid.abandoned_jobs:
            assert any(f in lost for f in job.input_files), \
                f"job {job.job_id} abandoned without a lost input"
    # No job work left in flight anywhere.  Background repair copies
    # may legitimately outlive the workload — the run ends when the
    # last job does, not when maintenance goes quiet.
    assert all(s.jobs_in_system == 0 for s in grid.sites.values())
    assert [t for t in grid.transfers.active
            if t.purpose != "repair"] == []


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_storage_accounting_balances(plan, knobs):
    grid, _ = run_durable(plan, knobs)
    for storage in grid.storages.values():
        assert 0.0 <= storage.used_mb <= storage.capacity_mb + 1e-6
        for name in storage.files:
            assert storage._entries[name].pins >= 0


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_no_pinned_copy_is_lru_evicted(plan, knobs):
    _, evicted_while_pinned = run_durable(plan, knobs)
    assert evicted_while_pinned == []


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_catalog_matches_storage_exactly(plan, knobs):
    grid, _ = run_durable(plan, knobs)
    for site, storage in grid.storages.items():
        for name in storage.files:
            assert grid.catalog.has_replica(name, site), \
                f"{name} stored at {site} but not cataloged"
    for name in grid.datasets.names:
        for site in grid.catalog.locations(name):
            assert name in grid.storages[site], \
                f"{name} cataloged at {site} but not stored"


@given(plan=durable_plans(), knobs=durability_knobs)
@common_settings
def test_durability_counters_stay_consistent(plan, knobs):
    grid, _ = run_durable(plan, knobs)
    durability = grid.durability
    if durability is None:
        return
    stats = durability.stats
    assert stats.replicas_quarantined <= stats.replicas_corrupted
    assert stats.replicas_repaired <= stats.repairs_started
    assert stats.jobs_abandoned == len(grid.abandoned_jobs)
    assert stats.mean_repair_latency_s >= 0.0
    if stats.replicas_repaired == 0:
        assert stats.repair_bytes_mb == 0.0
    rf = durability.policy.replication_factor
    if rf == 1:
        # The paper's single-primary mode never creates extra copies.
        assert stats.repairs_started == 0

"""Property-based tests: overload invariants under arbitrary pressure.

Two conservation laws that must survive anything:

* **No overcommit, ever** — whatever sequence of adds, reservations,
  releases, commits, pins and removals a storage element sees, its
  booked totals match the ground truth and ``used + reserved`` never
  exceeds capacity.
* **Jobs conserved under overload** — whatever combination of queue
  bounds, deflect budgets, deadlines and open-loop arrival rates, every
  submitted job ends the run in exactly one terminal ledger: completed,
  failed, shed, or expired.  Admission control may refuse work; it may
  never lose it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, build_grid, make_workload
from repro.grid import Dataset, StorageElement
from repro.grid.storage import StorageFullError

# Fixed sizes per name: a dataset's size is part of its identity.
SIZES = {"f0": 50, "f1": 100, "f2": 250, "f3": 400, "f4": 700, "f5": 950}
NAMES = sorted(SIZES)

common_settings = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])


@st.composite
def storage_ops(draw):
    op = draw(st.sampled_from(
        ["add", "add_pinned", "reserve", "release", "commit",
         "pin", "unpin", "remove"]))
    return op, draw(st.sampled_from(NAMES))


def apply_op(storage, op, name, now):
    dataset = Dataset(name, SIZES[name])
    try:
        if op == "add":
            storage.add(dataset, now=now)
        elif op == "add_pinned":
            storage.add(dataset, now=now, pin=True)
        elif op == "reserve":
            storage.reserve(dataset, now=now)
        elif op == "release":
            storage.release_reservation(name)
        elif op == "commit":
            if storage.is_reserved(name):
                storage.commit_reservation(dataset, now=now)
        elif op == "pin":
            storage.pin(name)
        elif op == "unpin":
            storage.unpin(name)
        elif op == "remove":
            storage.remove(name)
    except (StorageFullError, KeyError, ValueError):
        pass  # legal refusals, not accounting corruption


@given(ops=st.lists(storage_ops(), min_size=1, max_size=60))
@common_settings
def test_ledger_never_overcommits(ops):
    storage = StorageElement("s", 1000)
    for i, (op, name) in enumerate(ops):
        apply_op(storage, op, name, now=float(i))
        resident = sum(
            entry.dataset.size_mb for entry in storage._entries.values())
        booked = sum(storage._reservations.values())
        assert storage.used_mb == pytest.approx(resident, abs=1e-6)
        assert storage.reserved_mb == pytest.approx(booked, abs=1e-6)
        assert (storage.used_mb + storage.reserved_mb
                <= storage.capacity_mb + 1e-6)
        # No phantom holds: every ledger entry is non-resident.
        assert all(held not in storage for held in storage._reservations)


@given(ops=st.lists(storage_ops(), min_size=1, max_size=60))
@common_settings
def test_full_release_leaves_zero_residue(ops):
    storage = StorageElement("s", 1000)
    for i, (op, name) in enumerate(ops):
        apply_op(storage, op, name, now=float(i))
    for name in NAMES:
        storage.release_reservation(name)
    assert storage.reserved_mb == 0.0
    assert storage._reservations == {}


@st.composite
def overload_knobs(draw):
    return dict(
        queue_capacity=draw(st.sampled_from([1, 2, 8])),
        deflect_budget=draw(st.sampled_from([0, 1, 3])),
        job_deadline_s=draw(st.sampled_from([0.0, 300.0, 3_000.0])),
        arrival_rate_per_s=draw(st.sampled_from([0.05, 0.5])),
        storage_reservations=draw(st.booleans()),
        aging_factor=draw(st.sampled_from([0.0, 0.01])),
    )


@given(knobs=overload_knobs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_jobs_conserved_under_overload(knobs):
    config = SimulationConfig.paper().scaled(0.02).with_(
        watchdog=True, **knobs)
    workload = make_workload(config, seed=0)
    sim, grid = build_grid(config, "JobDataPresent", "DataRandom",
                           workload, seed=0)
    grid.run()
    submitted = len(grid.submitted_jobs)
    assert submitted == 120  # admission control never drops pre-ledger
    completed = len(grid.completed_jobs)
    failed = len(grid.failed_jobs)
    shed = len(grid.shed_jobs)
    expired = len(grid.expired_jobs)
    assert completed + failed + shed + expired == submitted
    # The counters agree with the ledgers and nothing is left in-flight.
    stats = grid.overload_stats
    assert stats.jobs_shed == shed
    assert stats.jobs_expired == expired
    assert all(s.jobs_in_system == 0 for s in grid.sites.values())
    # (Background DS replications may be mid-flight at the stop instant;
    # run() halts at the all-jobs-done event, so we don't assert an
    # empty wire here the way the closed-loop fault properties do.)
    # Final audit on top of the periodic mid-run ones.
    grid.watchdog.check_now()

"""Property-based tests: conservation invariants under arbitrary faults.

Hypothesis generates small but adversarial fault plans — overlapping
scripted outages (including permanent ones), dead and degraded links,
transfer drops, MTBF churn, tight retry budgets — and runs a small grid
to completion under each.  Whatever the plan, the system must conserve
its books:

* every submitted job ends the run either COMPLETED or FAILED;
* storage occupancy never exceeds capacity and no pins leak negative;
* a pinned file is never LRU-evicted;
* the replica catalog and the storage contents agree exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FaultPlan, LinkDegradation, SimulationConfig, SiteOutage
from repro import build_grid, make_workload
from repro.grid.job import JobState
from repro.metrics import RunMetrics

# The small grid under test: SimulationConfig.paper().scaled(0.02) wires
# two sites under one tier-1 hub with 120 jobs — big enough to exercise
# shared transfers and queue churn, small enough for many examples.
SITES = ["site00", "site01"]
LINKS = [("site00", "tier1-0"), ("site01", "tier1-0")]


@st.composite
def site_outage_lists(draw):
    """Up to two outages per site, with disjoint windows.

    Overlapping windows for one site are rejected by FaultPlan
    validation (they are ambiguous), so the generator walks a cursor
    forward per site instead of drawing independent windows.
    """
    outages = []
    for site in SITES:
        count = draw(st.integers(0, 2))
        cursor = draw(st.floats(0.0, 2000.0, allow_nan=False))
        for _ in range(count):
            duration = draw(st.one_of(
                st.none(),  # permanent
                st.floats(50.0, 3000.0, allow_nan=False)))
            if duration is None:
                outages.append(SiteOutage(site, cursor, None))
                break  # nothing may follow a permanent outage
            outages.append(SiteOutage(site, cursor, cursor + duration))
            cursor += duration + draw(
                st.floats(1.0, 1000.0, allow_nan=False))
    return tuple(outages)


@st.composite
def link_degradations(draw):
    a, b = draw(st.sampled_from(LINKS))
    start = draw(st.floats(0.0, 3000.0, allow_nan=False))
    duration = draw(st.floats(50.0, 4000.0, allow_nan=False))
    factor = draw(st.floats(0.0, 0.9, allow_nan=False))
    return LinkDegradation(a, b, start, start + duration, factor)


@st.composite
def fault_plans(draw):
    return FaultPlan(
        site_outages=draw(site_outage_lists()),
        link_degradations=tuple(
            draw(st.lists(link_degradations(), max_size=2))),
        transfer_fail_prob=draw(st.sampled_from([0.0, 0.1, 0.4])),
        site_mtbf_s=draw(st.sampled_from([0.0, 5_000.0, 20_000.0])),
        site_mttr_s=draw(st.sampled_from([500.0, 2_000.0])),
        transfer_max_retries=draw(st.sampled_from([1, 4])),
        transfer_backoff_base_s=5.0,
        job_max_retries=draw(st.sampled_from([2, 10])),
        redispatch_delay_s=5.0,
        seed=draw(st.integers(0, 3)),
    )


def run_under_plan(plan, seed=0, es="JobDataPresent", ds="DataRandom"):
    """Run the small grid under a plan; returns (grid, eviction audit)."""
    config = SimulationConfig.paper().scaled(0.02).with_(
        fault_plan=plan, watchdog=True)
    workload = make_workload(config, seed=seed)
    sim, grid = build_grid(config, es, ds, workload, seed=seed)
    evicted_while_pinned = _audit_evictions(grid)
    grid.run()
    return grid, evicted_while_pinned


def _audit_evictions(grid):
    """Instrument every storage to catch evictions of pinned files.

    Shadow-counts pins via wrapped pin/unpin and checks the count at the
    moment ``on_evict`` fires (the entry itself is already gone by then).
    """
    violations = []
    for site, storage in grid.storages.items():
        pins = {}

        def wrap(storage=storage, site=site, pins=pins):
            original_pin = storage.pin
            original_unpin = storage.unpin
            previous_evict = storage.on_evict

            def pin(name):
                original_pin(name)
                pins[name] = pins.get(name, 0) + 1

            def unpin(name):
                original_unpin(name)
                if pins.get(name, 0) > 0:
                    pins[name] -= 1

            def on_evict(dataset):
                if pins.get(dataset.name, 0) > 0:
                    violations.append((site, dataset.name))
                if previous_evict is not None:
                    previous_evict(dataset)

            storage.pin = pin
            storage.unpin = unpin
            storage.on_evict = on_evict

        wrap()
    return violations


common_settings = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])


@given(plan=fault_plans())
@common_settings
def test_every_job_completes_or_is_accounted_failed(plan):
    grid, _ = run_under_plan(plan)
    states = [job.state for job in grid.submitted_jobs]
    assert all(s in (JobState.COMPLETED, JobState.FAILED) for s in states)
    assert len(grid.completed_jobs) + len(grid.failed_jobs) == len(states)
    assert len(grid.submitted_jobs) == 120  # nothing dropped pre-submit
    # No stragglers left inside any site and no wire still hot.
    assert all(s.jobs_in_system == 0 for s in grid.sites.values())
    assert grid.transfers.active == []


@given(plan=fault_plans())
@common_settings
def test_storage_never_exceeds_capacity(plan):
    grid, _ = run_under_plan(plan)
    for storage in grid.storages.values():
        assert storage.used_mb <= storage.capacity_mb + 1e-6
        assert storage.used_mb >= 0.0
        # Per-file pin counts can never go negative.
        for name in storage.files:
            assert storage._entries[name].pins >= 0


@given(plan=fault_plans())
@common_settings
def test_pinned_files_are_never_evicted(plan):
    _, evicted_while_pinned = run_under_plan(plan)
    assert evicted_while_pinned == []


@given(plan=fault_plans())
@common_settings
def test_catalog_matches_storage_exactly(plan):
    grid, _ = run_under_plan(plan)
    for site, storage in grid.storages.items():
        for name in storage.files:
            assert grid.catalog.has_replica(name, site), \
                f"{name} stored at {site} but not cataloged"
    for name in grid.datasets.names:
        for site in grid.catalog.locations(name):
            assert name in grid.storages[site], \
                f"{name} cataloged at {site} but not stored"


@given(plan=fault_plans())
@common_settings
def test_metrics_extraction_is_sane(plan):
    grid, _ = run_under_plan(plan)
    if not grid.completed_jobs:
        # A plan can legitimately kill everything (both sites permanently
        # dead); metrics extraction refuses to average over nothing.
        with pytest.raises(ValueError):
            RunMetrics.from_grid(grid, grid.sim.now)
        return
    metrics = RunMetrics.from_grid(grid, grid.sim.now)
    assert 0.0 <= metrics.completion_rate <= 1.0
    assert metrics.n_jobs + metrics.jobs_failed == 120
    for field in ("jobs_retried", "jobs_redirected", "transfers_failed",
                  "failovers", "replicas_invalidated", "outages",
                  "site_downtime_s", "avg_response_time_s", "makespan_s"):
        assert getattr(metrics, field) >= 0, field
    assert all(v >= 0 for v in metrics.downtime_per_site.values())

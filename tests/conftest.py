"""Repo-wide pytest hooks."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="regenerate the golden trace digests under tests/trace/golden/ "
             "instead of checking against them")

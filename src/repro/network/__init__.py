"""Network substrate: topology, contended links, and data transfers.

The paper models network contention by "keeping track of the number of
simultaneous data transfers across a link and decreasing the bandwidth
available for each transfer accordingly" (§5.1).  This package implements
that model:

* :mod:`~repro.network.topology` — the site/router graph, including the
  hierarchical GriPhyN-style topology the paper assumes, plus flat/star and
  random builders for experimentation.
* :mod:`~repro.network.link` — a :class:`Link` with fixed capacity shared
  equally among concurrent transfers.
* :mod:`~repro.network.routing` — shortest-path route computation + cache.
* :mod:`~repro.network.transfer` — the :class:`TransferManager`, which runs
  all wide-area transfers under a rate allocator (the paper's equal-share
  bottleneck model, or optionally true max–min fairness) and recomputes
  rates whenever any transfer starts or finishes.
"""

from repro.network.forecast import (
    BandwidthHistory,
    NWSForecaster,
)
from repro.network.link import Link
from repro.network.routing import Router
from repro.network.topology import Topology
from repro.network.transfer import (
    EqualShareAllocator,
    MaxMinFairAllocator,
    Transfer,
    TransferManager,
)

__all__ = [
    "BandwidthHistory",
    "EqualShareAllocator",
    "Link",
    "MaxMinFairAllocator",
    "NWSForecaster",
    "Router",
    "Topology",
    "Transfer",
    "TransferManager",
]

"""Grid topologies.

The paper assumes "a hierarchical network topology much like that envisioned
by the GriPhyN project" (§5.1): a tier-0 root (CERN in the HEP picture),
regional centers below it, and leaf sites (universities/labs) below those.
Only leaf sites host users, processors, and storage in the paper's
configuration; interior nodes are pure routers.

:class:`Topology` wraps a :mod:`networkx` graph whose edges carry
:class:`~repro.network.link.Link` objects, and exposes builders for the
hierarchical layout plus flat (star) and random layouts used in extension
experiments.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

from repro.network.link import Link


class Topology:
    """An undirected graph of sites and routers joined by links.

    Node names are strings.  *Site* nodes (``is_site=True``) can host
    storage/compute; router nodes only forward traffic.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._links: Dict[FrozenSet[str], Link] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, name: str, is_site: bool = True) -> None:
        """Add a site or router node."""
        if name in self.graph:
            raise ValueError(f"duplicate node {name!r}")
        self.graph.add_node(name, is_site=is_site)

    def add_link(self, a: str, b: str, capacity_mbps: float) -> Link:
        """Connect two existing nodes with a link of the given capacity."""
        for n in (a, b):
            if n not in self.graph:
                raise ValueError(f"unknown node {n!r}")
        if a == b:
            raise ValueError(f"self-link on {a!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"duplicate link {a!r}-{b!r}")
        link = Link(a, b, capacity_mbps)
        self._links[key] = link
        self.graph.add_edge(a, b, link=link)
        return link

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """All node names."""
        return list(self.graph.nodes)

    @property
    def sites(self) -> List[str]:
        """Names of site (non-router) nodes, in insertion order."""
        return [n for n, d in self.graph.nodes(data=True) if d["is_site"]]

    @property
    def links(self) -> List[Link]:
        """All links."""
        return list(self._links.values())

    def link_between(self, a: str, b: str) -> Link:
        """The link joining two adjacent nodes."""
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise KeyError(f"no link between {a!r} and {b!r}") from None

    def is_site(self, name: str) -> bool:
        """Whether ``name`` is a site node."""
        return bool(self.graph.nodes[name]["is_site"])

    def degree(self, name: str) -> int:
        """Number of links incident to ``name``."""
        return self.graph.degree[name]

    def validate(self) -> None:
        """Check the topology is connected and has at least one site."""
        if self.graph.number_of_nodes() == 0:
            raise ValueError("empty topology")
        if not nx.is_connected(self.graph):
            raise ValueError("topology is not connected")
        if not self.sites:
            raise ValueError("topology has no site nodes")

    # -- builders ------------------------------------------------------------

    @classmethod
    def hierarchical(
        cls,
        n_sites: int,
        bandwidth_mbps: float,
        branching: int = 6,
        backbone_multiplier: float = 1.0,
    ) -> "Topology":
        """Build the GriPhyN-style tree the paper assumes.

        A tier-0 root router, ``ceil(n_sites / branching)`` tier-1 regional
        routers, and ``n_sites`` leaf sites distributed round-robin under the
        regionals.  Every link has ``bandwidth_mbps`` capacity; backbone
        (root–regional) links may be scaled by ``backbone_multiplier`` to
        model a fatter core (1.0 reproduces the paper's single "connectivity
        bandwidth" parameter).

        With the Table-1 parameters (30 sites, branching 6), this yields a
        root, 5 regional centers, and 6 leaf sites per region.
        """
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        if branching < 1:
            raise ValueError(f"branching must be >=1, got {branching}")
        topo = cls()
        topo.add_node("tier0", is_site=False)
        n_regions = -(-n_sites // branching)  # ceil division
        for r in range(n_regions):
            region = f"tier1-{r}"
            topo.add_node(region, is_site=False)
            topo.add_link("tier0", region,
                          bandwidth_mbps * backbone_multiplier)
        for s in range(n_sites):
            site = f"site{s:02d}"
            topo.add_node(site, is_site=True)
            topo.add_link(site, f"tier1-{s % n_regions}", bandwidth_mbps)
        return topo

    @classmethod
    def star(cls, n_sites: int, bandwidth_mbps: float) -> "Topology":
        """All sites hang off one central switch (flat topology)."""
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        topo = cls()
        topo.add_node("hub", is_site=False)
        for s in range(n_sites):
            site = f"site{s:02d}"
            topo.add_node(site, is_site=True)
            topo.add_link(site, "hub", bandwidth_mbps)
        return topo

    @classmethod
    def ring(cls, n_sites: int, bandwidth_mbps: float) -> "Topology":
        """Sites arranged in a cycle (stress-test for multi-hop routes)."""
        if n_sites < 3:
            raise ValueError(f"a ring needs >=3 sites, got {n_sites}")
        topo = cls()
        for s in range(n_sites):
            topo.add_node(f"site{s:02d}", is_site=True)
        for s in range(n_sites):
            topo.add_link(f"site{s:02d}", f"site{(s + 1) % n_sites:02d}",
                          bandwidth_mbps)
        return topo

    @classmethod
    def random_geometric(
        cls,
        n_sites: int,
        bandwidth_mbps: float,
        rng: Optional[random.Random] = None,
        extra_edge_fraction: float = 0.3,
    ) -> "Topology":
        """A random connected topology (spanning tree + extra edges)."""
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        rng = rng or random.Random(0)
        topo = cls()
        names = [f"site{s:02d}" for s in range(n_sites)]
        for name in names:
            topo.add_node(name, is_site=True)
        # Random spanning tree (random attachment) guarantees connectivity.
        for i in range(1, n_sites):
            j = rng.randrange(i)
            topo.add_link(names[i], names[j], bandwidth_mbps)
        # Extra shortcut edges.
        n_extra = int(extra_edge_fraction * n_sites)
        candidates = [
            (a, b) for a, b in itertools.combinations(names, 2)
            if not topo.graph.has_edge(a, b)
        ]
        rng.shuffle(candidates)
        for a, b in candidates[:n_extra]:
            topo.add_link(a, b, bandwidth_mbps)
        return topo

    def neighbors_of_site(self, site: str, max_hops: int = 2) -> List[str]:
        """Sites within ``max_hops`` links of ``site`` (excluding itself).

        This is the Dataset Scheduler's "list of known sites (we define this
        as neighbors)".  In the hierarchical paper topology, 2 hops reaches
        the sibling sites under the same regional center.
        """
        lengths = nx.single_source_shortest_path_length(
            self.graph, site, cutoff=max_hops)
        return [n for n, d in sorted(lengths.items())
                if n != site and self.is_site(n)]

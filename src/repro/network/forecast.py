"""Bandwidth observation and forecasting (Network Weather Service style).

The paper's information sources include "the Network Weather Service"
(ref [28]), which records achieved end-to-end bandwidth and forecasts
near-future performance with a family of simple predictors, dynamically
choosing whichever has been most accurate lately.  This module provides
that substrate:

* :class:`BandwidthHistory` — per site-pair observations (achieved MB/s
  of completed transfers), fed automatically from a
  :class:`~repro.network.transfer.TransferManager`.
* Predictors — :class:`LastValuePredictor`, :class:`MeanPredictor`,
  :class:`MedianPredictor`.
* :class:`NWSForecaster` — the NWS trick: track each predictor's recent
  absolute error per pair and forecast with the current best.

The :class:`~repro.scheduling.adaptive.AdaptiveExternalScheduler` accepts
a forecaster to replace its static congestion factor with measured
bandwidth.
"""

from __future__ import annotations

import abc
from collections import deque
from statistics import median
from typing import Deque, Dict, List, Optional, Tuple

from repro.network.transfer import Transfer, TransferManager

PairKey = Tuple[str, str]


class Predictor(abc.ABC):
    """Forecasts the next value of a series from its history."""

    name: str = "abstract"

    @abc.abstractmethod
    def predict(self, values: "Deque[float]") -> float:
        """Forecast from a non-empty history (newest value last)."""


class LastValuePredictor(Predictor):
    """Tomorrow looks like today."""

    name = "last"

    def predict(self, values: "Deque[float]") -> float:
        return values[-1]


class MeanPredictor(Predictor):
    """Sliding-window arithmetic mean."""

    name = "mean"

    def predict(self, values: "Deque[float]") -> float:
        return sum(values) / len(values)


class MedianPredictor(Predictor):
    """Sliding-window median (robust to transient congestion spikes)."""

    name = "median"

    def predict(self, values: "Deque[float]") -> float:
        return median(values)


class BandwidthHistory:
    """Per-(src, dst) achieved-bandwidth observations.

    Attach to a transfer manager and every completed wire transfer adds
    an observation of ``size / duration`` for its endpoint pair.
    """

    def __init__(self, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._series: Dict[PairKey, Deque[float]] = {}
        self.observations = 0

    def attach(self, transfers: TransferManager) -> None:
        """Subscribe to a transfer manager's completions."""
        transfers.observers.append(self.observe)

    def observe(self, transfer: Transfer) -> None:
        """Record one completed transfer (no-ops on local transfers)."""
        if not transfer.route or transfer.finished_at is None:
            return
        duration = transfer.duration
        if duration <= 0:
            return
        key = (transfer.src, transfer.dst)
        series = self._series.get(key)
        if series is None:
            series = deque(maxlen=self.window)
            self._series[key] = series
        series.append(transfer.size_mb / duration)
        self.observations += 1

    def series(self, src: str, dst: str) -> List[float]:
        """Observations for a pair, oldest first (empty if none)."""
        return list(self._series.get((src, dst), ()))

    def pairs(self) -> List[PairKey]:
        """All observed pairs."""
        return sorted(self._series)


class NWSForecaster:
    """Forecast achieved bandwidth with the recently-best predictor.

    For each pair, every stored observation is first *predicted* from the
    history before it, and each predictor's absolute error is accumulated
    (exponentially decayed); :meth:`forecast` then answers with the
    lowest-error predictor's output.
    """

    def __init__(self, history: BandwidthHistory,
                 decay: float = 0.9) -> None:
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.history = history
        self.decay = decay
        self.predictors: List[Predictor] = [
            LastValuePredictor(), MeanPredictor(), MedianPredictor()]

    def _errors(self, values: List[float]) -> List[float]:
        errors = [0.0] * len(self.predictors)
        running: Deque[float] = deque(maxlen=self.history.window)
        for value in values:
            if running:
                for i, predictor in enumerate(self.predictors):
                    err = abs(predictor.predict(running) - value)
                    errors[i] = errors[i] * self.decay + err
            running.append(value)
        return errors

    def best_predictor(self, src: str, dst: str) -> Optional[Predictor]:
        """The lowest-recent-error predictor for a pair (None if <2 obs)."""
        values = self.history.series(src, dst)
        if len(values) < 2:
            return None
        errors = self._errors(values)
        index = min(range(len(errors)), key=errors.__getitem__)
        return self.predictors[index]

    def forecast(self, src: str, dst: str) -> Optional[float]:
        """Predicted achieved MB/s for the pair (None if insufficient
        history — callers fall back to nominal link capacity)."""
        values = self.history.series(src, dst)
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        running = deque(values, maxlen=self.history.window)
        predictor = self.best_predictor(src, dst)
        assert predictor is not None
        return max(predictor.predict(running), 1e-9)

"""Wide-area data transfers under link contention.

The :class:`TransferManager` executes every data movement in the grid (job
input fetches *and* asynchronous replications — both compete for the same
links, which is essential to the paper's comparison).  Whenever a transfer
starts or finishes, rates are recomputed for all transfers sharing links
with it.

Two rate allocators are provided:

* :class:`EqualShareAllocator` — the paper's model: each link divides its
  capacity equally among the transfers crossing it, and a transfer moves at
  the *minimum* share over its route (the bottleneck link).
* :class:`MaxMinFairAllocator` — classic progressive-filling max–min
  fairness, an extension used in ablation studies; it never allocates more
  total rate through a link than its capacity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.network.link import Link
from repro.network.routing import Router
from repro.network.topology import Topology
from repro.sim.core import Simulator
from repro.sim.events import Event

#: Remaining-MB tolerance below which a transfer counts as complete.
_EPSILON_MB = 1e-9
#: Guard against zero-length reschedule loops from float rounding.
_MIN_DT = 1e-9


class Transfer:
    """One in-flight (or finished) data movement.

    Attributes
    ----------
    done:
        Kernel event that succeeds (with the transfer itself as value) when
        the last byte arrives — or when the transfer is *aborted* by fault
        injection.  Waiters must check :attr:`failed` after the event fires;
        ``done`` never fails, so shared waiters (and ``AnyOf`` races) stay
        safe without defusing gymnastics.
    failed:
        ``True`` if the transfer was aborted before the last byte arrived.
    purpose:
        Free-form tag — the grid uses ``"job-fetch"`` and ``"replication"``
        so the metrics layer can attribute traffic.
    """

    __slots__ = (
        "src", "dst", "size_mb", "remaining_mb", "rate", "route",
        "done", "started_at", "finished_at", "purpose", "metadata",
        "weight", "failed", "_last_update",
    )

    def __init__(self, sim: Simulator, src: str, dst: str, size_mb: float,
                 route: List[Link], purpose: str,
                 metadata: Optional[Dict[str, Any]] = None,
                 weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"transfer weight must be positive, "
                             f"got {weight!r}")
        self.src = src
        self.dst = dst
        self.size_mb = float(size_mb)
        self.remaining_mb = float(size_mb)
        self.rate = 0.0
        self.route = route
        self.done = Event(sim)
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self.purpose = purpose
        self.metadata = metadata or {}
        #: Share weight: a transfer opened with N parallel streams
        #: (GridFTP-style) competes for link capacity as N unit flows.
        self.weight = float(weight)
        self.failed = False
        self._last_update = sim.now

    def __repr__(self) -> str:
        state = "done" if self.finished_at is not None else (
            f"{self.remaining_mb:.1f}MB left @ {self.rate:.2f}MB/s")
        return f"<Transfer {self.src}->{self.dst} {self.size_mb:.0f}MB {state}>"

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) duration; raises if unfinished."""
        if self.finished_at is None:
            raise ValueError("transfer has not finished")
        return self.finished_at - self.started_at


class EqualShareAllocator:
    """The paper's contention model.

    Each link gives each of its ``n`` transfers ``capacity / n``; a transfer
    runs at the minimum share along its route.  (The bottleneck share may be
    left unused on other links — this slight pessimism matches the paper's
    simple description.)

    Weighted transfers (GridFTP-style parallel streams) count as
    ``weight`` unit flows: a link carrying weights {1, 3} gives them 25%
    and 75% of its capacity.
    """

    name = "equal-share"

    def allocate(self, transfers: Sequence[Transfer]) -> Dict[Transfer, float]:
        rates: Dict[Transfer, float] = {}
        total_weight: Dict[Link, float] = {}
        for t in transfers:
            for link in t.route:
                total_weight[link] = total_weight.get(link, 0.0) + t.weight
        for t in transfers:
            rates[t] = min(
                link.capacity_mbps * t.weight / total_weight[link]
                for link in t.route)
        return rates


class MaxMinFairAllocator:
    """Progressive-filling max–min fairness (extension / ablation).

    Repeatedly raise all unfrozen transfer rates together until some link
    saturates; freeze the transfers on saturated links; continue with the
    residual capacity.
    """

    name = "max-min"

    def allocate(self, transfers: Sequence[Transfer]) -> Dict[Transfer, float]:
        rates: Dict[Transfer, float] = {t: 0.0 for t in transfers}
        if not transfers:
            return rates
        remaining_cap: Dict[Link, float] = {}
        active_on: Dict[Link, set] = {}
        for t in transfers:
            for link in t.route:
                remaining_cap.setdefault(link, link.capacity_mbps)
                active_on.setdefault(link, set()).add(t)
        unfrozen = set(transfers)
        while unfrozen:
            # Smallest per-unit-weight increment that saturates some link
            # (weights model parallel streams, as in EqualShareAllocator).
            increment = min(
                remaining_cap[link]
                / sum(t.weight for t in active_on[link] & unfrozen)
                for link in remaining_cap
                if active_on[link] & unfrozen
            )
            for t in unfrozen:
                rates[t] += increment * t.weight
            newly_frozen = set()
            for link in list(remaining_cap):
                users = active_on[link] & unfrozen
                if not users:
                    continue
                remaining_cap[link] -= increment * sum(
                    t.weight for t in users)
                if remaining_cap[link] <= 1e-12:
                    newly_frozen |= users
            if not newly_frozen:  # pragma: no cover - float safety valve
                break
            unfrozen -= newly_frozen
        return rates


class TransferManager:
    """Runs all transfers in the grid under a shared contention model.

    Parameters
    ----------
    sim:
        The simulator.
    topology:
        The network; routes are shortest paths over it.
    allocator:
        Rate allocator (defaults to the paper's equal-share model).
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 allocator: Optional[Any] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.router = Router(topology)
        self.allocator = allocator or EqualShareAllocator()
        self.active: List[Transfer] = []
        self.completed: List[Transfer] = []
        self._timer_token = 0
        #: Called with each transfer the moment it completes (used by the
        #: NWS-style bandwidth forecaster, tracing, ...).  Aborted
        #: transfers do NOT reach observers — a dropped connection carries
        #: no useful bandwidth sample.
        self.observers: List[Any] = []
        #: Called with each network transfer the moment it starts (used by
        #: the fault injector's sabotage hook).  Empty unless faults are on.
        self.on_start: List[Any] = []
        #: Called with each transfer killed by :meth:`abort`, before its
        #: ``done`` event fires (used by the health layer's circuit
        #: breakers as failure feedback).  Empty unless health is on.
        self.on_abort: List[Any] = []
        #: Transfers killed by :meth:`abort` (fault injection).
        self.n_aborted = 0
        #: Domain-event tracer (None = tracing off; one attribute check).
        self.tracer = None

    # -- public API ----------------------------------------------------------

    def start(self, src: str, dst: str, size_mb: float,
              purpose: str = "data",
              metadata: Optional[Dict[str, Any]] = None,
              weight: float = 1.0) -> Transfer:
        """Begin moving ``size_mb`` MB from ``src`` to ``dst``.

        Returns the :class:`Transfer`; wait on ``transfer.done`` for
        completion.  Local moves (``src == dst``) and empty transfers
        complete instantly at zero network cost.  ``weight`` models
        parallel streams: a weight-``k`` transfer competes as ``k`` unit
        flows when links are shared.
        """
        if size_mb < 0:
            raise ValueError(f"negative transfer size {size_mb!r}")
        route = self.router.route(src, dst)
        transfer = Transfer(self.sim, src, dst, size_mb, route,
                            purpose, metadata, weight=weight)
        if self.tracer is not None:
            self._trace_transfer("transfer.start", transfer)
        if not route or size_mb == 0:
            transfer.remaining_mb = 0.0
            transfer.finished_at = self.sim.now
            self.completed.append(transfer)
            for observer in self.observers:
                observer(transfer)
            if self.tracer is not None:
                self._trace_transfer("transfer.done", transfer, duration_s=0.0)
            transfer.done.succeed(transfer)
            return transfer
        for link in route:
            link.attach(transfer, self.sim.now)
        self.active.append(transfer)
        for hook in self.on_start:
            hook(transfer)
        self._rebalance()
        return transfer

    def abort(self, transfer: Transfer, reason: str = "") -> bool:
        """Kill an in-flight transfer (fault injection).

        The partial progress is credited to the links it crossed, the
        transfer is marked :attr:`~Transfer.failed`, and its ``done`` event
        *succeeds* — waiters are woken and must inspect ``failed``.
        Returns ``False`` if the transfer had already finished.
        """
        if transfer.finished_at is not None or transfer not in self.active:
            return False
        self._advance_progress()
        now = self.sim.now
        transfer.finished_at = now
        transfer.failed = True
        if reason:
            transfer.metadata.setdefault("abort_reason", reason)
        carried = transfer.size_mb - transfer.remaining_mb
        for link in transfer.route:
            link.detach(transfer, now, carried)
        self.active.remove(transfer)
        self.n_aborted += 1
        if self.tracer is not None:
            self._trace_transfer("transfer.abort", transfer,
                                 reason=reason or "aborted",
                                 carried_mb=carried)
        for hook in self.on_abort:
            hook(transfer)
        transfer.done.succeed(transfer)
        self._rebalance()
        return True

    def rebalance(self) -> None:
        """Recompute rates now (e.g. after a link capacity change)."""
        self._rebalance()

    def estimated_transfer_time(self, src: str, dst: str,
                                size_mb: float) -> float:
        """Uncontended lower bound on the transfer time (used by heuristic
        schedulers that need a cost estimate, not by the paper's four ES
        algorithms)."""
        route = self.router.route(src, dst)
        if not route or size_mb == 0:
            return 0.0
        bottleneck = min(link.capacity_mbps for link in route)
        return size_mb / bottleneck

    def base_transfer_time(self, src: str, dst: str, size_mb: float) -> float:
        """Uncontended time over *nominal* (undegraded) capacities.

        Fault-mode transfer timeouts are sized from this so that a
        degraded link reads as a stall instead of silently inflating the
        allowance.
        """
        route = self.router.route(src, dst)
        if not route or size_mb == 0:
            return 0.0
        bottleneck = min(link.base_capacity_mbps for link in route)
        return size_mb / bottleneck

    # -- internals -----------------------------------------------------------

    def _advance_progress(self) -> None:
        """Fold elapsed time into each active transfer's remaining bytes."""
        now = self.sim.now
        for t in self.active:
            dt = now - t._last_update
            if dt > 0:
                t.remaining_mb = max(0.0, t.remaining_mb - t.rate * dt)
            t._last_update = now

    def _rebalance(self) -> None:
        """Recompute all rates and re-arm the next-completion timer."""
        self._advance_progress()
        self._complete_finished()
        if not self.active:
            return
        rates = self.allocator.allocate(self.active)
        for t in self.active:
            t.rate = rates[t]
            if t.rate <= 0:  # pragma: no cover - allocators always give > 0
                raise RuntimeError(f"allocator assigned zero rate to {t!r}")
        next_dt = min(t.remaining_mb / t.rate for t in self.active)
        next_dt = max(next_dt, _MIN_DT)
        self._timer_token += 1
        token = self._timer_token
        timer = self.sim.timeout(next_dt)
        timer.callbacks.append(lambda _ev: self._on_timer(token))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a later rebalance
        self._rebalance()

    def _complete_finished(self) -> None:
        now = self.sim.now
        still_active: List[Transfer] = []
        for t in self.active:
            if t.remaining_mb <= _EPSILON_MB:
                t.remaining_mb = 0.0
                t.finished_at = now
                for link in t.route:
                    link.detach(t, now, t.size_mb)
                self.completed.append(t)
                for observer in self.observers:
                    observer(t)
                if self.tracer is not None:
                    self._trace_transfer("transfer.done", t,
                                         duration_s=t.duration)
                t.done.succeed(t)
            else:
                still_active.append(t)
        self.active = still_active

    def _trace_transfer(self, kind: str, transfer: Transfer,
                        **extra: Any) -> None:
        self.tracer.emit(
            self.sim.now, kind, src=transfer.src, dst=transfer.dst,
            size_mb=transfer.size_mb, purpose=transfer.purpose,
            dataset=transfer.metadata.get("dataset"), **extra)

    # -- statistics ----------------------------------------------------------

    @property
    def total_mb_moved(self) -> float:
        """MB moved by all *completed* transfers."""
        return sum(t.size_mb for t in self.completed)

    def mb_moved_by_purpose(self) -> Dict[str, float]:
        """Completed traffic broken down by purpose tag."""
        out: Dict[str, float] = {}
        for t in self.completed:
            out[t.purpose] = out.get(t.purpose, 0.0) + t.size_mb
        return out

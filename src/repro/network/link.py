"""A network link with capacity shared among concurrent transfers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.transfer import Transfer


class Link:
    """An undirected link between two topology nodes.

    Capacity is in MB/s (the paper's "connectivity bandwidth", Table 1:
    10 MB/s in scenario 1, 100 MB/s in scenario 2).  The link does not
    enforce a rate itself — the :class:`~repro.network.transfer
    .TransferManager`'s allocator divides capacity among the transfers
    currently crossing it.

    The link also keeps cumulative statistics used by the metrics layer:

    * ``bytes_carried`` — total MB that crossed the link.
    * ``busy_time`` — integral of "link has ≥1 active transfer" over time.
    * ``load_integral`` — integral of active-transfer count over time
      (average concurrency = load_integral / horizon).
    """

    __slots__ = (
        "a",
        "b",
        "capacity_mbps",
        "base_capacity_mbps",
        "active",
        "bytes_carried",
        "busy_time",
        "load_integral",
        "_last_change",
    )

    def __init__(self, a: str, b: str, capacity_mbps: float) -> None:
        if capacity_mbps <= 0:
            raise ValueError(
                f"link {a!r}-{b!r} capacity must be positive, "
                f"got {capacity_mbps!r}")
        self.a = a
        self.b = b
        self.capacity_mbps = float(capacity_mbps)
        #: Nominal (undegraded) capacity.  Fault injection mutates
        #: ``capacity_mbps`` only; timeouts and restores use this.
        self.base_capacity_mbps = float(capacity_mbps)
        self.active: Set["Transfer"] = set()
        self.bytes_carried = 0.0
        self.busy_time = 0.0
        self.load_integral = 0.0
        self._last_change = 0.0

    def __repr__(self) -> str:
        return (f"<Link {self.a}--{self.b} {self.capacity_mbps} MB/s, "
                f"{len(self.active)} active>")

    @property
    def endpoints(self) -> Tuple[str, str]:
        """The (unordered) pair of node names this link connects."""
        return (self.a, self.b)

    @property
    def concurrency(self) -> int:
        """Number of transfers currently crossing the link."""
        return len(self.active)

    def equal_share(self) -> float:
        """Bandwidth each active transfer would get under equal sharing."""
        n = len(self.active)
        return self.capacity_mbps if n == 0 else self.capacity_mbps / n

    # -- statistics bookkeeping (driven by the TransferManager) -------------

    def account(self, now: float) -> None:
        """Fold utilization statistics up to ``now``."""
        dt = now - self._last_change
        if dt > 0:
            n = len(self.active)
            if n > 0:
                self.busy_time += dt
            self.load_integral += dt * n
        self._last_change = now

    def attach(self, transfer: "Transfer", now: float) -> None:
        """Register a transfer as crossing this link."""
        self.account(now)
        self.active.add(transfer)

    def detach(self, transfer: "Transfer", now: float,
               carried_mb: float) -> None:
        """Unregister a transfer and credit the MB it carried."""
        self.account(now)
        self.active.discard(transfer)
        self.bytes_carried += carried_mb

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the link was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

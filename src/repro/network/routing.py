"""Shortest-path routing with a route cache.

Routes are static (the topology does not change during a run), so we
precompute/cache hop-count shortest paths.  A route is the list of
:class:`~repro.network.link.Link` objects a transfer crosses, in order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.network.link import Link
from repro.network.topology import Topology


class Router:
    """Computes and caches shortest routes over a :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[str, str], List[Link]] = {}

    def route(self, src: str, dst: str) -> List[Link]:
        """The links crossed going ``src`` → ``dst`` (empty if src == dst)."""
        if src == dst:
            return []
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            nodes = nx.shortest_path(self.topology.graph, src, dst)
        except nx.NetworkXNoPath:
            raise ValueError(f"no route from {src!r} to {dst!r}") from None
        except nx.NodeNotFound as exc:
            raise ValueError(str(exc)) from None
        links = [
            self.topology.link_between(a, b)
            for a, b in zip(nodes[:-1], nodes[1:])
        ]
        self._cache[key] = links
        # Undirected symmetric routes: cache the reverse too.
        self._cache[(dst, src)] = list(reversed(links))
        return links

    def hops(self, src: str, dst: str) -> int:
        """Number of links on the route."""
        return len(self.route(src, dst))

    def warm(self) -> None:
        """Precompute routes between all site pairs (optional)."""
        sites = self.topology.sites
        for i, a in enumerate(sites):
            for b in sites[i + 1:]:
                self.route(a, b)

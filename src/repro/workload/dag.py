"""DAG workloads: inter-job dependencies, shape wiring, and the driver.

The paper's workload is a bag of independent single-input jobs.  This
module adds the dependency axis the paper never explored: jobs carry
``depends_on`` edges (validated acyclic at submission), and a
:class:`DagDriver` releases them waiting → ready only once every parent
completed — with optional *bulk submission*, where each released batch is
placed group-at-a-time by input-set signature (in the spirit of DIANA's
bulk scheduling) instead of job-by-job.

Shape wiring (:func:`wire_shape`) turns a flat per-user job list into
classic DAG motifs:

* ``chain``      — ``a -> b -> c -> ...`` (strictly sequential);
* ``diamond``    — groups of 4: ``a -> {b, c} -> d``;
* ``fanout``     — groups of ``width + 2``: source -> ``width`` parallel
  tasks -> sink (fan-out/fan-in);
* ``mapreduce``  — groups of ``width + max(1, width // 2)``: every
  reduce depends on *all* ``width`` maps.

Leftover jobs that do not fill a final group are wired as a chain, so
every job participates and the structure is deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.grid.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.sim.core import Simulator
    from repro.sim.process import Process

#: Recognised DAG shapes ("none" = the paper's independent jobs).
DAG_SHAPES = ("none", "chain", "diamond", "fanout", "mapreduce")


def validate_dag(jobs: Sequence[Job]) -> List[int]:
    """Check ``depends_on`` edges over ``jobs``; returns a topo order.

    Raises ``ValueError`` for an unknown parent id, a self-dependency, or
    a dependency cycle (the error names the offending jobs).
    """
    by_id: Dict[int, Job] = {}
    for job in jobs:
        if job.job_id in by_id:
            raise ValueError(f"duplicate job id {job.job_id} in workload")
        by_id[job.job_id] = job
    indegree: Dict[int, int] = {}
    children: Dict[int, List[int]] = {jid: [] for jid in by_id}
    for job in jobs:
        deps = set(job.depends_on)
        if job.job_id in deps:
            raise ValueError(f"job {job.job_id} depends on itself")
        for parent in sorted(deps):
            if parent not in by_id:
                raise ValueError(
                    f"job {job.job_id} depends on unknown job {parent}")
            children[parent].append(job.job_id)
        indegree[job.job_id] = len(deps)
    # Kahn's algorithm; the seed queue and every child list are sorted,
    # so the returned topo order depends only on the DAG's structure,
    # never on the input permutation.
    for lst in children.values():
        lst.sort()
    order: List[int] = []
    queue = deque(sorted(jid for jid, deg in indegree.items() if deg == 0))
    while queue:
        jid = queue.popleft()
        order.append(jid)
        for child in children[jid]:
            indegree[child] -= 1
            if indegree[child] == 0:
                queue.append(child)
    if len(order) != len(by_id):
        stuck = sorted(jid for jid, deg in indegree.items() if deg > 0)
        raise ValueError(
            f"dependency cycle among jobs {stuck}: no valid submission "
            "order exists")
    return order


def wire_shape(jobs: Sequence[Job], shape: str, width: int = 3) -> None:
    """Wire ``depends_on`` edges over ``jobs`` (in place) per ``shape``.

    Jobs must be in ascending id order (the generator's order); every
    edge points at an earlier job, so the result is acyclic by
    construction.
    """
    if shape not in DAG_SHAPES:
        raise ValueError(
            f"unknown DAG shape {shape!r}; expected one of {DAG_SHAPES}")
    if width < 1:
        raise ValueError(f"DAG width must be >= 1, got {width}")
    if shape == "none":
        return
    if shape == "chain":
        group = len(jobs)
    elif shape == "diamond":
        group = 4
    elif shape == "fanout":
        group = width + 2
    else:  # mapreduce
        group = width + max(1, width // 2)
    index = 0
    while index < len(jobs):
        members = jobs[index:index + group]
        if shape != "chain" and len(members) == group:
            _wire_group(members, shape, width)
        else:
            # The final partial group (or the whole list, for chains)
            # runs strictly sequentially.
            for prev, job in zip(members, members[1:]):
                job.depends_on = [prev.job_id]
        index += group


def _wire_group(members: Sequence[Job], shape: str, width: int) -> None:
    if shape == "diamond":
        a, b, c, d = members
        b.depends_on = [a.job_id]
        c.depends_on = [a.job_id]
        d.depends_on = [b.job_id, c.job_id]
    elif shape == "fanout":
        source, middle, sink = members[0], members[1:-1], members[-1]
        for job in middle:
            job.depends_on = [source.job_id]
        sink.depends_on = [job.job_id for job in middle]
    else:  # mapreduce
        maps, reduces = members[:width], members[width:]
        map_ids = [job.job_id for job in maps]
        for job in reduces:
            job.depends_on = list(map_ids)


class DagDriver:
    """Releases a DAG workload into a grid as dependencies resolve.

    Every job is registered WAITING with the grid's transition engine up
    front (so conservation counts cover unreleased jobs), then submitted
    in ascending id order the moment its last parent completes.  A parent
    that ends badly (failed, shed, expired) cascades: every not-yet-
    released descendant is abandoned through
    :meth:`~repro.grid.grid.DataGrid.abandon` with a reason naming the
    dependency, so no job is ever silently dropped.

    With ``bulk=True`` each released batch goes through
    :meth:`~repro.grid.grid.DataGrid.submit_bulk` (one placement decision
    per input-set group) instead of per-job submission.
    """

    def __init__(self, sim: "Simulator", grid: "DataGrid",
                 jobs: Sequence[Job], bulk: bool = False) -> None:
        self.sim = sim
        self.grid = grid
        self.jobs = sorted(jobs, key=lambda job: job.job_id)
        validate_dag(self.jobs)
        self.bulk = bulk
        self.process: Optional["Process"] = None
        #: Release batches submitted (1 for a dependency-free workload).
        self.batches_submitted = 0
        #: Jobs abandoned because a dependency ended badly.
        self.jobs_abandoned = 0

    def start(self) -> "Process":
        """Begin driving; the returned process completes when every job
        settled (done, failed, shed, expired, or abandoned)."""
        self.process = self.sim.process(self._run(), name="dag-driver")
        return self.process

    def _run(self):
        by_id = {job.job_id: job for job in self.jobs}
        children: Dict[int, List[int]] = {jid: [] for jid in by_id}
        indegree: Dict[int, int] = {}
        for job in self.jobs:
            deps = set(job.depends_on)
            indegree[job.job_id] = len(deps)
            for parent in sorted(deps):
                children[parent].append(job.job_id)
        for job in self.jobs:
            self.grid.lifecycle.register(job)
        waiting = {jid for jid, deg in indegree.items() if deg > 0}
        ready = sorted(jid for jid, deg in indegree.items() if deg == 0)
        running: Dict[int, "Process"] = {}
        settled = 0
        while ready or running:
            if ready:
                batch = [by_id[jid] for jid in sorted(ready)]
                ready = []
                if self.bulk:
                    procs = self.grid.submit_bulk(batch)
                else:
                    procs = [self.grid.submit(job) for job in batch]
                self.batches_submitted += 1
                for job, proc in zip(batch, procs):
                    running[job.job_id] = proc
            yield self.sim.any_of(list(running.values()))
            for jid in list(running):
                if not running[jid].processed:
                    continue
                del running[jid]
                settled += 1
                job = by_id[jid]
                if job.state is JobState.DONE:
                    for child in children[jid]:
                        indegree[child] -= 1
                        if indegree[child] == 0 and child in waiting:
                            waiting.discard(child)
                            ready.append(child)
                else:
                    settled += self._cascade(jid, job, by_id, children,
                                             waiting)
        return settled

    def _cascade(self, parent_id: int, parent: Job,
                 by_id: Dict[int, Job],
                 children: Dict[int, List[int]],
                 waiting: set) -> int:
        """Abandon every unreleased descendant of a badly-ended parent."""
        abandoned = 0
        stack = list(children[parent_id])
        while stack:
            jid = stack.pop()
            if jid not in waiting:
                continue  # already released, abandoned, or shared-parent
            waiting.discard(jid)
            self.grid.abandon(
                by_id[jid],
                f"dependency job {parent_id} ended "
                f"{parent.state.value}")
            self.jobs_abandoned += 1
            abandoned += 1
            stack.extend(children[jid])
        return abandoned

"""Workload trace export/import.

A :class:`~repro.workload.generator.Workload` serializes to a plain JSON
document so the exact same job sequence can be replayed across algorithm
variants, archived alongside results, or inspected by hand.  The format is
versioned; loading rejects unknown versions loudly rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.grid.files import Dataset, DatasetCollection
from repro.grid.job import Job
from repro.workload.generator import Workload

FORMAT_VERSION = 1


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Convert a workload to a JSON-serializable dict."""
    return {
        "version": FORMAT_VERSION,
        "datasets": [
            {"name": ds.name, "size_mb": ds.size_mb}
            for ds in workload.datasets
        ],
        "initial_placement": dict(workload.initial_placement),
        "user_sites": dict(workload.user_sites),
        "user_jobs": {
            user: [_job_to_dict(job) for job in jobs]
            for user, jobs in workload.user_jobs.items()
        },
    }


def _job_to_dict(job: Job) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "job_id": job.job_id,
        "input_files": list(job.input_files),
        "runtime_s": job.runtime_s,
        "output_size_mb": job.output_size_mb,
    }
    # Only DAG workloads carry dependencies; plain traces stay byte-stable.
    if job.depends_on:
        entry["depends_on"] = list(job.depends_on)
    return entry


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported workload trace version {version!r} "
            f"(expected {FORMAT_VERSION})")
    datasets = DatasetCollection(
        Dataset(d["name"], d["size_mb"]) for d in data["datasets"])
    user_sites = dict(data["user_sites"])
    user_jobs = {}
    for user, jobs in data["user_jobs"].items():
        site = user_sites[user]
        user_jobs[user] = [
            Job(
                job_id=j["job_id"],
                user=user,
                origin_site=site,
                input_files=list(j["input_files"]),
                runtime_s=j["runtime_s"],
                output_size_mb=j.get("output_size_mb", 0.0),
                depends_on=list(j.get("depends_on", [])),
            )
            for j in jobs
        ]
    return Workload(
        datasets=datasets,
        initial_placement=dict(data["initial_placement"]),
        user_sites=user_sites,
        user_jobs=user_jobs,
    )


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload trace as JSON."""
    Path(path).write_text(json.dumps(workload_to_dict(workload), indent=1))


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload trace written by :func:`save_workload`."""
    return workload_from_dict(json.loads(Path(path).read_text()))

"""Dataset popularity models.

The paper (Figure 2): "The jobs (i.e., input file names) needed by a
particular user are generated randomly according to a geometric
distribution, with the goal of modeling situations in which a community
focuses on some datasets more than others.  Note that we do not attempt to
model changes in dataset popularity over time."

Rank 0 is the most popular dataset.  Which *concrete* dataset holds each
rank is decided by the workload generator (identity mapping by default);
the popularity model only draws ranks.
"""

from __future__ import annotations

import abc
import math
import random
from typing import List


class PopularityModel(abc.ABC):
    """Draws dataset *ranks* in ``[0, n_items)``; rank 0 is hottest."""

    name: str = "abstract"

    def __init__(self, n_items: int) -> None:
        if n_items < 1:
            raise ValueError(f"need at least one item, got {n_items}")
        self.n_items = n_items

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""

    @abc.abstractmethod
    def pmf(self) -> List[float]:
        """Probability of each rank (sums to 1)."""

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent ranks."""
        if count < 0:
            raise ValueError(f"negative count {count}")
        return [self.sample(rng) for _ in range(count)]

    def expected_counts(self, total_requests: int) -> List[float]:
        """Expected request count per rank for a given workload size
        (the theoretical curve behind Figure 2)."""
        return [p * total_requests for p in self.pmf()]


class GeometricPopularity(PopularityModel):
    """Truncated geometric distribution — the paper's model.

    ``P(rank = k) ∝ (1 - p)^k`` for ``k`` in ``[0, n_items)``.  Sampling is
    by inverse CDF of the truncated distribution, so every draw is O(1)
    and always in range.

    Parameters
    ----------
    n_items:
        Number of datasets.
    p:
        Geometric success probability; larger values concentrate requests
        on fewer datasets.  The paper does not publish its value; 0.02 over
        200 datasets gives a Figure-2-like spread (the hottest dataset gets
        roughly 2% of all requests, the coldest almost none).
    """

    name = "geometric"

    def __init__(self, n_items: int, p: float = 0.02) -> None:
        super().__init__(n_items)
        if not 0 < p < 1:
            raise ValueError(f"p must be in (0, 1), got {p!r}")
        self.p = p
        self._tail = (1 - p) ** n_items  # mass beyond the truncation point

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        # Invert the truncated-geometric CDF:  F(k) = (1 - (1-p)^(k+1)) / (1 - tail)
        k = int(math.floor(
            math.log(1 - u * (1 - self._tail)) / math.log(1 - self.p)))
        return min(k, self.n_items - 1)

    def pmf(self) -> List[float]:
        norm = 1 - self._tail
        return [
            (1 - self.p) ** k * self.p / norm for k in range(self.n_items)
        ]


class ZipfPopularity(PopularityModel):
    """Zipf(``alpha``) popularity (extension; common in trace studies)."""

    name = "zipf"

    def __init__(self, n_items: int, alpha: float = 1.0) -> None:
        super().__init__(n_items)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        self.alpha = alpha
        weights = [1.0 / (k + 1) ** alpha for k in range(n_items)]
        total = sum(weights)
        self._pmf = [w / total for w in weights]
        self._cdf: List[float] = []
        acc = 0.0
        for p in self._pmf:
            acc += p
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard float drift

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        lo, hi = 0, self.n_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def pmf(self) -> List[float]:
        return list(self._pmf)


class UniformPopularity(PopularityModel):
    """Every dataset equally likely (extension; no hotspots)."""

    name = "uniform"

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n_items)

    def pmf(self) -> List[float]:
        return [1.0 / self.n_items] * self.n_items


def make_popularity_model(name: str, n_items: int, **kwargs) -> PopularityModel:
    """Factory by name: ``geometric`` (paper), ``zipf``, ``uniform``."""
    models = {
        "geometric": GeometricPopularity,
        "zipf": ZipfPopularity,
        "uniform": UniformPopularity,
    }
    try:
        cls = models[name]
    except KeyError:
        raise ValueError(
            f"unknown popularity model {name!r}; known: {sorted(models)}"
        ) from None
    return cls(n_items, **kwargs)

"""Synthetic workload generation (paper §5.1, Figure 2).

"In the absence of real traces from real data grids, we model the amount
of processing power needed per unit of data, and the size of input and
output datasets, on the expected values of CMS experiments, but otherwise
generate synthetic data distributions and workloads."

* :mod:`~repro.workload.popularity` — dataset-popularity models: the
  paper's geometric distribution plus Zipf/uniform extensions.
* :mod:`~repro.workload.generator` — builds datasets, the initial replica
  placement, and every user's job sequence.
* :mod:`~repro.workload.traces` — JSON export/import so a workload can be
  replayed across algorithm variants or shared.
"""

from repro.workload.generator import Workload, WorkloadGenerator
from repro.workload.popularity import (
    GeometricPopularity,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
    make_popularity_model,
)
from repro.workload.traces import load_workload, save_workload

__all__ = [
    "GeometricPopularity",
    "PopularityModel",
    "UniformPopularity",
    "Workload",
    "WorkloadGenerator",
    "ZipfPopularity",
    "load_workload",
    "make_popularity_model",
    "save_workload",
]

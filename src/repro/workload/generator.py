"""Workload generation: datasets, initial placement, users, and job lists.

Reproduces §5.1 of the paper:

* dataset sizes uniform in [500 MB, 2 GB], one initial replica each,
  placed uniformly at random;
* users mapped evenly across sites;
* each job needs a single input file drawn from the geometric popularity
  distribution and runs for ``300 × (input size in GB)`` seconds;
* job output is ignored ("as job output is of negligible size as compared
  to input, we ignore output costs").

Extensions (off by default): multi-input jobs, alternative popularity
models, and DAG workloads (per-user ``depends_on`` chains/diamonds/
fan-outs/map-reduces wired by :mod:`repro.workload.dag`), all flagged
explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grid.files import Dataset, DatasetCollection
from repro.grid.job import Job
from repro.workload.popularity import GeometricPopularity, PopularityModel


@dataclass
class Workload:
    """A fully materialized workload, independent of any scheduler choice.

    The same Workload object can be fed to every algorithm combination,
    giving paired (common-random-numbers) comparisons.
    """

    datasets: DatasetCollection
    #: dataset name → site holding the initial (primary, pinned) replica.
    initial_placement: Dict[str, str]
    #: user name → home site.
    user_sites: Dict[str, str]
    #: user name → ordered job list.
    user_jobs: Dict[str, List[Job]]

    @property
    def n_jobs(self) -> int:
        """Total jobs across all users."""
        return sum(len(jobs) for jobs in self.user_jobs.values())

    @property
    def users(self) -> List[str]:
        """User names in creation order."""
        return list(self.user_jobs)

    def request_counts(self) -> Dict[str, int]:
        """How many jobs reference each dataset (the Figure 2 histogram)."""
        counts: Dict[str, int] = {name: 0 for name in self.datasets.names}
        for jobs in self.user_jobs.values():
            for job in jobs:
                for fname in job.input_files:
                    counts[fname] += 1
        return counts

    def fresh(self) -> "Workload":
        """A copy with brand-new Job objects (same ids/inputs/runtimes).

        Jobs are mutated by a run (state, timestamps), so replaying the
        same workload against another algorithm combination must start
        from fresh jobs.  Datasets and placements are immutable and shared.
        """
        return Workload(
            datasets=self.datasets,
            initial_placement=dict(self.initial_placement),
            user_sites=dict(self.user_sites),
            user_jobs={
                user: [
                    Job(
                        job_id=j.job_id,
                        user=j.user,
                        origin_site=j.origin_site,
                        input_files=list(j.input_files),
                        runtime_s=j.runtime_s,
                        output_size_mb=j.output_size_mb,
                        depends_on=list(j.depends_on),
                    )
                    for j in jobs
                ]
                for user, jobs in self.user_jobs.items()
            },
        )

    def total_input_mb(self) -> float:
        """Sum of input sizes over all jobs (an upper bound on fetch
        traffic if no request ever hit a local or cached replica)."""
        return sum(
            self.datasets.get(fname).size_mb
            for jobs in self.user_jobs.values()
            for job in jobs
            for fname in job.input_files
        )


class WorkloadGenerator:
    """Generates :class:`Workload` objects from paper-style parameters.

    Parameters
    ----------
    n_users, n_datasets, n_jobs:
        Table 1 scale knobs (paper: 120, 200, 6000).
    sites:
        Site names users/datasets are distributed over.
    rng:
        Source of all randomness (pass a dedicated stream).
    popularity:
        Rank distribution (default: the paper's geometric).
    compute_seconds_per_gb:
        The paper's 300 s per GB of input.
    min_size_mb, max_size_mb:
        Dataset size range (paper: 500–2000 MB).
    inputs_per_job:
        1 reproduces the paper; >1 enables the multi-input extension
        (inputs drawn without replacement from the popularity model).
    output_fraction:
        Job output size as a fraction of its input size.  0 reproduces
        the paper ("we ignore output costs"); positive values enable the
        output-modelling extension — outputs are written to the execution
        site's storage but never transferred.
    dag_shape, dag_width:
        ``dag_shape`` other than ``"none"`` wires each user's job list
        into dependency motifs (see :func:`repro.workload.dag.wire_shape`);
        ``dag_width`` sets the fan-out/map count for the shapes that have
        one.  Dependencies never cross users.
    """

    def __init__(
        self,
        n_users: int,
        n_datasets: int,
        n_jobs: int,
        sites: List[str],
        rng: random.Random,
        popularity: Optional[PopularityModel] = None,
        compute_seconds_per_gb: float = 300.0,
        min_size_mb: float = 500.0,
        max_size_mb: float = 2000.0,
        inputs_per_job: int = 1,
        output_fraction: float = 0.0,
        dag_shape: str = "none",
        dag_width: int = 3,
    ) -> None:
        from repro.workload.dag import DAG_SHAPES

        if dag_shape not in DAG_SHAPES:
            raise ValueError(
                f"unknown DAG shape {dag_shape!r}; expected one of "
                f"{DAG_SHAPES}")
        if dag_width < 1:
            raise ValueError(f"DAG width must be >= 1, got {dag_width}")
        if n_users < 1:
            raise ValueError(f"need >= 1 user, got {n_users}")
        if n_jobs < n_users:
            raise ValueError(
                f"{n_jobs} jobs cannot be split over {n_users} users "
                "(each user needs at least one)")
        if not sites:
            raise ValueError("no sites")
        if inputs_per_job < 1:
            raise ValueError(f"inputs_per_job must be >= 1")
        if inputs_per_job > n_datasets:
            raise ValueError(
                f"inputs_per_job={inputs_per_job} exceeds "
                f"n_datasets={n_datasets}")
        if compute_seconds_per_gb <= 0:
            raise ValueError("compute_seconds_per_gb must be positive")
        if output_fraction < 0:
            raise ValueError("output_fraction must be >= 0")
        self.n_users = n_users
        self.n_datasets = n_datasets
        self.n_jobs = n_jobs
        self.sites = list(sites)
        self.rng = rng
        self.popularity = popularity or GeometricPopularity(n_datasets)
        if self.popularity.n_items != n_datasets:
            raise ValueError(
                f"popularity model covers {self.popularity.n_items} items, "
                f"workload has {n_datasets} datasets")
        self.compute_seconds_per_gb = compute_seconds_per_gb
        self.min_size_mb = min_size_mb
        self.max_size_mb = max_size_mb
        self.inputs_per_job = inputs_per_job
        self.output_fraction = output_fraction
        self.dag_shape = dag_shape
        self.dag_width = dag_width

    def generate(self) -> Workload:
        """Materialize a workload (datasets, placement, users, jobs)."""
        datasets = DatasetCollection.uniform_random(
            self.n_datasets, self.rng,
            self.min_size_mb, self.max_size_mb)
        names = datasets.names

        placement = {
            name: self.rng.choice(self.sites) for name in names
        }

        # Users mapped evenly across sites, round-robin.
        user_sites: Dict[str, str] = {}
        for u in range(self.n_users):
            user_sites[f"user{u:03d}"] = self.sites[u % len(self.sites)]

        # Jobs split as evenly as possible (first users get the remainder).
        base, extra = divmod(self.n_jobs, self.n_users)
        user_jobs: Dict[str, List[Job]] = {}
        job_id = 0
        for u, (user, site) in enumerate(user_sites.items()):
            count = base + (1 if u < extra else 0)
            jobs: List[Job] = []
            for _ in range(count):
                inputs = self._draw_inputs(names)
                input_mb = sum(datasets.get(f).size_mb for f in inputs)
                runtime = self.compute_seconds_per_gb * input_mb / 1000.0
                jobs.append(Job(
                    job_id=job_id,
                    user=user,
                    origin_site=site,
                    input_files=inputs,
                    runtime_s=runtime,
                    output_size_mb=self.output_fraction * input_mb,
                ))
                job_id += 1
            user_jobs[user] = jobs

        if self.dag_shape != "none":
            from repro.workload.dag import wire_shape

            for jobs in user_jobs.values():
                wire_shape(jobs, self.dag_shape, self.dag_width)

        return Workload(
            datasets=datasets,
            initial_placement=placement,
            user_sites=user_sites,
            user_jobs=user_jobs,
        )

    def _draw_inputs(self, names: List[str]) -> List[str]:
        if self.inputs_per_job == 1:
            return [names[self.popularity.sample(self.rng)]]
        picked: List[str] = []
        seen = set()
        while len(picked) < self.inputs_per_job:
            rank = self.popularity.sample(self.rng)
            if rank not in seen:
                seen.add(rank)
                picked.append(names[rank])
        return picked

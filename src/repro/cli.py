"""Command-line interface.

Everything the library can do, driveable from a shell::

    python -m repro table1
    python -m repro run --es JobDataPresent --ds DataRandom --scale 0.25
    python -m repro matrix --seeds 0 1 2 -j 4 --cache
    python -m repro figure 3a
    python -m repro workload --out trace.json --scale 0.1

``-j/--jobs`` fans the independent runs of matrix/figure/sweep commands
out over worker processes; results are identical at any worker count.

All commands accept the configuration overrides listed under
``python -m repro run --help``; defaults are the paper's Table 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import DEFAULT_CACHE_DIR
from repro.experiments.paper import (
    reproduce_figure2,
    reproduce_figure3_and_4,
    reproduce_figure5,
    table1_parameters,
)
from repro.experiments.runner import make_workload, run_matrix, run_single
from repro.metrics.report import format_matrix, format_run
from repro.scheduling.registry import ALL_DS, ALL_ES, ALL_LS
from repro.workload.traces import save_workload


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "configuration overrides (defaults = paper Table 1)")
    group.add_argument("--scale", type=float, default=1.0,
                       help="scale users/sites/datasets/jobs together "
                            "(default 1.0 = paper scale)")
    group.add_argument("--bandwidth", type=float, default=None,
                       metavar="MBPS", help="link bandwidth in MB/s")
    group.add_argument("--n-jobs", type=int, default=None,
                       help="total number of jobs in the workload")
    group.add_argument("--sites", type=int, default=None,
                       help="number of sites")
    group.add_argument("--users", type=int, default=None,
                       help="number of users")
    group.add_argument("--datasets", type=int, default=None,
                       help="number of datasets")
    group.add_argument("--storage-gb", type=float, default=None,
                       help="per-site storage in GB")
    group.add_argument("--topology", default=None,
                       choices=["hierarchical", "star", "ring", "random"])
    group.add_argument("--geometric-p", type=float, default=None,
                       help="geometric popularity skew")
    group.add_argument("--popularity", default=None,
                       choices=["geometric", "zipf", "uniform"])
    group.add_argument("--inputs-per-job", type=int, default=None)
    group.add_argument("--output-fraction", type=float, default=None,
                       help="output size as a fraction of input size")
    group.add_argument("--info-refresh", type=float, default=None,
                       metavar="SECONDS",
                       help="information-service staleness (0 = live)")
    group.add_argument("--catalog-delay", type=float, default=None,
                       metavar="SECONDS",
                       help="replica-catalog propagation delay "
                            "(0 = live catalog)")
    group.add_argument("--info-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="serve last-known loads for stale-marked "
                            "sites up to this long (0 = off)")
    group.add_argument("--watchdog", default=None, choices=["on", "off"],
                       help="runtime invariant watchdog (read-only "
                            "checks; default off)")
    group.add_argument("--allocator", default=None,
                       choices=["equal-share", "max-min"])
    group.add_argument("--seed", type=int, default=0)
    faults = parser.add_argument_group(
        "fault injection (default: no faults; any of these enables the "
        "repro.faults layer — runs stay seed-reproducible)")
    faults.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="JSON fault plan (see FaultPlan.save)")
    faults.add_argument("--site-mtbf", type=float, default=None,
                        metavar="SECONDS",
                        help="mean time between site failures "
                             "(exponential; 0 = never)")
    faults.add_argument("--site-mttr", type=float, default=None,
                        metavar="SECONDS",
                        help="mean site repair time (default 1800)")
    faults.add_argument("--link-drop-rate", type=float, default=None,
                        metavar="PROB",
                        help="probability that any individual transfer is "
                             "dropped mid-flight")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="seed for the stochastic fault stream "
                             "(default: the run seed)")
    faults.add_argument("--partition", action="append", default=None,
                        metavar="SITES@START:END",
                        help="network partition window, e.g. "
                             "site00,site01@1800:3600 (end may be 'inf'; "
                             "repeatable)")
    faults.add_argument("--outage-group", action="append", default=None,
                        metavar="SITES@START:END",
                        help="rack-correlated outage: the listed sites "
                             "fail and recover together (repeatable)")
    faults.add_argument("--flap-sites", default=None, metavar="SITES",
                        help="comma-separated sites that flap on their "
                             "own fast MTBF/MTTR loop")
    faults.add_argument("--flap-mtbf", type=float, default=None,
                        metavar="SECONDS",
                        help="mean up-time between flaps")
    faults.add_argument("--flap-mttr", type=float, default=None,
                        metavar="SECONDS",
                        help="mean flap outage duration (default 60)")
    faults.add_argument("--corrupt-replica", action="append", default=None,
                        metavar="SITE:DATASET@TIME",
                        help="silently corrupt one stored copy at the "
                             "given time, e.g. site00:d3@1800 "
                             "(repeatable)")
    faults.add_argument("--lose-replica", action="append", default=None,
                        metavar="SITE:DATASET@TIME",
                        help="destroy one stored copy outright at the "
                             "given time (repeatable)")
    faults.add_argument("--corruption-mtbf", type=float, default=None,
                        metavar="SECONDS",
                        help="mean time between silent bit-rot events "
                             "per site (0 = never)")
    faults.add_argument("--corruption-sites", default=None, metavar="SITES",
                        help="comma-separated sites subject to bit-rot "
                             "(default: all sites)")
    overload = parser.add_argument_group(
        "overload protection (default: all off — unbounded queues, no "
        "deadlines, no reservations; the paper's model)")
    overload.add_argument("--queue-capacity", type=int, default=None,
                          metavar="JOBS",
                          help="per-site waiting-job bound (0 = unbounded); "
                               "dispatches onto a full queue deflect, then "
                               "shed")
    overload.add_argument("--deflect-budget", type=int, default=None,
                          metavar="N",
                          help="deflections tolerated per dispatch before "
                               "a job is shed (default 1)")
    overload.add_argument("--job-deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="queue-wait deadline per job (0 = none); "
                               "expired jobs leave the queue counted, "
                               "never run")
    overload.add_argument("--aging-factor", type=float, default=None,
                          metavar="RATE",
                          help="priority-aging rate for queue-reordering "
                               "local schedulers (0 = off)")
    overload.add_argument("--degraded-es", default=None, metavar="ES",
                          help="External Scheduler used for deflection "
                               "targets (default: least-loaded scan)")
    overload.add_argument("--storage-reservations", default=None,
                          choices=["on", "off"],
                          help="route transfers through the storage "
                               "reservation ledger (no overcommit)")
    overload.add_argument("--arrival-rate", type=float, default=None,
                          metavar="JOBS_PER_S",
                          help="open-loop Poisson arrival rate replacing "
                               "the closed-loop users (0 = closed loop)")
    dag = parser.add_argument_group(
        "DAG workloads (default: none — the paper's independent jobs)")
    dag.add_argument("--dag-shape", default=None,
                     choices=["none", "chain", "diamond", "fanout",
                              "mapreduce"],
                     help="wire each user's jobs into dependency motifs; "
                          "jobs are released as their parents complete")
    dag.add_argument("--dag-width", type=int, default=None, metavar="N",
                     help="fan-out / map count for shapes that have one "
                          "(default 3)")
    dag.add_argument("--bulk", default=None, choices=["on", "off"],
                     help="place each released batch group-at-a-time by "
                          "input-set signature (needs a DAG shape)")
    health = parser.add_argument_group(
        "failure detection (default: all off — no heartbeats, no "
        "breakers, no speculation; the paper's oracle model)")
    health.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="heartbeat interval; > 0 installs the "
                             "observed failure detector (0 = off)")
    health.add_argument("--heartbeat-jitter", type=float, default=None,
                        metavar="FRACTION",
                        help="uniform jitter fraction on heartbeat "
                             "spacing, in [0, 1)")
    health.add_argument("--phi-threshold", type=float, default=None,
                        metavar="PHI",
                        help="suspect a site when the silence exceeds "
                             "this multiple of its mean heartbeat "
                             "spacing (default 3)")
    health.add_argument("--probe-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="base delay between recovery probes of a "
                             "tripped site (default 30)")
    health.add_argument("--observed-only", default=None,
                        choices=["on", "off"],
                        help="cut the oracle channel: schedulers learn "
                             "of failures only through heartbeats and "
                             "dispatch errors")
    health.add_argument("--speculate-quantile", type=float, default=None,
                        metavar="Q",
                        help="straggler quantile in [0, 1); > 0 enables "
                             "speculative backup execution (0 = off)")
    health.add_argument("--speculate-multiplier", type=float, default=None,
                        metavar="X",
                        help="a job is a straggler once it runs this "
                             "multiple of the quantile duration "
                             "(default 2)")
    durability = parser.add_argument_group(
        "data durability (default: all off — no checksums, no scrubbing, "
        "single unrepaired primaries; the paper's model)")
    durability.add_argument("--replication-factor", type=int, default=None,
                            metavar="N",
                            help="target live replicas per dataset "
                                 "(> 1 needs --repair on; default 1)")
    durability.add_argument("--repair", default=None, choices=["on", "off"],
                            help="re-replicate datasets that fall below "
                                 "the target factor")
    durability.add_argument("--scrub-interval", type=float, default=None,
                            metavar="SECONDS",
                            help="background checksum-scrubber period "
                                 "(0 = detect on access only)")
    durability.add_argument("--repair-placement", default=None,
                            choices=["closest", "forecast"],
                            help="repair source/destination policy "
                                 "(default closest)")


def _parse_window_spec(spec: str, flag: str):
    """Parse a SITES@START:END spec into (sites, start_s, end_s)."""
    sites_part, sep, window = spec.partition("@")
    start_part, sep2, end_part = window.partition(":")
    sites = tuple(s for s in sites_part.split(",") if s)
    if not sep or not sep2 or not sites:
        raise SystemExit(
            f"bad {flag} spec {spec!r}; expected SITES@START:END like "
            f"site00,site01@1800:3600")
    end = (float("inf") if end_part.lower() in ("inf", "permanent")
           else float(end_part))
    return sites, float(start_part), end


def _parse_replica_spec(spec: str, flag: str):
    """Parse a SITE:DATASET@TIME spec into (site, dataset, time_s)."""
    target, sep, time_part = spec.partition("@")
    site, sep2, dataset = target.partition(":")
    if not sep or not sep2 or not site or not dataset:
        raise SystemExit(
            f"bad {flag} spec {spec!r}; expected SITE:DATASET@TIME like "
            f"site00:d3@1800")
    return site, dataset, float(time_part)


def _build_fault_plan(args: argparse.Namespace):
    """Compose the FaultPlan from --fault-plan plus scalar overrides."""
    from repro.faults.plan import (
        FaultPlan,
        NetworkPartition,
        OutageGroup,
        ReplicaCorruption,
        ReplicaLoss,
    )

    relevant = (args.fault_plan, args.site_mtbf, args.site_mttr,
                args.link_drop_rate, args.fault_seed, args.partition,
                args.outage_group, args.flap_sites, args.flap_mtbf,
                args.flap_mttr, args.corrupt_replica, args.lose_replica,
                args.corruption_mtbf, args.corruption_sites)
    if all(value is None for value in relevant):
        return None
    plan = (FaultPlan.load(args.fault_plan)
            if args.fault_plan is not None else FaultPlan.none())
    overrides = {}
    if args.site_mtbf is not None:
        overrides["site_mtbf_s"] = args.site_mtbf
    if args.site_mttr is not None:
        overrides["site_mttr_s"] = args.site_mttr
    if args.link_drop_rate is not None:
        overrides["transfer_fail_prob"] = args.link_drop_rate
    if args.fault_seed is not None:
        overrides["seed"] = args.fault_seed
    if args.partition is not None:
        extra = []
        for spec in args.partition:
            sites, start, end = _parse_window_spec(spec, "--partition")
            extra.append(
                NetworkPartition(sites=sites, start_s=start, end_s=end))
        overrides["partitions"] = plan.partitions + tuple(extra)
    if args.outage_group is not None:
        extra = []
        for spec in args.outage_group:
            sites, start, end = _parse_window_spec(spec, "--outage-group")
            extra.append(OutageGroup(sites=sites, start_s=start, end_s=end))
        overrides["outage_groups"] = plan.outage_groups + tuple(extra)
    if args.flap_sites is not None:
        overrides["flap_sites"] = tuple(
            s for s in args.flap_sites.split(",") if s)
    if args.flap_mtbf is not None:
        overrides["flap_mtbf_s"] = args.flap_mtbf
    if args.flap_mttr is not None:
        overrides["flap_mttr_s"] = args.flap_mttr
    if args.corrupt_replica is not None:
        extra = []
        for spec in args.corrupt_replica:
            site, dataset, time = _parse_replica_spec(
                spec, "--corrupt-replica")
            extra.append(ReplicaCorruption(site=site, dataset=dataset,
                                           time_s=time))
        overrides["replica_corruptions"] = (plan.replica_corruptions
                                            + tuple(extra))
    if args.lose_replica is not None:
        extra = []
        for spec in args.lose_replica:
            site, dataset, time = _parse_replica_spec(spec, "--lose-replica")
            extra.append(ReplicaLoss(site=site, dataset=dataset,
                                     time_s=time))
        overrides["replica_losses"] = plan.replica_losses + tuple(extra)
    if args.corruption_mtbf is not None:
        overrides["corruption_mtbf_s"] = args.corruption_mtbf
    if args.corruption_sites is not None:
        overrides["corruption_sites"] = tuple(
            s for s in args.corruption_sites.split(",") if s)
    if overrides:
        plan = plan.with_(**overrides)
    return plan


def _build_config(args: argparse.Namespace) -> SimulationConfig:
    config = SimulationConfig.paper(seed=args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    fault_plan = _build_fault_plan(args)
    if fault_plan is not None:
        config = config.with_(fault_plan=fault_plan)
    overrides = {}
    mapping = {
        "bandwidth": "bandwidth_mbps",
        "n_jobs": "n_jobs",
        "sites": "n_sites",
        "users": "n_users",
        "datasets": "n_datasets",
        "topology": "topology",
        "geometric_p": "geometric_p",
        "popularity": "popularity_model",
        "inputs_per_job": "inputs_per_job",
        "output_fraction": "output_fraction",
        "info_refresh": "info_refresh_interval_s",
        "catalog_delay": "catalog_delay_s",
        "info_timeout": "info_timeout_s",
        "allocator": "allocator",
        "queue_capacity": "queue_capacity",
        "deflect_budget": "deflect_budget",
        "job_deadline": "job_deadline_s",
        "aging_factor": "aging_factor",
        "degraded_es": "degraded_es",
        "arrival_rate": "arrival_rate_per_s",
        "dag_shape": "dag_shape",
        "dag_width": "dag_width",
        "heartbeat": "health_heartbeat_s",
        "heartbeat_jitter": "health_heartbeat_jitter",
        "phi_threshold": "health_phi_threshold",
        "probe_interval": "health_probe_interval_s",
        "speculate_quantile": "speculate_quantile",
        "speculate_multiplier": "speculate_multiplier",
        "replication_factor": "replication_factor",
        "scrub_interval": "scrub_interval_s",
        "repair_placement": "repair_placement",
    }
    for arg_name, field in mapping.items():
        value = getattr(args, arg_name)
        if value is not None:
            overrides[field] = value
    if args.watchdog is not None:
        overrides["watchdog"] = args.watchdog == "on"
    if args.observed_only is not None:
        overrides["health_observed_only"] = args.observed_only == "on"
    if args.storage_reservations is not None:
        overrides["storage_reservations"] = args.storage_reservations == "on"
    if args.repair is not None:
        overrides["durability_repair"] = args.repair == "on"
    if args.bulk is not None:
        overrides["bulk_submission"] = args.bulk == "on"
    if args.storage_gb is not None:
        overrides["storage_capacity_mb"] = args.storage_gb * 1000.0
    if overrides:
        config = config.with_(**overrides)
    return config


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("parallel execution")
    group.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for independent runs "
                            "(1 = serial, 0 = all cores; results are "
                            "identical at any worker count)")
    group.add_argument("--cache", action="store_true",
                       help=f"reuse finished runs via an on-disk cache "
                            f"under {DEFAULT_CACHE_DIR}/")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (implies --cache)")


def _cache_dir(args: argparse.Namespace):
    if args.cache_dir is not None:
        return args.cache_dir
    return DEFAULT_CACHE_DIR if args.cache else None


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_parameters(_build_config(args))
    width = max(len(k) for k in rows) + 2
    print("Table 1: Simulation parameters used in study")
    for key, value in rows.items():
        print(f"{key:<{width}}{value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args)
    metrics = run_single(config, args.es, args.ds, seed=args.seed)
    print(format_run(metrics, label=f"{args.es} + {args.ds} "
                     f"(seed {args.seed})"))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = run_matrix(config, seeds=tuple(args.seeds),
                        jobs=args.jobs, cache_dir=_cache_dir(args))
    print(format_matrix(
        "Figure 3a: average response time per job (seconds)",
        result.metric_matrix("avg_response_time_s"), ALL_ES, ALL_DS))
    print()
    print(format_matrix(
        "Figure 3b: average data transferred per job (MB)",
        result.metric_matrix("avg_data_transferred_mb"), ALL_ES, ALL_DS))
    print()
    print(format_matrix(
        "Figure 4: average idle time of processors (%)",
        result.metric_matrix("idle_percent"), ALL_ES, ALL_DS))
    return 0


def _cmd_dag(args: argparse.Namespace) -> int:
    config = _build_config(args)
    if config.dag_shape == "none":
        # The campaign is about dependencies; default to the diamond
        # motif unless the user picked a shape explicitly.
        config = config.with_(dag_shape="diamond")
    result = run_matrix(config, seeds=tuple(args.seeds),
                        jobs=args.jobs, cache_dir=_cache_dir(args))
    bulk = "on" if config.bulk_submission else "off"
    print(f"DAG campaign: shape={config.dag_shape} "
          f"width={config.dag_width} bulk={bulk} "
          f"seeds={list(args.seeds)}")
    print()
    print(format_matrix(
        "Average response time per job (seconds)",
        result.metric_matrix("avg_response_time_s"), ALL_ES, ALL_DS))
    print()
    print(format_matrix(
        "Average data transferred per job (MB)",
        result.metric_matrix("avg_data_transferred_mb"), ALL_ES, ALL_DS))
    print()
    print(format_matrix(
        "Jobs completed",
        result.metric_matrix("n_jobs"), ALL_ES, ALL_DS))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _build_config(args)
    seeds = tuple(args.seeds)
    if args.which == "2":
        for name, count in reproduce_figure2(config, seed=args.seed,
                                             top_n=args.top):
            print(f"{name:<16}{count:>8}")
        return 0
    if args.which == "5":
        out = reproduce_figure5(config, seeds=seeds,
                                jobs=args.jobs, cache_dir=_cache_dir(args))
        print(f"{'':<16}{'10MB/sec':>12}{'100MB/sec':>12}")
        for es in ALL_ES:
            print(f"{es:<16}{out['10MB/sec'][es]:>12.1f}"
                  f"{out['100MB/sec'][es]:>12.1f}")
        return 0
    result = reproduce_figure3_and_4(config, seeds=seeds,
                                     jobs=args.jobs,
                                     cache_dir=_cache_dir(args))
    views = {
        "3a": ("Figure 3a: average response time per job (seconds)",
               result.figure3a()),
        "3b": ("Figure 3b: average data transferred per job (MB)",
               result.figure3b()),
        "4": ("Figure 4: average idle time of processors (%)",
              result.figure4()),
    }
    title, values = views[args.which]
    print(format_matrix(title, values, ALL_ES, ALL_DS))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import sweep

    config = _build_config(args)
    values = [_parse_value(v) for v in args.values]
    result = sweep(config, args.parameter, values,
                   es_name=args.es, ds_name=args.ds,
                   seeds=tuple(args.seeds),
                   jobs=args.jobs, cache_dir=_cache_dir(args))
    print(result.table())
    best = result.best_value()
    print(f"\nbest {args.parameter} for response time: {best}")
    return 0


def _parse_pairs(specs) -> Optional[tuple]:
    """Parse --pairs entries like 'JobDataPresent+DataLeastLoaded'."""
    if specs is None:
        return None
    pairs = []
    for spec in specs:
        es_name, sep, ds_name = spec.partition("+")
        if not sep or es_name not in ALL_ES or ds_name not in ALL_DS:
            raise ValueError(
                f"bad pair {spec!r}; expected ES+DS like "
                f"JobDataPresent+DataLeastLoaded")
        pairs.append((es_name, ds_name))
    return tuple(pairs)


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        durability_sweep,
        overload_sweep,
        recovery_sweep,
        staleness_sensitivity,
    )

    config = _build_config(args)
    pairs = _parse_pairs(args.pairs)
    kwargs = {"pairs": pairs} if pairs else {}
    if args.mode == "durability-sweep":
        result = durability_sweep(
            config, mtbfs=tuple(args.corruption_mtbfs),
            rfs=tuple(args.rfs), scrubs=tuple(args.scrubs),
            seeds=tuple(args.seeds), jobs=args.jobs,
            cache_dir=_cache_dir(args), **kwargs)
        print(result.table())
        print()
        for es_name, ds_name in result.pairs:
            for mtbf in result.mtbfs:
                for scrub in result.scrubs:
                    rf = result.surviving_rf(es_name, ds_name, mtbf, scrub)
                    label = (f"{es_name} + {ds_name}, corruption mtbf "
                             f"{mtbf:g}, scrub {scrub:g}")
                    print(f"lowest surviving RF for {label}: "
                          + (f"{rf}" if rf is not None else "none swept"))
        return 0
    if args.mode == "recovery-sweep":
        partitioned = {"both": (False, True), "on": (True,),
                       "off": (False,)}[args.partition_cells]
        result = recovery_sweep(
            config, thresholds=tuple(args.thresholds),
            mtbfs=tuple(args.mtbfs), partitioned=partitioned,
            seeds=tuple(args.seeds), jobs=args.jobs,
            cache_dir=_cache_dir(args), **kwargs)
        print(result.table())
        print()
        for es_name, ds_name in result.pairs:
            for part in result.partitioned:
                for mtbf in result.mtbfs:
                    safe = result.safe_threshold(es_name, ds_name, mtbf,
                                                 part)
                    label = (f"{es_name} + {ds_name}, mtbf {mtbf:g}, "
                             f"partition {'on' if part else 'off'}")
                    print(f"lowest safe threshold (fp <= 5%) for {label}: "
                          + (f"{safe:g}" if safe is not None
                             else "none swept"))
        return 0
    if args.mode == "overload-sweep":
        result = overload_sweep(
            config, rates=tuple(args.rates),
            capacities=tuple(args.capacities), seeds=tuple(args.seeds),
            jobs=args.jobs, cache_dir=_cache_dir(args), **kwargs)
        print(result.table())
        return 0
    result = staleness_sensitivity(
        config, delays=tuple(args.delays), seeds=tuple(args.seeds),
        jobs=args.jobs, cache_dir=_cache_dir(args), **kwargs)
    print(result.table())
    print()
    for es_name, ds_name in result.pairs:
        print(f"worst-case response-time degradation for "
              f"{es_name} + {ds_name}: "
              f"{100 * (result.degradation(es_name, ds_name) - 1):.1f} %")
    return 0


def _parse_value(text: str):
    """Interpret a sweep value as int, float, or string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import Tracer
    from repro.trace import (
        count_by_kind,
        expand_kinds,
        format_timelines,
        read_jsonl,
        trace_digest,
        write_jsonl,
    )

    if args.action == "summarize":
        records = read_jsonl(args.trace_file)
        print(f"{len(records)} records from {args.trace_file} "
              f"(digest {trace_digest(records)[:12]}…)")
        for kind, count in count_by_kind(records).items():
            print(f"  {kind:<24}{count:>8}")
        print()
        print(format_timelines(records, limit=args.limit))
        return 0

    kinds = (expand_kinds(args.trace_kinds)
             if args.trace_kinds is not None else None)
    tracer = Tracer(kinds=kinds)
    config = _build_config(args)
    metrics = run_single(config, args.es, args.ds, seed=args.seed,
                         tracer=tracer)
    print(f"{len(tracer.records)} records "
          f"({args.es} + {args.ds}, seed {args.seed}, digest "
          f"{trace_digest(tracer.records)[:12]}…)")
    for kind, count in tracer.counts_by_kind().items():
        print(f"  {kind:<24}{count:>8}")
    if args.trace_out is not None:
        lines = write_jsonl(tracer.records, args.trace_out)
        print(f"wrote {lines} records to {args.trace_out}")
    if args.summarize:
        print()
        print(format_timelines(tracer.records, limit=args.limit))
    print(f"\nmakespan: {metrics.makespan_s:.1f} s, "
          f"avg response: {metrics.avg_response_time_s:.1f} s")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    config = _build_config(args)
    workload = make_workload(config, seed=args.seed)
    save_workload(workload, args.out)
    print(f"wrote {workload.n_jobs} jobs / {len(workload.datasets)} "
          f"datasets / {len(workload.user_sites)} users to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Ranganathan & Foster (HPDC 2002): "
                    "decoupled Data Grid scheduling.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="print Table 1")
    _add_config_arguments(p_table)
    p_table.set_defaults(func=_cmd_table1)

    p_run = sub.add_parser("run", help="run one algorithm combination")
    p_run.add_argument("--es", default="JobDataPresent",
                       choices=(ALL_ES + ["JobAdaptive"]
                                + [f"{es}+Health" for es in ALL_ES]),
                       help="external scheduler (+Health = circuit-"
                            "breaker-aware variant)")
    p_run.add_argument("--ds", default="DataRandom",
                       choices=ALL_DS + ["DataBestClient"],
                       help="dataset scheduler")
    _add_config_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_matrix = sub.add_parser(
        "matrix", help="run the full 4x3 sweep (Figures 3a/3b/4)")
    p_matrix.add_argument("--seeds", type=int, nargs="+", default=[0])
    _add_config_arguments(p_matrix)
    _add_parallel_arguments(p_matrix)
    p_matrix.set_defaults(func=_cmd_matrix)

    p_dag = sub.add_parser(
        "dag", help="run the full ES x DS sweep on a DAG workload")
    p_dag.add_argument("--seeds", type=int, nargs="+", default=[0])
    _add_config_arguments(p_dag)
    _add_parallel_arguments(p_dag)
    p_dag.set_defaults(func=_cmd_dag)

    p_figure = sub.add_parser("figure", help="reproduce one paper figure")
    p_figure.add_argument("which", choices=["2", "3a", "3b", "4", "5"])
    p_figure.add_argument("--seeds", type=int, nargs="+", default=[0])
    p_figure.add_argument("--top", type=int, default=60,
                          help="datasets to list for figure 2")
    _add_config_arguments(p_figure)
    _add_parallel_arguments(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_sweep = sub.add_parser(
        "sweep", help="sweep one config field across values")
    p_sweep.add_argument("parameter",
                         help="SimulationConfig field to vary")
    p_sweep.add_argument("values", nargs="+",
                         help="values to sweep (parsed as int/float/str)")
    p_sweep.add_argument("--es", default="JobDataPresent",
                         choices=ALL_ES + ["JobAdaptive"])
    p_sweep.add_argument("--ds", default="DataRandom",
                         choices=ALL_DS + ["DataBestClient"])
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    _add_config_arguments(p_sweep)
    _add_parallel_arguments(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_sens = sub.add_parser(
        "sensitivity",
        help="degradation sweeps: catalog staleness, offered overload, "
             "or failure detection/recovery")
    p_sens.add_argument("mode", nargs="?",
                        choices=["staleness-sweep", "overload-sweep",
                                 "recovery-sweep", "durability-sweep"],
                        default="staleness-sweep",
                        help="staleness-sweep: response time vs catalog "
                             "delay (default); overload-sweep: arrival "
                             "rate x queue capacity degradation table; "
                             "recovery-sweep: detection threshold x MTBF "
                             "x partition detector-quality table; "
                             "durability-sweep: corruption rate x "
                             "replication factor x scrub period survival "
                             "table")
    p_sens.add_argument("--delays", type=float, nargs="+",
                        default=[0.0, 60.0, 300.0, 900.0, 1800.0],
                        metavar="SECONDS",
                        help="catalog propagation delays to sweep "
                             "(staleness-sweep)")
    p_sens.add_argument("--rates", type=float, nargs="+",
                        default=[0.02, 0.05, 0.1, 0.2],
                        metavar="JOBS_PER_S",
                        help="open-loop arrival rates to sweep "
                             "(overload-sweep)")
    p_sens.add_argument("--capacities", type=int, nargs="+",
                        default=[4, 16], metavar="JOBS",
                        help="per-site queue capacities to sweep "
                             "(overload-sweep)")
    p_sens.add_argument("--thresholds", type=float, nargs="+",
                        default=[2.0, 3.0, 6.0], metavar="PHI",
                        help="phi suspicion thresholds to sweep "
                             "(recovery-sweep)")
    p_sens.add_argument("--mtbfs", type=float, nargs="+",
                        default=[0.0, 3600.0, 14400.0], metavar="SECONDS",
                        help="site MTBF values to sweep; 0 = no random "
                             "failures (recovery-sweep)")
    p_sens.add_argument("--corruption-mtbfs", type=float, nargs="+",
                        default=[0.0, 14400.0, 3600.0], metavar="SECONDS",
                        help="per-site bit-rot MTBF values to sweep; 0 = "
                             "no corruption (durability-sweep)")
    p_sens.add_argument("--rfs", type=int, nargs="+", default=[1, 2],
                        metavar="N",
                        help="replication factors to sweep; factors > 1 "
                             "arm the repair manager (durability-sweep)")
    p_sens.add_argument("--scrubs", type=float, nargs="+",
                        default=[0.0, 600.0], metavar="SECONDS",
                        help="scrubber periods to sweep; 0 = on-access "
                             "detection only (durability-sweep)")
    p_sens.add_argument("--partition-cells", default="both",
                        choices=["both", "on", "off"],
                        help="whether recovery-sweep cells include the "
                             "canonical network partition (default: "
                             "sweep both)")
    p_sens.add_argument("--pairs", nargs="+", default=None,
                        metavar="ES+DS",
                        help="algorithm pairs, e.g. "
                             "JobDataPresent+DataLeastLoaded "
                             "(default: decoupled winner vs "
                             "compute-only baseline)")
    p_sens.add_argument("--seeds", type=int, nargs="+", default=[0])
    _add_config_arguments(p_sens)
    _add_parallel_arguments(p_sens)
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_trace = sub.add_parser(
        "trace", help="run one combination traced / summarize a trace")
    trace_sub = p_trace.add_subparsers(dest="action", required=True)
    p_trace_run = trace_sub.add_parser(
        "run", help="run one combination with domain-event tracing on")
    p_trace_run.add_argument("--es", default="JobDataPresent",
                             choices=ALL_ES + ["JobAdaptive"])
    p_trace_run.add_argument("--ds", default="DataRandom",
                             choices=ALL_DS + ["DataBestClient"])
    p_trace_run.add_argument("--trace-out", default=None, metavar="FILE",
                             help="write the trace as JSONL")
    p_trace_run.add_argument("--trace-kinds", nargs="+", default=None,
                             metavar="KIND",
                             help="only record these kinds/groups "
                                  "(e.g. 'job transfer.done')")
    p_trace_run.add_argument("--summarize", action="store_true",
                             help="also print per-job timelines")
    p_trace_run.add_argument("--limit", type=int, default=20,
                             help="timelines to print with --summarize")
    _add_config_arguments(p_trace_run)
    p_trace_run.set_defaults(func=_cmd_trace)
    p_trace_sum = trace_sub.add_parser(
        "summarize", help="reconstruct per-job timelines from a JSONL trace")
    p_trace_sum.add_argument("trace_file", help="JSONL trace path")
    p_trace_sum.add_argument("--limit", type=int, default=20,
                             help="timelines to print")
    p_trace_sum.set_defaults(func=_cmd_trace)

    p_workload = sub.add_parser(
        "workload", help="generate a workload trace (JSON)")
    p_workload.add_argument("--out", required=True,
                            help="output trace path")
    _add_config_arguments(p_workload)
    p_workload.set_defaults(func=_cmd_workload)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Configuration and fault-plan mistakes are user errors, not crashes:
    they print one structured line on stderr and exit 2 — never a
    traceback.
    """
    from repro.faults.plan import FaultPlanError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FaultPlanError as exc:
        print(f"error: invalid fault plan [{exc.field}]: "
              f"{str(exc).partition(': ')[2] or exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

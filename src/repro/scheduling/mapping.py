"""User→External-Scheduler mappings (paper §3).

"Different mappings between users and External Schedulers lead to
different scenarios.  For example, a one-to-one mapping between External
Schedulers and users would mean each user takes scheduling decisions on
their own, while a single ES in the system would mean a central scheduler
to which all users submit their jobs.  For our experiments we assume one
ES per site.  We will study other mappings in the future."

:class:`MappedExternalScheduler` realizes that study: it instantiates one
delegate ES per mapping key (the whole grid, the origin site, or the
user) and routes each job to its delegate.  For the paper's four ES
algorithms the choice is invisible (they are stateless given the
information service); for stateful algorithms such as
:class:`~repro.scheduling.external.JobRoundRobin` it changes behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.scheduling.base import ExternalScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.grid.job import Job

#: Valid mapping modes.
MAPPINGS = ("central", "per-site", "per-user")


class MappedExternalScheduler(ExternalScheduler):
    """Routes each job to a per-key delegate External Scheduler.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh delegate ES.
    mapping:
        ``"central"`` — one delegate for the whole grid (the single-ES
        scenario); ``"per-site"`` — one per origin site (the paper's
        experimental setup); ``"per-user"`` — one per user.
    """

    name = "Mapped"

    def __init__(self, factory: Callable[[], ExternalScheduler],
                 mapping: str = "per-site") -> None:
        if mapping not in MAPPINGS:
            raise ValueError(
                f"unknown mapping {mapping!r}; valid: {MAPPINGS}")
        self.factory = factory
        self.mapping = mapping
        self._instances: Dict[Optional[str], ExternalScheduler] = {}

    def _key(self, job: "Job") -> Optional[str]:
        if self.mapping == "central":
            return None
        if self.mapping == "per-site":
            return job.origin_site
        return job.user

    def delegate_for(self, job: "Job") -> ExternalScheduler:
        """The delegate instance that decides for this job."""
        key = self._key(job)
        instance = self._instances.get(key)
        if instance is None:
            instance = self.factory()
            self._instances[key] = instance
        return instance

    @property
    def instance_count(self) -> int:
        """Delegates created so far."""
        return len(self._instances)

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        return self.delegate_for(job).select_site(job, grid)

    def __repr__(self) -> str:
        return (f"<MappedES {self.mapping} "
                f"({self.instance_count} instances)>")

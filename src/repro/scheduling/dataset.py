"""The paper's three Dataset Scheduler algorithms (§4).

* :class:`DataDoNothing` — "No active replication takes place. ... Data may
  be fetched from a remote site for a particular job, in which case it is
  cached and managed using LRU."  (The caching itself is mechanism and
  always on; this policy simply adds nothing.)
* :class:`DataRandom` — track per-dataset popularity; when it exceeds a
  threshold, replicate the dataset to a random site on the grid.
* :class:`DataLeastLoaded` — same trigger, but the target is the least
  loaded site among the source site's *neighbors*.

Both active policies run as an asynchronous periodic process per site —
this is exactly the paper's decoupling: the replication loop never
coordinates with the External Scheduler.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.grid.storage import StorageFullError
from repro.scheduling.base import DatasetScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.grid.site import Site


class DataDoNothing(DatasetScheduler):
    """No active replication (passive LRU caching only)."""

    name = "DataDoNothing"

    def attach(self, site: "Site", grid: "DataGrid") -> None:
        return


class _ReplicatingDatasetScheduler(DatasetScheduler):
    """Shared popularity-threshold replication loop.

    Parameters
    ----------
    rng:
        Stream for random target selection / tie-breaks.
    popularity_threshold:
        Local access count at which a dataset becomes "popular".
    check_interval_s:
        Period of the asynchronous replication loop.
    """

    def __init__(self, rng: random.Random, popularity_threshold: int = 5,
                 check_interval_s: float = 300.0,
                 delete_idle_after_s: float = 0.0) -> None:
        if popularity_threshold < 1:
            raise ValueError(
                f"popularity threshold must be >= 1, "
                f"got {popularity_threshold}")
        if check_interval_s <= 0:
            raise ValueError(
                f"check interval must be positive, got {check_interval_s}")
        if delete_idle_after_s < 0:
            raise ValueError(
                f"delete_idle_after_s must be >= 0, "
                f"got {delete_idle_after_s}")
        self.rng = rng
        self.popularity_threshold = popularity_threshold
        self.check_interval_s = check_interval_s
        #: If > 0, also exercise the DS's §3 deletion responsibility:
        #: each period, drop unpinned replicas idle for at least this
        #: long — provided another replica survives elsewhere.
        self.delete_idle_after_s = delete_idle_after_s
        #: Replicas deleted by the idle reaper (metrics).
        self.deletions = 0

    def attach(self, site: "Site", grid: "DataGrid") -> None:
        site.sim.process(self._loop(site, grid), name=f"ds:{site.name}")

    def _loop(self, site: "Site", grid: "DataGrid"):
        while True:
            yield site.sim.timeout(self.check_interval_s)
            self._replicate_popular(site, grid)
            if self.delete_idle_after_s > 0:
                self._delete_idle(site, grid)

    def _delete_idle(self, site: "Site", grid: "DataGrid") -> None:
        now = site.sim.now
        tracer = grid.tracer
        for name in site.storage.idle_files(now, self.delete_idle_after_s):
            # Never delete the last replica in the grid, and leave files
            # some other site is currently pulling from us alone.  This
            # check deliberately uses the *live* catalog even under a
            # stale view: deletion is irreversible, so it must never act
            # on a phantom replica record.
            if grid.catalog.replica_count(name) <= 1:
                continue
            site.storage.remove(name)
            grid.catalog.deregister(name, site.name)
            self.deletions += 1
            if tracer is not None:
                tracer.emit(now, "ds.delete", ds=self.name, site=site.name,
                            dataset=name)

    def _replicate_popular(self, site: "Site", grid: "DataGrid") -> None:
        tracer = grid.tracer
        hot = [
            (name, count)
            for name, count in sorted(site.storage.access_counts.items())
            if count >= self.popularity_threshold and name in site.storage
        ]
        for name, popularity in hot:
            target = self._pick_target(name, site, grid)
            site.storage.reset_popularity(name)
            if tracer is not None:
                tracer.emit(site.sim.now, "ds.decision", ds=self.name,
                            site=site.name, dataset=name,
                            popularity=popularity,
                            threshold=self.popularity_threshold,
                            target=target)
            if target is None:
                continue
            process = grid.datamover.replicate(name, site.name, target)
            # Fire-and-forget, but supervised: a replication that cannot
            # complete (e.g. the target filled up with pinned files while
            # the copy was in flight) is skipped, never fatal.
            site.sim.process(_supervise(process), name=f"ds-sup:{site.name}")

    def _pick_target(self, dataset_name: str, site: "Site",
                     grid: "DataGrid") -> Optional[str]:
        """Choose the destination site, or None to skip this round."""
        raise NotImplementedError

    def _eligible(self, candidates: List[str], dataset_name: str,
                  site: "Site", grid: "DataGrid") -> List[str]:
        """Filter out the source and sites believed to hold the data.

        The replica check goes through the information service, so under
        a stale catalog view the DS works from the same delayed picture
        the External Scheduler sees.  Phantom records are tolerated by
        mechanism: replicating to a site that (unbeknownst to the view)
        already holds the file is a no-cost local hit in the data mover,
        and a phantom *presence* merely skips one replication round.
        Down sites are excluded — pushing replicas at a dead site wastes
        the check interval.
        """
        return [
            c for c in candidates
            if c != site.name
            and grid.info.is_available(c)
            and not grid.info.has_replica(dataset_name, c)
            and not grid.datamover.is_inflight(c, dataset_name)
        ]


def _supervise(process):
    """Absorb benign replication failures so they never crash the run."""
    try:
        yield process
    except StorageFullError:
        pass


class DataRandom(_ReplicatingDatasetScheduler):
    """Replicate popular datasets to a random site on the grid."""

    name = "DataRandom"

    def _pick_target(self, dataset_name: str, site: "Site",
                     grid: "DataGrid") -> Optional[str]:
        candidates = self._eligible(
            grid.info.site_names, dataset_name, site, grid)
        if not candidates:
            return None
        return self.rng.choice(candidates)


class DataBestClient(_ReplicatingDatasetScheduler):
    """Replicate popular datasets to their *best client* (extension).

    From the authors' companion paper ("Identifying Dynamic Replication
    Strategies for a High-Performance Data Grid", ref [23]): the site
    holding a popular dataset pushes a replica to the site whose users
    generated the most requests for it.  Demand is observed from the
    origin sites of jobs that execute here — installed via the site's
    completion listener.
    """

    name = "DataBestClient"

    def __init__(self, rng: random.Random, popularity_threshold: int = 5,
                 check_interval_s: float = 300.0,
                 delete_idle_after_s: float = 0.0) -> None:
        super().__init__(rng, popularity_threshold, check_interval_s,
                         delete_idle_after_s)
        # (site, dataset) -> {origin site: request count}
        self._demand: dict = {}

    def attach(self, site: "Site", grid: "DataGrid") -> None:
        site.completion_listeners.append(
            lambda job, _site=site.name: self._observe(_site, job))
        super().attach(site, grid)

    def _observe(self, site_name: str, job) -> None:
        for fname in job.input_files:
            counts = self._demand.setdefault((site_name, fname), {})
            counts[job.origin_site] = counts.get(job.origin_site, 0) + 1

    def demand_for(self, site_name: str, dataset_name: str) -> dict:
        """Observed per-origin request counts (metrics/tests)."""
        return dict(self._demand.get((site_name, dataset_name), {}))

    def _pick_target(self, dataset_name: str, site: "Site",
                     grid: "DataGrid") -> Optional[str]:
        counts = self._demand.get((site.name, dataset_name))
        if not counts:
            return None
        eligible = self._eligible(sorted(counts), dataset_name, site, grid)
        if not eligible:
            return None
        return max(eligible, key=lambda s: (counts[s], s))


class DataLeastLoaded(_ReplicatingDatasetScheduler):
    """Replicate popular datasets to the least-loaded neighbor site.

    "Neighbors" are the sites within ``neighbor_hops`` links (default 2 —
    the sibling sites under the same regional center in the paper's
    hierarchical topology).
    """

    name = "DataLeastLoaded"

    def __init__(self, rng: random.Random, popularity_threshold: int = 5,
                 check_interval_s: float = 300.0,
                 neighbor_hops: int = 2,
                 delete_idle_after_s: float = 0.0) -> None:
        super().__init__(rng, popularity_threshold, check_interval_s,
                         delete_idle_after_s)
        if neighbor_hops < 1:
            raise ValueError(f"neighbor_hops must be >= 1, got {neighbor_hops}")
        self.neighbor_hops = neighbor_hops

    def _pick_target(self, dataset_name: str, site: "Site",
                     grid: "DataGrid") -> Optional[str]:
        neighbors = grid.topology.neighbors_of_site(
            site.name, max_hops=self.neighbor_hops)
        candidates = self._eligible(neighbors, dataset_name, site, grid)
        if not candidates:
            return None
        try:
            return grid.info.least_loaded(candidates, rng=self.rng)
        except ValueError:
            # Every eligible neighbor is currently down or suspected by
            # the health monitor; skip this round rather than die.
            return None

"""The paper's four External Scheduler algorithms (§4).

Each algorithm picks the execution site for a freshly submitted job:

* :class:`JobRandom` — "a randomly selected site".
* :class:`JobLeastLoaded` — "the site that currently has the least load",
  load being "the least number of jobs waiting to run".
* :class:`JobDataPresent` — "a site that already has the required data.
  If more than one site qualifies choose the least loaded one."
* :class:`JobLocal` — "always run jobs locally."

In every case the site mechanism fetches any missing input before the
compute phase starts.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List

from repro.scheduling.base import ExternalScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.grid.job import Job


class JobRandom(ExternalScheduler):
    """Dispatch each job to a uniformly random site."""

    name = "JobRandom"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        site = self.rng.choice(grid.info.site_names)
        if grid.tracer is not None:
            self._trace_decision(grid, job, site,
                                 candidates=list(grid.info.site_names))
        return site


class JobLeastLoaded(ExternalScheduler):
    """Dispatch each job to the currently least-loaded site.

    Ties are broken uniformly at random; with deterministic tie-breaking
    every idle-start experiment would dogpile the alphabetically first
    site.
    """

    name = "JobLeastLoaded"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        site = grid.info.least_loaded(rng=self.rng)
        if grid.tracer is not None:
            self._trace_decision(grid, job, site, scores=grid.info.loads())
        return site


class JobDataPresent(ExternalScheduler):
    """Dispatch each job to a site that already holds its input data.

    Among qualifying sites the least loaded wins (random tie-break).  A
    site counts as qualifying if it holds *all* the job's inputs; if none
    does (possible only for multi-input extension workloads), the site
    holding the largest share of the input bytes is used, so the fetch the
    mechanism performs is as small as possible.
    """

    name = "JobDataPresent"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        candidates = grid.info.sites_with_all(job.input_files)
        if candidates:
            site = grid.info.least_loaded(candidates, rng=self.rng)
            if grid.tracer is not None:
                self._trace_decision(
                    grid, job, site, candidates=list(candidates),
                    scores={c: grid.info.load(c) for c in candidates})
            return site
        site = self._most_bytes_present(job, grid)
        if grid.tracer is not None:
            self._trace_decision(grid, job, site, candidates=[],
                                 fallback="most-bytes-present")
        return site

    def _most_bytes_present(self, job: "Job", grid: "DataGrid") -> str:
        # The per-site byte index walks only the replicas of the job's own
        # inputs — O(inputs × replicas) instead of the old O(sites ×
        # inputs) full-grid rescan.  Queried through the information
        # service so a stale catalog view answers when one is configured.
        present = grid.info.bytes_present_by_site(
            job.input_files,
            sizes={f: grid.datasets.get(f).size_mb
                   for f in job.input_files})
        if not present:
            # No input is present anywhere: every site ties at zero bytes.
            return grid.info.least_loaded(rng=self.rng)
        best_bytes = max(present.values())
        best_sites: List[str] = sorted(
            site for site, mb in present.items() if mb == best_bytes)
        if len(best_sites) > 1:
            try:
                return grid.info.least_loaded(best_sites, rng=self.rng)
            except ValueError:
                # Every tied site is marked down; hand the first back and
                # let the fault-recovery redirect machinery resolve it.
                return best_sites[0]
        return best_sites[0]


class JobLocal(ExternalScheduler):
    """Run every job at the submitting user's own site."""

    name = "JobLocal"

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        if grid.tracer is not None:
            self._trace_decision(grid, job, job.origin_site, reason="origin")
        return job.origin_site


class JobHealthFiltered(ExternalScheduler):
    """Wrap any ES with circuit-breaker awareness (extension).

    The information service already hides suspected sites from the
    shared site list, so list-driven schedulers avoid tripped sites for
    free.  This wrapper closes the remaining gap: choices made outside
    that list (``JobLocal``'s origin site, a data-present hit on a
    tripped replica holder) are vetoed when the site's breaker is open,
    and the job is re-routed to the least-loaded site the health
    monitor still allows.  With no health monitor installed the wrapper
    is a transparent pass-through.
    """

    def __init__(self, inner: ExternalScheduler, rng: random.Random) -> None:
        self.inner = inner
        self.rng = rng
        self.name = f"{inner.name}+Health"

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        site = self.inner.select_site(job, grid)
        health = grid.health
        if health is None or health.allows(site):
            return site
        allowed = sorted(
            name for name in grid.info.site_names
            if name != site and health.allows(name))
        if not allowed:
            # Every breaker is open; keep the original pick and let the
            # dispatch/recovery machinery absorb the failure.
            return site
        try:
            fallback = grid.info.least_loaded(allowed, rng=self.rng)
        except ValueError:
            return site
        if grid.tracer is not None:
            self._trace_decision(grid, job, fallback, vetoed=site,
                                 reason="breaker-open")
        return fallback


class JobRoundRobin(ExternalScheduler):
    """Cycle through sites in order (extension).

    Deliberately *stateful*: under the §3 mapping study, one central
    round-robin scheduler spreads jobs perfectly while per-site instances
    each run their own cycle — the simplest scheduler for which the
    user→ES mapping is observable.
    """

    name = "JobRoundRobin"

    def __init__(self) -> None:
        self._next = 0

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        sites = grid.info.site_names
        site = sites[self._next % len(sites)]
        self._next += 1
        if grid.tracer is not None:
            self._trace_decision(grid, job, site, cursor=self._next - 1)
        return site

"""Adaptive scheduling — the paper's future-work sketch (§5.4/§6).

"Slow links and large datasets might imply scheduling the jobs at the data
source ...  On the other hand, if the data is small and network links are
not congested, moving the data to the job source ... might be viable."

:class:`AdaptiveExternalScheduler` implements that switch: it estimates the
time to pull the job's input to the *origin* site and compares it with the
job's compute time.  Cheap-to-move inputs run locally (data follows job);
expensive ones run at the data (job follows data, least-loaded holder).
This is an extension — not part of the paper's 12 evaluated combinations —
used by the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.scheduling.base import ExternalScheduler
from repro.scheduling.external import JobDataPresent, JobLocal

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.grid.job import Job


class AdaptiveExternalScheduler(ExternalScheduler):
    """Switch between JobLocal and JobDataPresent per job.

    Parameters
    ----------
    rng:
        Stream for the delegate schedulers' tie-breaks.
    transfer_budget_fraction:
        Run locally when the estimated (uncontended) input-transfer time is
        at most this fraction of the job's compute time.  1.0 means "local
        is fine whenever the fetch would overlap entirely with a same-length
        compute"; lower values are more data-affine.
    congestion_factor:
        Multiplier applied to the uncontended estimate to account for link
        sharing; the information service does not expose per-link queue
        depth (matching the paper's site-level information model), so this
        is a static pessimism knob.
    forecaster:
        Optional :class:`~repro.network.forecast.NWSForecaster`.  When
        given and it has history for a (source, origin) pair, the
        *measured* achieved bandwidth replaces the nominal-capacity /
        congestion-factor estimate — the NWS-informed variant.
    """

    name = "JobAdaptive"

    def __init__(self, rng: random.Random,
                 transfer_budget_fraction: float = 0.5,
                 congestion_factor: float = 2.0,
                 forecaster=None) -> None:
        if transfer_budget_fraction <= 0:
            raise ValueError("transfer_budget_fraction must be positive")
        if congestion_factor < 1.0:
            raise ValueError("congestion_factor must be >= 1")
        self.transfer_budget_fraction = transfer_budget_fraction
        self.congestion_factor = congestion_factor
        self.forecaster = forecaster
        self._local = JobLocal()
        self._data_present = JobDataPresent(rng)
        #: Decision counters for ablation reporting.
        self.chose_local = 0
        self.chose_data = 0
        #: How often a measured forecast (vs the static estimate) was used.
        self.forecast_hits = 0
        self.forecast_misses = 0

    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        estimate = self._fetch_estimate(job, grid)
        if estimate <= self.transfer_budget_fraction * job.runtime_s:
            self.chose_local += 1
            return self._local.select_site(job, grid)
        self.chose_data += 1
        return self._data_present.select_site(job, grid)

    def _fetch_estimate(self, job: "Job", grid: "DataGrid") -> float:
        """Pessimistic estimate of fetching all inputs to the origin site."""
        total = 0.0
        origin = job.origin_site
        for fname in job.input_files:
            if grid.catalog.has_replica(fname, origin):
                continue
            locations = grid.catalog.locations(fname)
            if not locations:
                return float("inf")
            size = grid.datasets.get(fname).size_mb
            total += min(
                self._pair_estimate(src, origin, size, grid)
                for src in locations
            )
        return total

    def _pair_estimate(self, src: str, origin: str, size_mb: float,
                       grid: "DataGrid") -> float:
        if self.forecaster is not None:
            mbps = self.forecaster.forecast(src, origin)
            if mbps is not None:
                self.forecast_hits += 1
                return size_mb / mbps
            self.forecast_misses += 1
        return (grid.transfers.estimated_transfer_time(src, origin, size_mb)
                * self.congestion_factor)

"""Name-based factories for the scheduler families.

The experiment harness sweeps algorithms by name (e.g. the paper's 4×3
cross product ``ALL_ES × ALL_DS``); this module is the single place the
string names are defined.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.scheduling.adaptive import AdaptiveExternalScheduler
from repro.scheduling.base import (
    DatasetScheduler,
    ExternalScheduler,
    LocalScheduler,
)
from repro.scheduling.dataset import (
    DataBestClient,
    DataDoNothing,
    DataLeastLoaded,
    DataRandom,
)
from repro.scheduling.external import (
    JobDataPresent,
    JobHealthFiltered,
    JobLeastLoaded,
    JobLocal,
    JobRandom,
    JobRoundRobin,
)
from repro.scheduling.local import (
    DataAwareFIFOScheduler,
    FIFOLocalScheduler,
    LongestJobFirstScheduler,
    ShortestJobFirstScheduler,
)

#: The paper's four External Scheduler algorithms, in figure order.
ALL_ES: List[str] = [
    "JobRandom",
    "JobLeastLoaded",
    "JobDataPresent",
    "JobLocal",
]

#: The paper's three Dataset Scheduler algorithms, in figure order.
ALL_DS: List[str] = [
    "DataDoNothing",
    "DataRandom",
    "DataLeastLoaded",
]

#: Local schedulers (paper: FIFO only; the rest are extensions).
ALL_LS: List[str] = ["FIFO", "SJF", "LJF", "FIFO-DataAware"]

_ES_FACTORIES: Dict[str, Callable[..., ExternalScheduler]] = {
    "JobRandom": lambda rng, **kw: JobRandom(rng),
    "JobLeastLoaded": lambda rng, **kw: JobLeastLoaded(rng),
    "JobDataPresent": lambda rng, **kw: JobDataPresent(rng),
    "JobLocal": lambda rng, **kw: JobLocal(),
    "JobRoundRobin": lambda rng, **kw: JobRoundRobin(),
    "JobAdaptive": lambda rng, **kw: AdaptiveExternalScheduler(rng, **kw),
}


def _health_variant(base: str) -> Callable[..., ExternalScheduler]:
    inner = _ES_FACTORIES[base]
    return lambda rng, **kw: JobHealthFiltered(inner(rng, **kw), rng)


# Circuit-breaker-aware variants of the paper's four algorithms: the
# inner ES proposes, the wrapper vetoes picks whose site breaker is open
# (see repro.grid.health).  Pass-throughs when no health monitor runs.
for _base in ("JobRandom", "JobLeastLoaded", "JobDataPresent", "JobLocal"):
    _ES_FACTORIES[f"{_base}+Health"] = _health_variant(_base)
del _base

_LS_FACTORIES: Dict[str, Callable[[], LocalScheduler]] = {
    "FIFO": FIFOLocalScheduler,
    "SJF": ShortestJobFirstScheduler,
    "LJF": LongestJobFirstScheduler,
    "FIFO-DataAware": DataAwareFIFOScheduler,
}


def make_external_scheduler(name: str, rng: random.Random,
                            **kwargs) -> ExternalScheduler:
    """Instantiate an External Scheduler by registry name."""
    try:
        factory = _ES_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown external scheduler {name!r}; "
            f"known: {sorted(_ES_FACTORIES)}") from None
    return factory(rng, **kwargs)


def make_local_scheduler(name: str) -> LocalScheduler:
    """Instantiate a Local Scheduler by registry name."""
    try:
        factory = _LS_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown local scheduler {name!r}; "
            f"known: {sorted(_LS_FACTORIES)}") from None
    return factory()


def make_dataset_scheduler(
    name: str,
    rng: random.Random,
    popularity_threshold: int = 5,
    check_interval_s: float = 300.0,
    neighbor_hops: int = 2,
    delete_idle_after_s: float = 0.0,
) -> DatasetScheduler:
    """Instantiate a Dataset Scheduler by registry name."""
    if name == "DataDoNothing":
        return DataDoNothing()
    if name == "DataRandom":
        return DataRandom(rng, popularity_threshold, check_interval_s,
                          delete_idle_after_s)
    if name == "DataLeastLoaded":
        return DataLeastLoaded(rng, popularity_threshold, check_interval_s,
                               neighbor_hops, delete_idle_after_s)
    if name == "DataBestClient":
        return DataBestClient(rng, popularity_threshold, check_interval_s,
                              delete_idle_after_s)
    raise ValueError(
        f"unknown dataset scheduler {name!r}; known: {ALL_DS}")

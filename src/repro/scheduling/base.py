"""Scheduler interfaces (the paper's three per-site modules).

The framework is deliberately policy/mechanism split: these classes make
*decisions* only; all mechanism (queues, transfers, storage) lives in
:mod:`repro.grid`.  A particular scheduling *system* (paper terminology) is
a choice of one algorithm for each of the three interfaces.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.grid.job import Job
    from repro.grid.site import Site


class ExternalScheduler(abc.ABC):
    """Decides which site each submitted job runs at.

    The paper deploys one ES per site; all the published algorithms are
    stateless given the information service, so a single instance serves
    every site, using ``job.origin_site`` where locality matters.
    """

    #: Registry name (set by subclasses).
    name: str = "abstract-es"

    @abc.abstractmethod
    def select_site(self, job: "Job", grid: "DataGrid") -> str:
        """Return the name of the execution site for ``job``."""

    def _trace_decision(self, grid: "DataGrid", job: "Job", site: str,
                        **detail) -> None:
        """Emit an ``es.decision`` record (caller checks ``grid.tracer``).

        Subclasses call this after choosing ``site``, passing whatever
        candidate/score detail they consulted.  The detail must be
        computed only under a ``grid.tracer is not None`` guard so
        untraced runs pay a single attribute check and never do the
        bookkeeping work.
        """
        grid.tracer.emit(grid.sim.now, "es.decision", es=self.name,
                         job=job.job_id, site=site, **detail)

    def __repr__(self) -> str:
        return f"<ES {self.name}>"


class LocalScheduler(abc.ABC):
    """Decides the order in which a site's queued jobs get processors.

    Two operating modes:

    * **queue mode** (the default): processor requests are issued at job
      arrival and granted FIFO — or by :meth:`priority` if the scheduler
      declares ``uses_priorities`` (lower value = served sooner).  The
      grant order is fixed at arrival time.
    * **dispatch mode** (``dispatches = True``): the site keeps jobs in a
      pending list and asks :meth:`pick` which one to run each time a
      processor frees up — so the decision can react to *current* state,
      e.g. whether a job's input data has already arrived.
    """

    name: str = "abstract-ls"

    #: Whether the site must be built with a priority-queue compute pool
    #: (queue mode only).
    uses_priorities: bool = False

    #: Whether the site should use the dispatcher path and call `pick`.
    dispatches: bool = False

    def priority(self, job: "Job") -> Optional[int]:
        """Priority for the job's processor request (None = FIFO)."""
        return None

    def pick(self, entries: List["QueuedJob"], now: float) -> Optional[int]:
        """Dispatch mode: index of the entry to run next, or ``None``.

        ``entries`` is non-empty and ordered by arrival; each exposes
        ``job``, ``ready`` (prefetch finished) and ``arrived_at``.
        Returning ``None`` leaves the processor free; the site re-asks
        whenever a job arrives, finishes, or becomes ready — and every
        job's prefetch eventually completes (possibly as a no-op), so a
        ready-only policy is starvation-free.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<LS {self.name}>"


class QueuedJob:
    """A pending job as seen by a dispatch-mode local scheduler."""

    __slots__ = ("job", "arrived_at", "_ready_event")

    def __init__(self, job: "Job", arrived_at: float, ready_event) -> None:
        self.job = job
        self.arrived_at = arrived_at
        self._ready_event = ready_event

    @property
    def ready(self) -> bool:
        """Whether the job's prefetched input data is already local."""
        return self._ready_event.triggered

    def __repr__(self) -> str:
        return (f"<QueuedJob {self.job.job_id} "
                f"{'ready' if self.ready else 'fetching'}>")


class DatasetScheduler(abc.ABC):
    """Decides if/when/where to replicate (or delete) datasets.

    One instance is *attached* per site; it may spawn simulation processes
    (the paper's replication loop is asynchronous and periodic).  The
    passive LRU caching of remotely fetched files is mechanism (it happens
    in the storage element regardless of policy); the DS only adds
    *active* replication on top.
    """

    name: str = "abstract-ds"

    @abc.abstractmethod
    def attach(self, site: "Site", grid: "DataGrid") -> None:
        """Install this policy at ``site`` (spawn processes as needed)."""

    def __repr__(self) -> str:
        return f"<DS {self.name}>"

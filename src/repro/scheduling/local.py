"""Local Scheduler algorithms.

The paper uses FIFO and defers local-scheduling research to prior work
(§4: "Management of internal resources is a problem widely researched in
the past and we use FIFO as a simplification").  We reproduce FIFO and add
two classic alternatives as extensions for ablation studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.scheduling.base import LocalScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.job import Job


class FIFOLocalScheduler(LocalScheduler):
    """First-in-first-out — the paper's local policy."""

    name = "FIFO"
    uses_priorities = False

    def priority(self, job: "Job") -> Optional[int]:
        return None


class ShortestJobFirstScheduler(LocalScheduler):
    """Grant processors to the shortest queued job first (extension).

    Priority is the job's compute runtime in milliseconds (integer so the
    priority queue's tie-break stays FIFO for equal runtimes).
    """

    name = "SJF"
    uses_priorities = True

    def priority(self, job: "Job") -> Optional[int]:
        return int(job.runtime_s * 1000)


class LongestJobFirstScheduler(LocalScheduler):
    """Grant processors to the longest queued job first (extension)."""

    name = "LJF"
    uses_priorities = True

    def priority(self, job: "Job") -> Optional[int]:
        return -int(job.runtime_s * 1000)


class DataAwareFIFOScheduler(LocalScheduler):
    """FIFO with data-aware backfilling (extension).

    The paper's FIFO grants the head-of-line job a processor even while
    its input is still in flight, so the processor idles (that wait is
    part of Figure 4's idle metric).  This dispatcher instead runs the
    *first data-ready* job and leaves the processor free when nothing is
    ready yet — a later-arriving ready job can then overtake a stalled
    head.  Starvation-free: every job's prefetch completes eventually
    (possibly as a storage-pressure no-op), making it ready.
    """

    name = "FIFO-DataAware"
    dispatches = True

    def pick(self, entries, now: float):
        for index, entry in enumerate(entries):
            if entry.ready:
                return index
        return None

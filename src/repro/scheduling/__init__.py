"""The paper's scheduling framework: External, Local, and Dataset schedulers.

Section 3 of the paper encapsulates all scheduling logic in three modules
per site; this package defines the three interfaces and the concrete
algorithm family evaluated in §4–5:

* External Schedulers — :class:`JobRandom`, :class:`JobLeastLoaded`,
  :class:`JobDataPresent`, :class:`JobLocal`.
* Local Schedulers — :class:`FIFOLocalScheduler` (the paper's choice), plus
  shortest-job-first and longest-job-first extensions.
* Dataset Schedulers — :class:`DataDoNothing`, :class:`DataRandom`,
  :class:`DataLeastLoaded`, plus an adaptive extension sketched in the
  paper's future work.

:mod:`~repro.scheduling.registry` maps algorithm names to factories so the
experiment harness can sweep the full 4×3 cross product by name.
"""

from repro.scheduling.base import (
    DatasetScheduler,
    ExternalScheduler,
    LocalScheduler,
)
from repro.scheduling.dataset import (
    DataBestClient,
    DataDoNothing,
    DataLeastLoaded,
    DataRandom,
)
from repro.scheduling.external import (
    JobDataPresent,
    JobLeastLoaded,
    JobLocal,
    JobRandom,
    JobRoundRobin,
)
from repro.scheduling.mapping import MappedExternalScheduler
from repro.scheduling.local import (
    DataAwareFIFOScheduler,
    FIFOLocalScheduler,
    LongestJobFirstScheduler,
    ShortestJobFirstScheduler,
)
from repro.scheduling.adaptive import AdaptiveExternalScheduler
from repro.scheduling.registry import (
    ALL_DS,
    ALL_ES,
    ALL_LS,
    make_dataset_scheduler,
    make_external_scheduler,
    make_local_scheduler,
)

__all__ = [
    "ALL_DS",
    "ALL_ES",
    "ALL_LS",
    "AdaptiveExternalScheduler",
    "DataAwareFIFOScheduler",
    "DataBestClient",
    "DataDoNothing",
    "DataLeastLoaded",
    "DataRandom",
    "DatasetScheduler",
    "ExternalScheduler",
    "FIFOLocalScheduler",
    "JobDataPresent",
    "JobLeastLoaded",
    "JobLocal",
    "JobRandom",
    "JobRoundRobin",
    "LocalScheduler",
    "MappedExternalScheduler",
    "LongestJobFirstScheduler",
    "ShortestJobFirstScheduler",
    "make_dataset_scheduler",
    "make_external_scheduler",
    "make_local_scheduler",
]

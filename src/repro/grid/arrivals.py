"""Open-loop job arrivals (extension).

The paper's users are closed-loop: strictly sequential submission, each
job only after the previous completed (§5.1).  An
:class:`OpenArrivalProcess` instead submits jobs at stochastic intervals
regardless of completions — useful for stress testing, for studying the
grid under offered load it cannot absorb, and for validating the queueing
substrate against M/M/c theory (see
``tests/integration/test_queueing_theory.py``).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.grid.job import Job
from repro.sim.core import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid

#: Builds the i-th job of the stream.
JobFactory = Callable[[int], Job]


class OpenArrivalProcess:
    """Submits jobs with exponential (Poisson) interarrival times.

    Parameters
    ----------
    sim, grid:
        Where to submit.
    rate_per_s:
        Mean arrival rate λ (jobs per simulated second).
    job_factory:
        Called with the arrival index to create each job.
    n_jobs:
        Total jobs to submit (the process then ends).
    rng:
        Interarrival randomness (dedicated stream).
    """

    def __init__(
        self,
        sim: Simulator,
        grid: "DataGrid",
        rate_per_s: float,
        job_factory: JobFactory,
        n_jobs: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        if n_jobs < 1:
            raise ValueError(f"need at least one job, got {n_jobs}")
        self.sim = sim
        self.grid = grid
        self.rate_per_s = rate_per_s
        self.job_factory = job_factory
        self.n_jobs = n_jobs
        self.rng = rng or random.Random(0)
        self.submitted: List[Job] = []
        self.executions: List[Process] = []
        self.process: Optional[Process] = None

    def start(self) -> Process:
        """Begin the arrival stream; returns its driver process.

        The driver completes once the *last job finishes* (not merely
        arrives), so ``sim.run(until=arrivals.start())`` runs the whole
        episode.
        """
        self.process = self.sim.process(self._run(), name="open-arrivals")
        return self.process

    def _run(self):
        for i in range(self.n_jobs):
            yield self.sim.timeout(
                self.rng.expovariate(self.rate_per_s))
            job = self.job_factory(i)
            self.submitted.append(job)
            self.executions.append(self.grid.submit(job))
        # Wait for stragglers so metrics cover every submitted job.
        yield self.sim.all_of(list(self.executions))
        return len(self.submitted)

"""Compute elements: a site's processor pool with utilization accounting.

The paper assumes all processors have identical performance (§3) and each
site owns 2–5 of them (Table 1).  A :class:`ComputeElement` wraps a kernel
:class:`~repro.sim.resources.Resource` (or ``PriorityResource`` for
non-FIFO local schedulers) and integrates *compute-busy* time so Figure 4's
idle metric — "percentage of time when processors are idle (not in use or
waiting for data)" — falls out directly: a processor held by a job that is
still waiting for its input data counts as idle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.core import Simulator
from repro.sim.resources import PriorityResource, Request, Resource


class ComputeElement:
    """A pool of identical processors at one site.

    Parameters
    ----------
    sim:
        The simulator.
    site:
        Owning site name.
    n_processors:
        Pool size (paper: 2–5 per site).
    priority_queue:
        If true, back the pool with a :class:`PriorityResource` so local
        schedulers can reorder the wait queue (extension; the paper's FIFO
        uses a plain FIFO resource).
    """

    def __init__(self, sim: Simulator, site: str, n_processors: int,
                 priority_queue: bool = False) -> None:
        if n_processors < 1:
            raise ValueError(
                f"site {site!r} needs >=1 processor, got {n_processors}")
        self.sim = sim
        self.site = site
        self.n_processors = int(n_processors)
        if priority_queue:
            self.pool: Resource = PriorityResource(sim, n_processors)
        else:
            self.pool = Resource(sim, n_processors)
        self._busy = 0
        self._busy_integral = 0.0
        self._last_change = 0.0
        #: Number of job computations completed here (metrics).
        self.jobs_computed = 0

    def __repr__(self) -> str:
        return (f"<ComputeElement {self.site} {self._busy}"
                f"/{self.n_processors} computing>")

    # -- scheduling interface -------------------------------------------------

    @property
    def waiting(self) -> int:
        """Jobs queued for a processor — the paper's 'load' definition."""
        return self.pool.queued

    @property
    def busy(self) -> int:
        """Processors currently executing job compute phases."""
        return self._busy

    def acquire(self, priority: Optional[int] = None) -> Request:
        """Request a processor; yield the returned event to wait."""
        if priority is not None:
            if not isinstance(self.pool, PriorityResource):
                raise TypeError(
                    f"{self.site!r} compute pool is FIFO; build the site "
                    "with priority_queue=True to use priorities")
            return self.pool.request(priority=priority)
        return self.pool.request()

    def release(self, request: Request) -> None:
        """Return a processor to the pool."""
        self.pool.release(request)

    # -- utilization accounting ------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * self._busy
        self._last_change = now

    def compute_started(self) -> None:
        """Mark one processor as actively computing."""
        self._account()
        self._busy += 1
        if self._busy > self.n_processors:  # pragma: no cover - invariant
            raise RuntimeError(
                f"{self.site!r}: more compute phases than processors")

    def compute_finished(self) -> None:
        """Mark one processor's compute phase as done."""
        self._account()
        self._busy -= 1
        self.jobs_computed += 1
        if self._busy < 0:  # pragma: no cover - invariant
            raise RuntimeError(f"{self.site!r}: negative busy count")

    def compute_aborted(self) -> None:
        """End a compute phase without crediting a completed job.

        Used by fault injection when a running job is killed: the
        busy-time integral stays truthful (the processor *was* burning
        cycles) but ``jobs_computed`` only ever counts real completions.
        """
        self._account()
        self._busy -= 1
        if self._busy < 0:  # pragma: no cover - invariant
            raise RuntimeError(f"{self.site!r}: negative busy count")

    def busy_processor_seconds(self, until: Optional[float] = None) -> float:
        """Integral of computing-processor count over [0, until]."""
        horizon = self.sim.now if until is None else until
        extra = max(0.0, horizon - self._last_change) * self._busy
        return self._busy_integral + extra

    def idle_fraction(self, until: Optional[float] = None) -> float:
        """Average fraction of processors *not* computing over [0, until]."""
        horizon = self.sim.now if until is None else until
        if horizon <= 0:
            return 1.0
        busy = self.busy_processor_seconds(horizon)
        return 1.0 - busy / (self.n_processors * horizon)

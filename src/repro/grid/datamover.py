"""The data mover: fetch-before-execute and asynchronous replication.

Stand-in for GASS-style grid data movement (paper ref [12]).  All movement
funnels through :meth:`DataMover.ensure_local`:

* **Job fetches** ("any data required to run a job is fetched locally
  before the task is run if it is not already present", §4) pin the file
  for the duration of the job so LRU eviction cannot pull it out from
  under a running computation.
* **Replications** (the Dataset Scheduler's asynchronous pushes) are
  unpinned cached replicas.

Concurrent requests for the same (site, dataset) pair share one wire
transfer — without this, a popular dataset would be fetched once per queued
job and the traffic numbers would be meaningless.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, AbstractSet, Dict, FrozenSet, Optional, Tuple

from repro.faults.backoff import BackoffPolicy
from repro.grid.catalog import ReplicaCatalog
from repro.grid.files import DatasetCollection
from repro.grid.storage import StorageElement, StorageFullError
from repro.network.transfer import TransferManager
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.sim.process import Process

_EMPTY: FrozenSet[str] = frozenset()

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.site import Site


class DataUnavailableError(Exception):
    """No replica of a required dataset exists anywhere in the grid."""


class RemoteReadMB(float):
    """MB moved by a degraded *remote read*.

    Overload mode: when a pinned fetch cannot reserve storage for
    ``remote_read_after`` retry rounds, the bytes are streamed to the job
    without being stored.  The traffic is real (it is a plain float for
    every accounting purpose) but the file was never added or pinned, so
    the site must not unpin it afterwards — hence the distinct type.
    """

    __slots__ = ()


class DataMover:
    """Moves datasets between sites over the contended network.

    Parameters
    ----------
    sim, transfers, catalog, datasets:
        Shared grid infrastructure.
    storages:
        Site name → :class:`StorageElement`.
    rng:
        Stream used for tie-breaking among equally-close source replicas.
    """

    def __init__(
        self,
        sim: Simulator,
        transfers: TransferManager,
        catalog: ReplicaCatalog,
        datasets: DatasetCollection,
        storages: Dict[str, StorageElement],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.transfers = transfers
        self.catalog = catalog
        self.datasets = datasets
        self.storages = storages
        self.rng = rng or random.Random(0)
        self._inflight: Dict[Tuple[str, str], Event] = {}
        #: Metrics: replications completed / skipped.
        self.replications_done = 0
        self.replications_skipped = 0
        #: Fault injector, installed by the grid when a plan is active.
        #: ``None`` keeps every fetch on the exact fault-free code path.
        self.faults = None
        #: Domain-event tracer (None = tracing off; one attribute check).
        self.tracer = None
        #: Metrics (fault mode only): transfer attempts that failed or
        #: stalled, and retries that switched to an alternate replica.
        self.transfers_failed = 0
        self.failovers = 0
        #: Overload policy + shared saturation counters, installed by the
        #: grid when an :class:`~repro.grid.overload.OverloadPolicy` is
        #: active.  ``None`` keeps every fetch on the exact pre-overload
        #: code path (no reservations, no remote reads).
        self.overload = None
        self.overload_stats = None
        #: Replication pushes skipped because the target raised
        #: :class:`StorageFullError` mid-push (satellite metric).
        self.replications_skipped_full = 0
        #: Observed-health monitor (``None`` = off).  When installed,
        #: successful fetches feed the link breakers (failures arrive
        #: through the transfer manager's abort hook, never from here —
        #: one channel, no double counting), open site breakers veto
        #: replication targets, and open link breakers deprioritize
        #: sources.
        self.health = None
        #: Durability manager (``None`` = off).  When installed, local
        #: hits and wire deliveries are checksum-verified: a corrupt
        #: local copy falls through to a fresh remote fetch, a corrupt
        #: delivery quarantines its source and fails over.
        self.durability = None
        #: Lazily built shared-helper policy reproducing the plan's
        #: capped exponential transfer backoff bit for bit.
        self._transfer_backoff = None

    # -- public API ----------------------------------------------------------

    def ensure_local(self, site: str, dataset_name: str, pin: bool = False,
                     purpose: str = "job-fetch",
                     best_effort: bool = False,
                     preferred_source: Optional[str] = None) -> Process:
        """Make ``dataset_name`` present at ``site``.

        Returns a process whose value is the MB of *new* network traffic
        this call initiated (0 if the file was present or the call joined
        an in-flight transfer).  ``preferred_source`` steers the fetch at
        a specific replica when it is viable (repair placement uses
        this); the ordinary closest-replica choice applies otherwise.

        If the site's storage is full of pinned files, a normal call waits
        (retrying periodically) until space frees — pins are bounded by the
        processor count, so space always frees eventually in a sane
        configuration.  A ``best_effort`` call (prefetching, replication)
        gives up instead, returning 0.
        """
        return self.sim.process(
            self._ensure(site, dataset_name, pin, purpose,
                         preferred_source=preferred_source,
                         best_effort=best_effort),
            name=f"fetch:{dataset_name}@{site}")

    def replicate(self, dataset_name: str, from_site: str,
                  to_site: str) -> Process:
        """Asynchronously copy a dataset (Dataset Scheduler push).

        Returns a process whose value is the MB moved (0 if the target
        already held or could not accept the file).  Unlike job fetches the
        copy is best-effort: a target without space simply skips.
        """
        return self.sim.process(
            self._replicate(dataset_name, from_site, to_site),
            name=f"replicate:{dataset_name}->{to_site}")

    def is_inflight(self, site: str, dataset_name: str) -> bool:
        """Whether a transfer of the dataset toward the site is running."""
        return (site, dataset_name) in self._inflight

    # -- internals -----------------------------------------------------------

    def _replicate(self, dataset_name: str, from_site: str, to_site: str):
        dataset = self.datasets.get(dataset_name)
        storage = self.storages[to_site]
        if dataset_name in storage or self.is_inflight(to_site, dataset_name):
            self.replications_skipped += 1
            self._trace_replicate_skip(dataset_name, to_site,
                                       "already-present-or-inflight")
            return 0.0
        if (self.health is not None
                and not self.health.allow_replication(to_site)):
            # The Dataset Scheduler must not push replicas at a site the
            # breaker currently quarantines.
            self.replications_skipped += 1
            self._trace_replicate_skip(dataset_name, to_site, "breaker-open")
            return 0.0
        if not storage.can_fit(dataset.size_mb):
            self.replications_skipped += 1
            self._trace_replicate_skip(dataset_name, to_site, "no-space")
            return 0.0
        try:
            moved = yield self.sim.process(
                self._ensure(to_site, dataset_name, pin=False,
                             purpose="replication",
                             preferred_source=from_site, best_effort=True))
        except StorageFullError:
            # An aggressive fault/eviction interleaving can pin the target
            # solid between the can_fit pre-check and the landing.  Skip
            # the push instead of letting the error kill the DS loop.
            self.replications_skipped += 1
            self.replications_skipped_full += 1
            self._trace_replicate_skip(dataset_name, to_site, "storage-full")
            return 0.0
        if moved > 0:
            self.replications_done += 1
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, "replicate.done",
                                 dataset=dataset_name, source=from_site,
                                 site=to_site, size_mb=moved)
        else:
            self.replications_skipped += 1
            self._trace_replicate_skip(dataset_name, to_site, "not-moved")
        return moved

    def _trace_replicate_skip(self, dataset_name: str, to_site: str,
                              reason: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "replicate.skip",
                             dataset=dataset_name, site=to_site,
                             reason=reason)

    #: How long a blocked (storage-full) fetch waits before re-checking.
    RETRY_INTERVAL_S = 30.0
    #: Retries before declaring the configuration broken (storage smaller
    #: than what the site's own pinned working set needs, which no amount
    #: of waiting can fix).  3000 × 30 s = a simulated day of waiting.
    MAX_RETRIES = 3_000

    def _ensure(self, site: str, dataset_name: str, pin: bool, purpose: str,
                preferred_source: Optional[str], best_effort: bool = False):
        dataset = self.datasets.get(dataset_name)
        storage = self.storages[site]
        reservations = (self.overload is not None
                        and self.overload.storage_reservations)
        retries = 0
        while True:
            if dataset_name in storage:
                if (self.durability is None
                        or self.durability.verify_local(site, dataset_name)):
                    storage.touch(dataset_name, self.sim.now)
                    if pin:
                        storage.pin(dataset_name)
                    if self.tracer is not None:
                        self.tracer.emit(self.sim.now, "fetch.hit", site=site,
                                         dataset=dataset_name,
                                         purpose=purpose, pin=pin)
                    return 0.0
                # Checksum mismatch: the copy was quarantined — fall
                # through to a fresh remote fetch of clean bytes.
                if self.durability.is_lost(dataset_name):
                    # No clean replica exists anywhere; fetching cannot
                    # succeed, so fail fast instead of starving.
                    if best_effort:
                        return 0.0
                    raise DataUnavailableError(
                        f"dataset {dataset_name!r} is unrecoverably lost")
            key = (site, dataset_name)
            inflight = self._inflight.get(key)
            if inflight is not None:
                # Join the existing transfer, then re-check (the file could
                # in principle be evicted in the same instant by another
                # arrival; the loop handles that by re-fetching).
                if self.tracer is not None:
                    self.tracer.emit(self.sim.now, "fetch.join", site=site,
                                     dataset=dataset_name, purpose=purpose)
                yield inflight
                continue
            if reservations:
                # Reserve space *before* the bytes fly: concurrent inbound
                # transfers each hold their own promise, so they can never
                # jointly overcommit the element (the latent can_fit race).
                if not storage.reserve(dataset, self.sim.now):
                    if best_effort:
                        return 0.0
                    retries += 1
                    if (pin and self.overload.remote_read_after > 0
                            and retries >= self.overload.remote_read_after):
                        # Storage is too pinned to promise space; degrade
                        # to streaming the bytes past the cache.
                        moved = yield from self._remote_read(
                            site, dataset, dataset_name, purpose,
                            preferred_source)
                        return moved
                    if retries > self.MAX_RETRIES:
                        raise StorageFullError(
                            f"fetch of {dataset_name!r} to {site!r} starved:"
                            f" storage permanently too pinned "
                            f"(capacity {storage.capacity_mb} MB)")
                    yield self.sim.timeout(self.RETRY_INTERVAL_S)
                    continue
            elif not storage.can_fit(dataset.size_mb):
                # Pinned files block eviction.  Pins are bounded (one input
                # set per processor + the primary copies), so waiting works
                # unless the configuration is fundamentally too small.
                if best_effort:
                    return 0.0
                retries += 1
                if retries > self.MAX_RETRIES:
                    raise StorageFullError(
                        f"fetch of {dataset_name!r} to {site!r} starved: "
                        f"storage permanently too pinned "
                        f"(capacity {storage.capacity_mb} MB)")
                yield self.sim.timeout(self.RETRY_INTERVAL_S)
                continue
            arrival = Event(self.sim)
            self._inflight[key] = arrival
            try:
                if self.faults is None:
                    source = self._pick_source(site, dataset_name,
                                               preferred_source)
                    transfer = self.transfers.start(
                        source, site, dataset.size_mb, purpose=purpose,
                        metadata={"dataset": dataset_name})
                    yield transfer.done
                    if self.health is not None:
                        self.health.record_transfer_success(source, site)
                else:
                    delivered = yield from self._fetch_with_faults(
                        site, dataset, dataset_name, purpose,
                        preferred_source, best_effort)
                    if not delivered:
                        return 0.0
                if reservations:
                    # The reservation guarantees the landing fits — no
                    # retry loop, no eviction, no StorageFullError.
                    storage.commit_reservation(dataset, self.sim.now)
                else:
                    # Space may have been pinned away while the bytes were
                    # in flight; retry the landing rather than dropping
                    # the data.
                    while True:
                        try:
                            storage.add(dataset, self.sim.now, pin=False)
                            break
                        except StorageFullError:
                            if best_effort:
                                return dataset.size_mb  # traffic was spent
                            retries += 1
                            if retries > self.MAX_RETRIES:
                                raise
                            yield self.sim.timeout(self.RETRY_INTERVAL_S)
                self.catalog.register(dataset_name, site,
                                      size_mb=dataset.size_mb)
                if self.durability is not None:
                    # The verified delivery overwrote whatever was at the
                    # site before; any corruption marker is now stale.
                    self.durability.on_landed(site, dataset_name)
            finally:
                if reservations:
                    # No-op after commit; on abort/failover/kill paths it
                    # returns the promised space to the element.
                    storage.release_reservation(dataset_name)
                self._inflight.pop(key, None)
                if not arrival.triggered:
                    arrival.succeed()
            if pin:
                storage.pin(dataset_name)
            return dataset.size_mb

    def _remote_read(self, site: str, dataset, dataset_name: str,
                     purpose: str, preferred_source: Optional[str]):
        """Stream a dataset's bytes to a job without storing them.

        The degraded endpoint of a pinned fetch into a too-pinned element:
        the traffic is paid, nothing lands, nothing is pinned, and the
        catalog is untouched.  Returns :class:`RemoteReadMB`.
        """
        if self.faults is None:
            source = self._pick_source(site, dataset_name, preferred_source)
            transfer = self.transfers.start(
                source, site, dataset.size_mb, purpose=purpose,
                metadata={"dataset": dataset_name, "remote_read": True})
            yield transfer.done
            if self.health is not None:
                self.health.record_transfer_success(source, site)
        else:
            delivered = yield from self._fetch_with_faults(
                site, dataset, dataset_name, purpose, preferred_source,
                best_effort=False)
            if not delivered:  # pragma: no cover - defensive
                return 0.0
        if self.overload_stats is not None:
            self.overload_stats.remote_reads += 1
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "fetch.remote", site=site,
                             dataset=dataset_name, purpose=purpose,
                             size_mb=dataset.size_mb)
        return RemoteReadMB(dataset.size_mb)

    def _fetch_with_faults(self, site: str, dataset, dataset_name: str,
                           purpose: str, preferred_source: Optional[str],
                           best_effort: bool):
        """Run one wire fetch under fault injection.

        Retries failed/stalled transfers with capped exponential backoff,
        failing over to alternate replica sources, up to the plan's
        ``transfer_max_retries``.  Returns ``True`` once the bytes arrive;
        ``False`` if a best-effort fetch gave up; raises
        :class:`DataUnavailableError` when a required fetch exhausts its
        budget (the job-level recovery then retries the whole job).
        """
        plan = self.faults.plan
        avoid: set = set()
        attempt = 0
        while True:
            attempt += 1
            if not self.faults.is_up(site):
                # The destination died while we were waiting/retrying:
                # pushing bytes at a dead site is pointless.  The waiting
                # job (if any) is being killed by the same outage.
                if best_effort:
                    return False
                raise DataUnavailableError(
                    f"destination {site!r} is down")
            try:
                source = self._pick_source(site, dataset_name,
                                           preferred_source,
                                           avoid=frozenset(avoid))
            except DataUnavailableError:
                if best_effort:
                    return False
                raise
            # The checksum verdict judges the bytes as they were *read*:
            # snapshot the source's integrity when the wire transfer
            # starts, not when it lands (a scrub or fresh landing at the
            # source mid-flight must not launder — or retroactively
            # taint — the payload).
            tainted = (self.durability is not None
                       and self.durability.source_taint(source, dataset_name))
            transfer = self.transfers.start(
                source, site, dataset.size_mb, purpose=purpose,
                metadata={"dataset": dataset_name})
            if transfer.finished_at is not None and not transfer.failed:
                # local / empty move completed instantly
                if self._delivery_ok(source, site, dataset_name, tainted):
                    return True
            else:
                # Guard against stalls (dead links, source dying
                # silently): abort if the transfer exceeds a generous
                # multiple of its nominal uncontended time.  The
                # allowance doubles per attempt so contention alone
                # cannot starve a fetch forever.
                allowance = max(
                    plan.transfer_timeout_min_s,
                    plan.transfer_timeout_factor
                    * self.transfers.base_transfer_time(source, site,
                                                        dataset.size_mb))
                allowance *= 2 ** (attempt - 1)
                deadline = self.sim.timeout(allowance)
                yield self.sim.any_of([transfer.done, deadline])
                if transfer.finished_at is None:
                    self.transfers.abort(transfer, reason="stalled")
                if (not transfer.failed
                        and self._delivery_ok(source, site, dataset_name,
                                              tainted)):
                    return True
            self.transfers_failed += 1
            avoid.add(source)
            if (self.durability is not None
                    and self.durability.is_lost(dataset_name)):
                # The rejected delivery came from the last replica; no
                # amount of failover can produce clean bytes now.
                if best_effort:
                    return False
                raise DataUnavailableError(
                    f"dataset {dataset_name!r} is unrecoverably lost")
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now, "transfer.retry", dataset=dataset_name,
                    site=site, source=source, attempt=attempt,
                    retry=attempt <= plan.transfer_max_retries)
            if attempt > plan.transfer_max_retries:
                if best_effort:
                    return False
                raise DataUnavailableError(
                    f"fetch of {dataset_name!r} to {site!r} failed "
                    f"{attempt} times; giving up")
            self.failovers += 1
            if self._transfer_backoff is None:
                self._transfer_backoff = BackoffPolicy(
                    plan.transfer_backoff_base_s,
                    plan.transfer_backoff_cap_s)
            backoff = self._transfer_backoff.delay(attempt)
            if backoff > 0:
                yield self.sim.timeout(backoff)

    def _delivery_ok(self, source: str, site: str, dataset_name: str,
                     tainted: bool) -> bool:
        """Post-delivery bookkeeping for one completed wire transfer.

        Verifies the end-to-end checksum when durability is armed
        (``tainted`` is the source-integrity snapshot taken at launch):
        a clean delivery feeds the health layer's success channel; a
        corrupt one quarantines its source (done inside
        ``verify_transfer``) and counts as a failed attempt, so the
        caller fails over exactly like a dropped transfer.
        """
        if (self.durability is not None
                and not self.durability.verify_transfer(source, site,
                                                        dataset_name,
                                                        tainted)):
            return False
        if self.health is not None:
            self.health.record_transfer_success(source, site)
        return True

    def _pick_source(self, dest: str, dataset_name: str,
                     preferred: Optional[str],
                     avoid: AbstractSet[str] = _EMPTY) -> str:
        locations = self.catalog.locations(dataset_name)
        locations = [s for s in locations if s != dest]
        if self.faults is not None:
            # Down sites cannot serve bytes.  Sources that already failed
            # this fetch (``avoid``) are deprioritized, not banned: if they
            # hold the only replica we retry them (they may have recovered).
            locations = [s for s in locations if self.faults.is_up(s)]
            if avoid:
                fresh = [s for s in locations if s not in avoid]
                if fresh:
                    locations = fresh
        if self.health is not None:
            # Open link breakers deprioritize, never ban: a source behind
            # a flaky link is still used when it holds the only replica,
            # and each success there closes the breaker again.
            clear = [s for s in locations
                     if not self.health.link_open(s, dest)]
            if clear:
                locations = clear
        if preferred is not None and preferred in locations:
            return preferred
        if not locations:
            raise DataUnavailableError(
                f"no replica of {dataset_name!r} available for {dest!r}")
        # Closest replica by hop count; ties broken randomly so one popular
        # source does not absorb all traffic.
        router = self.transfers.router
        best_hops = min(router.hops(src, dest) for src in locations)
        closest = [s for s in locations if router.hops(s, dest) == best_hops]
        if len(closest) == 1:
            return closest[0]
        return self.rng.choice(closest)

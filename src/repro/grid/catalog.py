"""The replica catalog: which sites hold which datasets.

Stand-in for the Globus replica-catalog / MDS location queries the paper's
schedulers would issue on a real grid.  The catalog is authoritative and
instantaneous by default; staleness can be injected at the
:class:`~repro.grid.info.InformationService` layer instead, keeping this
class a simple consistent index.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import random

from repro.grid.files import Dataset, DatasetCollection


class ReplicaCatalog:
    """Maps dataset names to the set of sites holding a replica."""

    def __init__(self) -> None:
        self._locations: Dict[str, Set[str]] = {}
        #: Cumulative counters for metrics.
        self.registrations = 0
        self.deregistrations = 0

    def register(self, dataset_name: str, site: str) -> None:
        """Record that ``site`` now holds ``dataset_name``."""
        self._locations.setdefault(dataset_name, set()).add(site)
        self.registrations += 1

    def deregister(self, dataset_name: str, site: str) -> None:
        """Remove a replica record (idempotent)."""
        sites = self._locations.get(dataset_name)
        if sites is not None and site in sites:
            sites.discard(site)
            self.deregistrations += 1

    def locations(self, dataset_name: str) -> List[str]:
        """Sites currently holding the dataset (sorted for determinism)."""
        return sorted(self._locations.get(dataset_name, ()))

    def has_replica(self, dataset_name: str, site: str) -> bool:
        """Whether ``site`` holds ``dataset_name``."""
        return site in self._locations.get(dataset_name, ())

    def replica_count(self, dataset_name: str) -> int:
        """Number of replicas of the dataset."""
        return len(self._locations.get(dataset_name, ()))

    def datasets_at(self, site: str) -> List[str]:
        """All datasets with a replica at ``site``."""
        return sorted(
            name for name, sites in self._locations.items() if site in sites)

    def total_replicas(self) -> int:
        """Total replica records in the grid."""
        return sum(len(sites) for sites in self._locations.values())

    @staticmethod
    def initial_uniform_distribution(
        datasets: DatasetCollection,
        sites: List[str],
        rng: random.Random,
    ) -> Dict[str, str]:
        """The paper's initial mapping: one replica per dataset, placed
        uniformly at random across sites ("data is uniformly distributed
        across the grid", initially "only one replica per dataset").

        Returns ``{dataset_name: site}``; the caller performs the actual
        placement so storage accounting stays in one place.
        """
        if not sites:
            raise ValueError("no sites to distribute datasets over")
        return {ds.name: rng.choice(sites) for ds in datasets}

"""The replica catalog: which sites hold which datasets.

Stand-in for the Globus replica-catalog / MDS location queries the paper's
schedulers would issue on a real grid.  The catalog is authoritative and
instantaneous by default; staleness can be injected at the
:class:`~repro.grid.info.InformationService` layer instead, keeping this
class a simple consistent index.

Schedulers hit this object on every job, so the indices are maintained
*incrementally*:

* per-dataset location lists stay sorted via :mod:`bisect` insertion, so
  :meth:`locations` never re-sorts;
* a per-site dataset→size index makes :meth:`datasets_at` and the
  byte-weighted queries (:meth:`bytes_at`, :meth:`bytes_present_by_site`)
  independent of the total number of replica records in the grid.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Set

import random

from repro.grid.files import Dataset, DatasetCollection

#: Shared immutable empty result for queries about unknown names/sites.
_EMPTY_SET: frozenset = frozenset()


class ReplicaCatalog:
    """Maps dataset names to the set of sites holding a replica."""

    def __init__(self) -> None:
        self._locations: Dict[str, Set[str]] = {}
        #: Incrementally maintained sorted view of each location set.
        self._sorted_locations: Dict[str, List[str]] = {}
        #: site → {dataset name: size in MB} (0.0 when registered sizeless).
        self._site_index: Dict[str, Dict[str, float]] = {}
        #: Cumulative counters for metrics.
        self.registrations = 0
        self.deregistrations = 0
        #: Domain-event tracer + clock (None = tracing off).  The catalog
        #: has no simulator reference of its own, so the grid hands one in
        #: alongside the tracer via :meth:`set_tracer`.
        self._tracer = None
        self._sim = None
        #: Membership listeners, notified on every *actual* replica
        #: addition/removal (idempotent re-registrations are not membership
        #: changes).  The stale-view layer subscribes here; the list is
        #: empty in ordinary builds so the hot path pays one truth test.
        self._listeners: list = []

    def set_tracer(self, tracer, sim) -> None:
        """Wire a tracer (and the simulator supplying timestamps)."""
        self._tracer = tracer
        self._sim = sim

    def add_listener(self, listener) -> None:
        """Subscribe to membership changes.

        ``listener.on_register(dataset, site, size_mb)`` is called when a
        replica record appears and ``listener.on_deregister(dataset, site)``
        when one disappears — synchronously, after this catalog's own
        indices are updated.
        """
        self._listeners.append(listener)

    def register(self, dataset_name: str, site: str,
                 size_mb: float = 0.0) -> None:
        """Record that ``site`` now holds ``dataset_name``.

        ``size_mb`` feeds the per-site byte index; callers that move real
        data (the data mover, initial placement) pass the dataset size so
        byte-weighted queries stay meaningful.
        """
        sites = self._locations.setdefault(dataset_name, set())
        if site not in sites:
            sites.add(site)
            bisect.insort(
                self._sorted_locations.setdefault(dataset_name, []), site)
            if self._tracer is not None:
                self._tracer.emit(
                    self._sim.now, "catalog.register", dataset=dataset_name,
                    site=site, size_mb=size_mb, replicas=len(sites))
            if self._listeners:
                for listener in self._listeners:
                    listener.on_register(dataset_name, site, size_mb)
        self._site_index.setdefault(site, {})[dataset_name] = size_mb
        self.registrations += 1

    def deregister(self, dataset_name: str, site: str) -> None:
        """Remove a replica record (idempotent)."""
        sites = self._locations.get(dataset_name)
        if sites is not None and site in sites:
            sites.discard(site)
            ordered = self._sorted_locations[dataset_name]
            del ordered[bisect.bisect_left(ordered, site)]
            held = self._site_index.get(site)
            if held is not None:
                held.pop(dataset_name, None)
            self.deregistrations += 1
            if self._tracer is not None:
                self._tracer.emit(
                    self._sim.now, "catalog.deregister",
                    dataset=dataset_name, site=site, replicas=len(sites))
            if self._listeners:
                for listener in self._listeners:
                    listener.on_deregister(dataset_name, site)

    def locations(self, dataset_name: str) -> List[str]:
        """Sites currently holding the dataset (sorted for determinism)."""
        return list(self._sorted_locations.get(dataset_name, ()))

    def location_set(self, dataset_name: str) -> Set[str]:
        """The holder set itself (shared, read-only — do not mutate)."""
        return self._locations.get(dataset_name, _EMPTY_SET)

    def has_replica(self, dataset_name: str, site: str) -> bool:
        """Whether ``site`` holds ``dataset_name``."""
        return site in self._locations.get(dataset_name, ())

    def replica_count(self, dataset_name: str) -> int:
        """Number of replicas of the dataset."""
        return len(self._locations.get(dataset_name, ()))

    def replica_size_mb(self, dataset_name: str, site: str
                        ) -> Optional[float]:
        """Recorded size of the replica at ``site`` (None if absent)."""
        return self._site_index.get(site, {}).get(dataset_name)

    def replica_records(self) -> List[tuple]:
        """Every ``(dataset, site, size_mb)`` record, sorted (snapshots)."""
        return sorted(
            (name, site, self._site_index.get(site, {}).get(name, 0.0))
            for name, sites in self._locations.items()
            for site in sites)

    def datasets_at(self, site: str) -> List[str]:
        """All datasets with a replica at ``site``."""
        return sorted(self._site_index.get(site, ()))

    def bytes_at(self, site: str) -> float:
        """Total MB of replica data recorded at ``site``."""
        return sum(self._site_index.get(site, {}).values())

    def bytes_present_by_site(
        self,
        dataset_names: Iterable[str],
        sizes: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """MB of the named datasets present per site (sites holding > 0).

        Iterates replicas of the *requested* datasets rather than scanning
        every site, so the cost is O(inputs × replicas-per-input) — the
        fast path behind ``JobDataPresent``'s most-bytes-present fallback.
        ``sizes`` overrides the sizes recorded at registration (useful when
        the caller owns the authoritative dataset collection); names appear
        once per occurrence, so duplicated inputs count twice, matching a
        per-input scan.
        """
        present: Dict[str, float] = {}
        for name in dataset_names:
            holders = self._locations.get(name)
            if not holders:
                continue
            for site in holders:
                if sizes is not None:
                    size = sizes[name]
                else:
                    size = self._site_index[site][name]
                present[site] = present.get(site, 0.0) + size
        return present

    def invalidate_site(self, site: str) -> List[str]:
        """Drop every replica record at ``site`` (permanent site loss).

        Called by fault injection when a site dies for good: its disks are
        gone, so the catalog must stop advertising anything it held.
        Returns the invalidated dataset names (sorted).
        """
        names = self.datasets_at(site)
        for name in names:
            self.deregister(name, site)
        return names

    def total_replicas(self) -> int:
        """Total replica records in the grid."""
        return sum(len(sites) for sites in self._locations.values())

    @staticmethod
    def initial_uniform_distribution(
        datasets: DatasetCollection,
        sites: List[str],
        rng: random.Random,
    ) -> Dict[str, str]:
        """The paper's initial mapping: one replica per dataset, placed
        uniformly at random across sites ("data is uniformly distributed
        across the grid", initially "only one replica per dataset").

        Returns ``{dataset_name: site}``; the caller performs the actual
        placement so storage accounting stays in one place.
        """
        if not sites:
            raise ValueError("no sites to distribute datasets over")
        return {ds.name: rng.choice(sites) for ds in datasets}

"""Per-site storage with LRU replacement.

The paper: "Data may be fetched from a remote site for a particular job, in
which case it is cached and managed using LRU. A cached dataset is then
available to the grid as a replica."  Files that a running (or queued) job
needs are *pinned* and never evicted; eviction notifies a callback so the
replica catalog stays consistent.

Inbound transfers can additionally *reserve* space before their bytes
arrive (:meth:`StorageElement.reserve` / :meth:`release_reservation`):
reserved MB is unavailable to every other add or reservation, so two
concurrent transfers into a nearly-full element can never overcommit
capacity.  The reservation ledger maintains ``used + reserved <=
capacity`` at all times; with no reservations outstanding every method
behaves exactly as it did before the ledger existed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.grid.files import Dataset


class StorageFullError(Exception):
    """Raised when a file cannot fit even after evicting everything legal."""


class _Entry:
    __slots__ = ("dataset", "last_access", "pins", "arrived_at")

    def __init__(self, dataset: Dataset, now: float) -> None:
        self.dataset = dataset
        self.last_access = now
        self.pins = 0
        self.arrived_at = now


class StorageElement:
    """LRU-managed storage at one site.

    Parameters
    ----------
    site:
        Owning site name (for error messages and catalog callbacks).
    capacity_mb:
        Total space.  ``float('inf')`` disables eviction.
    on_evict:
        Called with the evicted :class:`Dataset` (the grid uses this to
        deregister the replica from the catalog).
    """

    def __init__(
        self,
        site: str,
        capacity_mb: float = float("inf"),
        on_evict: Optional[Callable[[Dataset], None]] = None,
    ) -> None:
        if capacity_mb <= 0:
            raise ValueError(
                f"storage capacity must be positive, got {capacity_mb!r}")
        self.site = site
        self.capacity_mb = capacity_mb
        self.on_evict = on_evict
        self._entries: Dict[str, _Entry] = {}
        self._used_mb = 0.0
        #: Space promised to in-flight transfers (dataset name -> MB).
        self._reservations: Dict[str, float] = {}
        self._reserved_mb = 0.0
        #: Cumulative number of evictions (metrics).
        self.evictions = 0
        #: Per-dataset local access counts (the Dataset Scheduler's
        #: popularity signal; reset by the DS after replication).
        self.access_counts: Dict[str, int] = {}
        #: High-water marks (metrics; tracked unconditionally — reads and
        #: max() never change behaviour).
        self.peak_used_mb = 0.0
        self.peak_reserved_mb = 0.0
        #: Tolerate unpins of an unpinned entry.  Set by the durability
        #: layer, whose quarantine removes pinned files: a refetch then
        #: restarts the pin count, so jobs that pinned the *old* copy
        #: legitimately unpin more times than the new entry was pinned.
        self.forgive_unpins = False

    def __repr__(self) -> str:
        return (f"<StorageElement {self.site} {self._used_mb:.0f}"
                f"/{self.capacity_mb} MB, {len(self._entries)} files>")

    # -- queries -------------------------------------------------------------

    @property
    def used_mb(self) -> float:
        """MB currently stored."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        """MB available without eviction (ignoring reservations)."""
        return self.capacity_mb - self._used_mb

    @property
    def reserved_mb(self) -> float:
        """MB promised to in-flight transfers."""
        return self._reserved_mb

    def is_reserved(self, name: str) -> bool:
        """Whether an inbound transfer holds a reservation for the file."""
        return name in self._reservations

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def files(self) -> List[str]:
        """Names of stored files."""
        return list(self._entries)

    def datasets(self) -> List[Dataset]:
        """Stored datasets."""
        return [e.dataset for e in self._entries.values()]

    def is_pinned(self, name: str) -> bool:
        """Whether the file is protected from eviction."""
        entry = self._entries.get(name)
        return entry is not None and entry.pins > 0

    # -- mutation ------------------------------------------------------------

    def add(self, dataset: Dataset, now: float, pin: bool = False) -> None:
        """Store a dataset, LRU-evicting unpinned files to make room.

        Raises
        ------
        StorageFullError
            If the file is larger than what eviction can free.
        """
        if dataset.name in self._entries:
            self.touch(dataset.name, now)
            if pin:
                self.pin(dataset.name)
            return
        # A landing file absorbs its own hold: the reservation promised
        # exactly this space, so converting it to residence can never
        # double-book (a resident file needs no reservation).
        self.release_reservation(dataset.name)
        if dataset.size_mb > self.capacity_mb:
            raise StorageFullError(
                f"{dataset.name!r} ({dataset.size_mb} MB) exceeds total "
                f"capacity of {self.site!r} ({self.capacity_mb} MB)")
        self._make_room(dataset.size_mb)
        entry = _Entry(dataset, now)
        if pin:
            entry.pins = 1
        self._entries[dataset.name] = entry
        self._used_mb += dataset.size_mb
        if self._used_mb > self.peak_used_mb:
            self.peak_used_mb = self._used_mb

    def touch(self, name: str, now: float) -> None:
        """Record an access (refreshes LRU position)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(f"{name!r} not stored at {self.site!r}")
        entry.last_access = now

    def record_access(self, name: str, now: float) -> int:
        """Count a job access for popularity tracking; returns new count."""
        self.touch(name, now)
        count = self.access_counts.get(name, 0) + 1
        self.access_counts[name] = count
        return count

    def reset_popularity(self, name: str) -> None:
        """Reset the popularity counter (after the DS replicates a file)."""
        self.access_counts[name] = 0

    def pin(self, name: str) -> None:
        """Protect a file from eviction (counted; pair with unpin)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(f"{name!r} not stored at {self.site!r}")
        entry.pins += 1

    def unpin(self, name: str) -> None:
        """Release one pin."""
        entry = self._entries.get(name)
        if entry is None:
            # The file may legitimately have been force-removed; ignore.
            return
        if entry.pins <= 0:
            if self.forgive_unpins:
                return
            raise ValueError(f"{name!r} at {self.site!r} is not pinned")
        entry.pins -= 1

    def remove(self, name: str) -> None:
        """Explicitly delete a file (DS-driven deletion; pins ignored)."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise KeyError(f"{name!r} not stored at {self.site!r}")
        self._release(entry.dataset.size_mb)
        self.access_counts.pop(name, None)

    def _release(self, size_mb: float) -> None:
        self._used_mb -= size_mb
        # Repeated float subtraction can leave a ±1e-13 residue; an empty
        # store holds exactly nothing.
        if not self._entries:
            self._used_mb = 0.0

    def idle_files(self, now: float, older_than_s: float) -> List[str]:
        """Unpinned files not accessed for at least ``older_than_s``.

        Used by Dataset Schedulers that implement the paper's "delete
        local files" responsibility (§3).
        """
        if older_than_s < 0:
            raise ValueError(f"older_than_s must be >= 0, got {older_than_s}")
        return sorted(
            e.dataset.name for e in self._entries.values()
            if e.pins == 0 and now - e.last_access >= older_than_s
        )

    def can_fit(self, size_mb: float) -> bool:
        """Whether ``size_mb`` could be stored after legal evictions.

        Reserved space counts as occupied: a fit promised to an in-flight
        transfer is never promised twice.
        """
        available = self.free_mb - self._reserved_mb
        if size_mb <= available:
            return True
        evictable = sum(
            e.dataset.size_mb for e in self._entries.values() if e.pins == 0)
        return size_mb <= available + evictable

    # -- reservations --------------------------------------------------------

    def reserve(self, dataset: Dataset, now: float) -> bool:
        """Set space aside for an inbound transfer of ``dataset``.

        Evicts unpinned files (LRU-first) if needed so that ``used +
        reserved + size <= capacity`` afterwards.  Returns ``False`` —
        never raises — when pinned files and other reservations make
        that impossible, so callers can wait or degrade.  Reserving a
        name that is already reserved or already resident is a no-op
        returning ``True``.  Pair with :meth:`release_reservation`.
        """
        if dataset.name in self._reservations or dataset.name in self._entries:
            return True
        size = dataset.size_mb
        if size > self.capacity_mb or not self.can_fit(size):
            return False
        self._make_room(size)
        self._reservations[dataset.name] = size
        self._reserved_mb += size
        if self._reserved_mb > self.peak_reserved_mb:
            self.peak_reserved_mb = self._reserved_mb
        return True

    def release_reservation(self, name: str) -> None:
        """Drop a reservation (transfer landed, aborted, or failed over).

        Tolerates unknown names so abort paths can release
        unconditionally.
        """
        size = self._reservations.pop(name, None)
        if size is None:
            return
        self._reserved_mb -= size
        if not self._reservations:
            # Same zero-residue rule as ``_release``: no outstanding
            # reservations means exactly nothing is reserved.
            self._reserved_mb = 0.0

    def commit_reservation(self, dataset: Dataset, now: float,
                           pin: bool = False) -> None:
        """Land a reserved transfer: release the hold, store the file.

        Because every add and reservation since :meth:`reserve` kept
        ``used + reserved <= capacity`` with this hold included, the add
        is guaranteed to fit without even evicting.
        """
        self.release_reservation(dataset.name)
        self.add(dataset, now, pin=pin)

    def _make_room(self, size_mb: float) -> None:
        # Reserved space is spoken for: eviction must clear enough for
        # this add *and* every outstanding reservation.
        available = self.free_mb - self._reserved_mb
        if size_mb <= available:
            return
        # Check feasibility *before* evicting anything: a failed add must
        # be atomic — evicting victims and then raising would silently
        # shrink the cache on every doomed attempt.
        victims = sorted(
            (e for e in self._entries.values() if e.pins == 0),
            key=lambda e: e.last_access,
        )
        evictable_mb = sum(e.dataset.size_mb for e in victims)
        if size_mb > available + evictable_mb:
            pinned_mb = sum(
                e.dataset.size_mb for e in self._entries.values()
                if e.pins > 0)
            raise StorageFullError(
                f"cannot free {size_mb} MB at {self.site!r}: "
                f"{pinned_mb:.0f} MB pinned of {self.capacity_mb} MB capacity")
        # Evict unpinned files, least-recently-used first.
        for entry in victims:
            if size_mb <= self.free_mb - self._reserved_mb:
                break
            del self._entries[entry.dataset.name]
            self.access_counts.pop(entry.dataset.name, None)
            self._release(entry.dataset.size_mb)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(entry.dataset)

"""Observed failure detection: heartbeats, breakers, and speculation.

The fault layer gives the schedulers *oracle* knowledge: the instant a
site dies, the information service stops advertising it.  Real grids
only ever observe failure — a heartbeat that stops arriving, a transfer
that times out, a dispatch hand-off that bounces.  This module closes
that gap with three cooperating mechanisms, bundled (like
:class:`~repro.grid.overload.OverloadPolicy` for saturation) into one
frozen :class:`HealthPolicy`:

* **Heartbeat failure detector** — every site emits heartbeats on a sim
  process; a detector tracks the inter-arrival history and computes a
  phi-style suspicion level (elapsed silence over the windowed mean
  interval).  Crossing ``phi_threshold`` raises a *suspicion*: no oracle
  is consulted, so detection has latency and (with heartbeat jitter and
  a tight threshold) measurable false positives.
* **Circuit breakers** — one per site and one per used link::

      CLOSED --suspicion / repeated failures--> OPEN
      OPEN --probe scheduled (backoff)--> HALF_OPEN
      HALF_OPEN --probe ok x probe_successes--> CLOSED
      HALF_OPEN --probe failed--> OPEN

  An open *site* breaker hides the site from the information service
  (quarantine: External Scheduler candidate sets and Dataset Scheduler
  replication targets both shrink); an open *link* breaker deprioritizes
  that source for replica fetches.  With ``observed_only`` the oracle
  channel is cut entirely: outages never mark sites down in the
  information service, and the detector + breakers are the only way the
  schedulers learn about failure.
* **Speculative backup execution** — a scanner watches FETCHING/RUNNING
  jobs; one whose attempt age exceeds ``speculate_multiplier`` × the
  ``speculate_quantile`` completed-duration quantile gets a *backup
  clone* dispatched to another site.  First completion wins; the loser
  is preempted through the transition engine's dedicated ``SPECULATED``
  terminal edge, so jobs-conserved guards and the no-double-completion
  watchdog invariant hold by construction.  Each logical job is
  speculated at most once, bounding wasted work.

Every knob defaults *off*: a grid built without a policy (or with a null
one) takes the exact pre-health code paths, keeping the committed golden
trace digests bitwise-identical.  Enabled runs draw all randomness from
the dedicated ``"health"`` stream (per-site heartbeat sub-streams in
sorted site order, one shared probe-jitter stream), so they stay
deterministic at any worker count.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.faults.backoff import BackoffPolicy
from repro.grid.job import Job
from repro.grid.lifecycle import JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.network.transfer import Transfer
    from repro.sim.core import Simulator

#: Breaker states.  Strings, not an enum: they go straight into trace
#: detail fields and watchdog messages.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: First backup-clone job id.  Far above any workload generator's range,
#: so clone ids can never collide with primaries.
SPECULATIVE_ID_BASE = 1_000_000_000


@dataclass(frozen=True)
class HealthPolicy:
    """Observed-health policy for one grid.

    Attributes
    ----------
    heartbeat_interval_s:
        Nominal spacing of each site's heartbeats.  0 = the detector,
        breakers, and probers are all off.
    heartbeat_jitter:
        Fractional spread in ``[0, 1)`` applied to each heartbeat gap
        (seeded per-site streams).  Nonzero jitter makes a tight
        ``phi_threshold`` produce measurable false positives.
    phi_threshold:
        Suspicion trips when the silence since the last heartbeat
        exceeds this multiple of the windowed mean inter-arrival time.
    detector_window:
        Inter-arrival samples kept per site for the mean.
    probe_interval_s / probe_backoff_cap_s / probe_jitter:
        Half-open probe schedule: capped exponential backoff between
        probes (:class:`~repro.faults.backoff.BackoffPolicy`), with
        optional seeded jitter to break probe synchronization.
    probe_successes:
        Consecutive successful probes required to close a breaker
        (hysteresis against flapping sites).
    link_failure_threshold:
        Consecutive transfer failures on one link before its breaker
        opens.  Any transfer success on the link closes it again.
    observed_only:
        Cut the oracle channel: fault-injector outages no longer mark
        sites down in the information service — the detector is the only
        source of site-health knowledge.  Requires heartbeats.
    speculate_quantile:
        Completed-duration quantile defining "normal" attempt age
        (e.g. 0.9).  0 = speculation off.
    speculate_multiplier:
        Straggler threshold = multiplier × the quantile duration.
    speculate_min_samples:
        Completed durations required before any speculation happens.
    speculate_check_interval_s:
        Straggler scanner period.
    """

    heartbeat_interval_s: float = 0.0
    heartbeat_jitter: float = 0.0
    phi_threshold: float = 3.0
    detector_window: int = 8
    probe_interval_s: float = 30.0
    probe_backoff_cap_s: float = 240.0
    probe_jitter: float = 0.0
    probe_successes: int = 2
    link_failure_threshold: int = 3
    observed_only: bool = False
    speculate_quantile: float = 0.0
    speculate_multiplier: float = 2.0
    speculate_min_samples: int = 5
    speculate_check_interval_s: float = 60.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s < 0:
            raise ValueError(
                f"heartbeat interval must be >= 0, "
                f"got {self.heartbeat_interval_s!r}")
        if not 0.0 <= self.heartbeat_jitter < 1.0:
            raise ValueError(
                f"heartbeat jitter must be in [0, 1), "
                f"got {self.heartbeat_jitter!r}")
        if self.phi_threshold <= 1.0:
            raise ValueError(
                f"phi threshold must be > 1 (a beat is due every mean "
                f"interval), got {self.phi_threshold!r}")
        if self.detector_window < 1:
            raise ValueError(
                f"detector window must be >= 1, "
                f"got {self.detector_window!r}")
        if self.probe_interval_s <= 0:
            raise ValueError(
                f"probe interval must be > 0, got {self.probe_interval_s!r}")
        if self.probe_backoff_cap_s < self.probe_interval_s:
            raise ValueError(
                f"probe backoff cap ({self.probe_backoff_cap_s!r}) must "
                f"be >= the probe interval ({self.probe_interval_s!r})")
        if not 0.0 <= self.probe_jitter < 1.0:
            raise ValueError(
                f"probe jitter must be in [0, 1), got {self.probe_jitter!r}")
        if self.probe_successes < 1:
            raise ValueError(
                f"probe successes must be >= 1, "
                f"got {self.probe_successes!r}")
        if self.link_failure_threshold < 1:
            raise ValueError(
                f"link failure threshold must be >= 1, "
                f"got {self.link_failure_threshold!r}")
        if self.observed_only and self.heartbeat_interval_s == 0:
            raise ValueError(
                "observed_only cuts the oracle channel, so it needs the "
                "heartbeat detector: set heartbeat_interval_s > 0")
        if not 0.0 <= self.speculate_quantile < 1.0:
            raise ValueError(
                f"speculation quantile must be in [0, 1), "
                f"got {self.speculate_quantile!r}")
        if self.speculate_multiplier < 1.0:
            raise ValueError(
                f"speculation multiplier must be >= 1, "
                f"got {self.speculate_multiplier!r}")
        if self.speculate_min_samples < 1:
            raise ValueError(
                f"speculation min samples must be >= 1, "
                f"got {self.speculate_min_samples!r}")
        if self.speculate_check_interval_s <= 0:
            raise ValueError(
                f"speculation check interval must be > 0, "
                f"got {self.speculate_check_interval_s!r}")

    @property
    def is_null(self) -> bool:
        """True when no mechanism is armed (grid runs pre-health paths)."""
        return (self.heartbeat_interval_s == 0
                and self.speculate_quantile == 0)


class HealthStats:
    """Shared mutable health counters for one grid run.

    Plain attributes, no simulator events — updating a counter can never
    perturb event order.  The ``false_suspicions`` / detection-latency
    fields are the *only* place the health layer reads oracle state, and
    they feed metrics exclusively, never behavior.
    """

    __slots__ = (
        "suspicions",
        "false_suspicions",
        "detections",
        "detection_latency_total_s",
        "breaker_trips",
        "breaker_restores",
        "probes",
        "speculative_launched",
        "speculative_losers",
        "speculative_wasted_s",
    )

    def __init__(self) -> None:
        #: Detector suspicions raised (phi threshold crossings).
        self.suspicions = 0
        #: Suspicions raised against a site that was actually reachable.
        self.false_suspicions = 0
        #: Suspicions that detected a genuinely unreachable site.
        self.detections = 0
        #: Sum over detections of (suspicion time - unreachable-since).
        self.detection_latency_total_s = 0.0
        #: Breakers opened (site + link).
        self.breaker_trips = 0
        #: Breakers closed again (site + link).
        self.breaker_restores = 0
        #: Half-open probes attempted.
        self.probes = 0
        #: Backup clones dispatched.
        self.speculative_launched = 0
        #: Attempts retired through the SPECULATED edge.
        self.speculative_losers = 0
        #: Attempt-time thrown away by preempted losers.
        self.speculative_wasted_s = 0.0

    @property
    def false_positive_rate(self) -> float:
        """Fraction of suspicions that were wrong (0 when none raised)."""
        return (self.false_suspicions / self.suspicions
                if self.suspicions else 0.0)

    @property
    def mean_detection_latency_s(self) -> float:
        """Mean silence-to-suspicion lag for real failures."""
        return (self.detection_latency_total_s / self.detections
                if self.detections else 0.0)


class CircuitBreaker:
    """One breaker: state plus the counters its transitions consult."""

    __slots__ = ("state", "failures", "probe_successes")

    def __init__(self) -> None:
        self.state = CLOSED
        #: Consecutive observed failures while closed (link breakers).
        self.failures = 0
        #: Consecutive successful probes while half-open (site breakers).
        self.probe_successes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CircuitBreaker {self.state} failures={self.failures}>"


class HealthMonitor:
    """Drives observed failure detection for one wired grid.

    Owns the heartbeat processes, the detector, every breaker, the
    half-open probers, and the speculation manager.  Constructed and
    installed by :meth:`~repro.grid.grid.DataGrid.create` when a non-null
    :class:`HealthPolicy` is given.
    """

    def __init__(self, sim: "Simulator", grid: "DataGrid",
                 policy: HealthPolicy,
                 rng: Optional[random.Random] = None) -> None:
        if policy.is_null:
            raise ValueError(
                "null health policy: build the grid without a monitor")
        self.sim = sim
        self.grid = grid
        self.policy = policy
        self.rng = rng or random.Random(0)
        self.stats = HealthStats()
        self.tracer = None
        #: Per-site breakers (all sites, created up front in sorted order).
        self.site_breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker() for name in sorted(grid.sites)}
        #: Per-link breakers, keyed by the sorted endpoint pair (lazy:
        #: only links that ever fail get one).
        self.link_breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        # Detector state: last beat seen and the inter-arrival window.
        # Seeding last-beat at t=0 means a site that is dead from the
        # start (and so never beats) is still detectable.
        self._last_beat: Dict[str, float] = {
            name: 0.0 for name in sorted(grid.sites)}
        self._intervals: Dict[str, Deque[float]] = {
            name: deque(maxlen=policy.detector_window)
            for name in sorted(grid.sites)}
        # Shared probe-jitter stream, drawn before the per-site heartbeat
        # sub-streams so the draw order is fixed.
        self._probe_rng = random.Random(self.rng.randrange(2 ** 62))
        self._probe_backoff = BackoffPolicy(
            policy.probe_interval_s, policy.probe_backoff_cap_s,
            jitter=policy.probe_jitter)
        # Speculation state.
        self._clone_ids = itertools.count(SPECULATIVE_ID_BASE)
        #: primary id -> (primary, clone) for every live race.
        self._pairs: Dict[int, Tuple[Job, Job]] = {}
        #: clone id -> primary id.
        self._pair_of: Dict[int, int] = {}
        #: Primary ids that already used their one speculation (bounds
        #: wasted work to at most one backup per logical job).
        self._speculated: Set[int] = set()
        #: Completed attempt durations (dispatch -> done), the straggler
        #: threshold's sample population.
        self._durations: List[float] = []

    # -- installation -------------------------------------------------------

    def install(self) -> None:
        """Wire the monitor into the grid and spawn its processes."""
        grid = self.grid
        grid.health = self
        grid.datamover.health = self
        self.tracer = grid.tracer
        for site in grid.sites.values():
            site.health = self
        grid.transfers.on_abort.append(self._on_transfer_abort)
        if self.policy.heartbeat_interval_s > 0:
            # Per-site heartbeat sub-streams drawn in sorted order:
            # deterministic and independent of later interleaving.
            for name in sorted(grid.sites):
                site_rng = random.Random(self.rng.randrange(2 ** 62))
                self.sim.process(self._heartbeat_loop(name, site_rng),
                                 name=f"health:beat:{name}")
            self.sim.process(self._detector_loop(), name="health:detector")
        if self.policy.speculate_quantile > 0:
            if grid.dag is not None:
                raise ValueError(
                    "speculation is incompatible with DAG workloads "
                    "(dependency release keys on the primary reaching "
                    "DONE)")
            grid.lifecycle.hooks.append(self._on_transition)
            self.sim.process(self._straggler_loop(),
                             name="health:speculator")

    def _emit(self, kind: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, kind, **detail)

    # -- gating queries (the hot-path surface) ------------------------------

    def allows(self, site: str) -> bool:
        """Whether dispatch/replication may target the site (breaker
        closed).  Half-open admits only the prober, not real work."""
        return self.site_breakers[site].state is CLOSED

    def allow_replication(self, site: str) -> bool:
        """Whether the Dataset Scheduler may push a replica to the site."""
        return self.site_breakers[site].state is CLOSED

    def link_open(self, a: str, b: str) -> bool:
        """Whether the a--b link breaker is currently open."""
        breaker = self.link_breakers.get((a, b) if a <= b else (b, a))
        return breaker is not None and breaker.state is OPEN

    # -- heartbeats and detection -------------------------------------------

    def _reachable(self, site: str) -> bool:
        faults = self.grid.faults
        return faults is None or faults.is_reachable(site)

    def _heartbeat_loop(self, site: str, rng: random.Random):
        interval = self.policy.heartbeat_interval_s
        jitter = self.policy.heartbeat_jitter
        while True:
            wait = interval
            if jitter > 0:
                wait *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
            yield self.sim.timeout(wait)
            if not self._reachable(site):
                continue  # the beat is lost on the wire
            now = self.sim.now
            last = self._last_beat.get(site)
            if last is not None and now > last:
                self._intervals[site].append(now - last)
            self._last_beat[site] = now

    def _detector_loop(self):
        interval = self.policy.heartbeat_interval_s
        names = sorted(self.grid.sites)
        while True:
            yield self.sim.timeout(interval)
            now = self.sim.now
            for site in names:
                if self.site_breakers[site].state is not CLOSED:
                    continue  # already suspected; the prober owns it
                elapsed = now - self._last_beat[site]
                window = self._intervals[site]
                mean = (sum(window) / len(window) if window
                        else interval)
                if mean <= 0:  # pragma: no cover - defensive
                    mean = interval
                phi = elapsed / mean
                if phi >= self.policy.phi_threshold:
                    self._suspect_site(site, phi)

    def _suspect_site(self, site: str, phi: float) -> None:
        stats = self.stats
        stats.suspicions += 1
        self._emit("health.suspect", site=site, phi=round(phi, 3))
        # Oracle reads below feed *metrics only*: whether the suspicion
        # was right, and how late it came.  Behavior never branches on
        # them.
        faults = self.grid.faults
        if faults is None or self._reachable(site):
            stats.false_suspicions += 1
        else:
            since = faults.unobservable_since(site)
            if since is not None:
                stats.detections += 1
                stats.detection_latency_total_s += self.sim.now - since
        self._trip_site(site, reason="missed-heartbeats")

    def _trip_site(self, site: str, reason: str) -> None:
        breaker = self.site_breakers[site]
        if breaker.state is not CLOSED:
            return
        breaker.state = OPEN
        breaker.probe_successes = 0
        self.stats.breaker_trips += 1
        self._emit("health.trip", site=site, reason=reason)
        self.grid.info.mark_site_suspect(site)
        if self.policy.heartbeat_interval_s > 0:
            self.sim.process(self._probe_loop(site),
                             name=f"health:probe:{site}")
        else:
            # No prober without heartbeats (speculation-only policies):
            # re-admit on a fixed delay so a trip cannot be permanent.
            self.sim.process(self._untrip_later(site),
                             name=f"health:untrip:{site}")

    def record_dispatch_failure(self, site: str) -> None:
        """A dispatch hand-off to the site bounced (hard observation)."""
        self._trip_site(site, reason="dispatch-failed")

    def _probe_loop(self, site: str):
        breaker = self.site_breakers[site]
        policy = self.policy
        rng = self._probe_rng if policy.probe_jitter > 0 else None
        attempt = 0
        while True:
            attempt += 1
            yield self.sim.timeout(
                self._probe_backoff.delay(min(attempt, 64), rng=rng))
            breaker.state = HALF_OPEN
            self.stats.probes += 1
            ok = self._reachable(site)
            self._emit("health.probe", site=site, ok=ok, attempt=attempt)
            if ok:
                breaker.probe_successes += 1
                if breaker.probe_successes >= policy.probe_successes:
                    self._restore_site(site)
                    return
                # Confirmation probes come at the base interval again.
                attempt = 0
            else:
                breaker.state = OPEN
                breaker.probe_successes = 0

    def _untrip_later(self, site: str):
        yield self.sim.timeout(self.policy.probe_interval_s)
        self._restore_site(site)

    def _restore_site(self, site: str) -> None:
        breaker = self.site_breakers[site]
        breaker.state = CLOSED
        breaker.probe_successes = 0
        self.stats.breaker_restores += 1
        self._emit("health.restore", site=site)
        self.grid.info.clear_site_suspect(site)
        # Re-resolve the detector: the next silence is measured from the
        # re-admission, not from a beat that predates the outage.
        self._last_beat[site] = self.sim.now
        self._intervals[site].clear()
        if self.grid.faults is not None:
            # A parked recovery supervisor may be waiting for exactly
            # this re-admission (observed mode hides sites it cannot
            # otherwise un-hide).
            self.grid.faults.wake_recovery_waiters(site)

    # -- link breakers (transfer feedback) ----------------------------------

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _on_transfer_abort(self, transfer: "Transfer") -> None:
        if transfer.src != transfer.dst:
            self.record_transfer_failure(transfer.src, transfer.dst)

    def record_transfer_failure(self, src: str, dst: str) -> None:
        """A transfer between the endpoints failed or was aborted."""
        if src == dst:
            return
        key = self._link_key(src, dst)
        breaker = self.link_breakers.get(key)
        if breaker is None:
            breaker = self.link_breakers[key] = CircuitBreaker()
        breaker.failures += 1
        if (breaker.state is CLOSED
                and breaker.failures >= self.policy.link_failure_threshold):
            breaker.state = OPEN
            self.stats.breaker_trips += 1
            self._emit("health.trip", link=f"{key[0]}-{key[1]}",
                       reason="transfer-failures")

    def record_transfer_success(self, src: str, dst: str) -> None:
        """Bytes crossed between the endpoints: the link works."""
        if src == dst:
            return
        breaker = self.link_breakers.get(self._link_key(src, dst))
        if breaker is None:
            return
        breaker.failures = 0
        if breaker.state is not CLOSED:
            # Deprioritize-not-ban means real transfers still cross an
            # open link when it holds the only replica — each success is
            # a free probe that closes the breaker.
            breaker.state = CLOSED
            key = self._link_key(src, dst)
            self.stats.breaker_restores += 1
            self._emit("health.restore", link=f"{key[0]}-{key[1]}")

    # -- speculative backup execution ---------------------------------------

    @staticmethod
    def _attempt_started(job: Job) -> Optional[float]:
        """When the attempt started *working* (processor acquired).

        ``None`` while the job is still waiting for a slot.  Queue wait
        is excluded on both sides of the comparison — from the completed-
        duration sample and from the attempt age — so a backlog of
        perfectly healthy queued jobs can never look like stragglers
        (queue pressure is the overload layer's domain, not this one's).
        """
        return job.processor_at

    def _straggler_threshold(self) -> Optional[float]:
        """Attempt-age threshold, or None while the sample is too thin."""
        durations = self._durations
        if len(durations) < self.policy.speculate_min_samples:
            return None
        ordered = sorted(durations)
        index = int(self.policy.speculate_quantile * (len(ordered) - 1))
        return ordered[index] * self.policy.speculate_multiplier

    def _straggler_loop(self):
        engine = self.grid.lifecycle
        while True:
            yield self.sim.timeout(self.policy.speculate_check_interval_s)
            threshold = self._straggler_threshold()
            if threshold is None:
                continue
            now = self.sim.now
            for state in (JobState.FETCHING, JobState.RUNNING):
                for job in engine.jobs_in(state):
                    if job.speculative_of is not None:
                        continue  # backups never speculate
                    if job.job_id in self._speculated:
                        continue
                    started = self._attempt_started(job)
                    if started is None or now - started < threshold:
                        continue
                    self._launch_backup(job)

    def _launch_backup(self, primary: Job) -> None:
        grid = self.grid
        info = grid.info
        candidates = [name for name in info.site_names
                      if name != primary.execution_site]
        if not candidates:
            return
        site_name = info.least_loaded(candidates)
        if grid.faults is not None and not grid.faults.is_reachable(
                site_name):
            # The hand-off itself bounces — which is an observation, so
            # feed the breaker; the straggler stays eligible next tick.
            self.record_dispatch_failure(site_name)
            return
        clone = Job(
            job_id=next(self._clone_ids),
            user=primary.user,
            origin_site=primary.origin_site,
            input_files=list(primary.input_files),
            runtime_s=primary.runtime_s,
            output_size_mb=primary.output_size_mb,
            deadline_s=primary.deadline_s,
            speculative_of=primary.job_id,
        )
        self._speculated.add(primary.job_id)
        self._pairs[primary.job_id] = (primary, clone)
        self._pair_of[clone.job_id] = primary.job_id
        self.stats.speculative_launched += 1
        self._emit("job.speculated", job=primary.job_id,
                   clone=clone.job_id, site=site_name)
        grid.submitted_jobs.append(clone)
        engine = grid.lifecycle
        engine.register(clone)
        engine.submit(clone)
        engine.dispatch(clone, site_name)
        self.sim.process(self._run_backup(primary, clone, site_name),
                         name=f"health:backup:{clone.job_id}")

    def _run_backup(self, primary: Job, clone: Job, site_name: str):
        yield self.grid.sites[site_name].enqueue(clone)
        # The race is settled when the backup attempt returns: either it
        # won (DONE — the transition hook preempted the primary), lost
        # (SPECULATED — the primary's finish preempted it), or died on
        # its own (outage kill -> RETRYING, deadline -> EXPIRED).
        if clone.state is JobState.RETRYING:
            # Backups are never retried; retire the attempt for good —
            # as a race concession while the primary can still carry
            # the logical job, as a failure only when it cannot.
            if not self.retire_dead_attempt(clone):
                self.grid.lifecycle.fail(
                    clone, clone.failure_reason or "backup attempt killed")
        self._pairs.pop(primary.job_id, None)
        self._pair_of.pop(clone.job_id, None)
        if (clone.state is not JobState.DONE
                and primary.state not in (JobState.DONE,
                                          JobState.SPECULATED)):
            # The backup died alone: the (still live) primary becomes
            # eligible for one more speculation.
            self._speculated.discard(primary.job_id)

    def retire_dead_attempt(self, job: Job) -> bool:
        """Concede a permanently-dead RETRYING attempt, if possible.

        Called instead of ``fail`` when one half of a speculation pair
        is out of budget.  True iff the attempt was retired through the
        RETRYING -> SPECULATED concede edge, which happens when the
        partner's outcome is (or will be) the logical job's outcome:

        * partner DONE — the race was already lost;
        * partner still live — it carries the job from here on;
        * partner FAILED/EXPIRED and *this* attempt is the backup — the
          primary's ending is the booked one, a second terminal failure
          would double-count the family.

        A primary whose backup already retired keeps its own failure
        (returns False; the caller books it).
        """
        other = self._counterpart(job)
        if other is None:
            return False
        if other.state in (JobState.FAILED, JobState.EXPIRED,
                           JobState.SHED):
            if job.speculative_of is None:
                return False
            self.grid.lifecycle.concede(
                job, "backup retired; the primary's ending stands")
            return True
        if other.state is JobState.SPECULATED:
            # The partner already conceded expecting *us* to carry the
            # job; someone must own the terminal outcome.
            return False
        reason = ("speculation race lost" if other.state is JobState.DONE
                  else "retry budget exhausted; partner carries the job")
        self.grid.lifecycle.concede(job, reason)
        return True

    def _counterpart(self, job: Job) -> Optional[Job]:
        primary_id = self._pair_of.get(job.job_id)
        if primary_id is not None:
            pair = self._pairs.get(primary_id)
            return pair[0] if pair is not None else None
        pair = self._pairs.get(job.job_id)
        return pair[1] if pair is not None else None

    def _on_transition(self, job: Job, src: JobState, dst: JobState,
                       edge: str, now: float) -> None:
        """Transition-engine hook (registered only with speculation on)."""
        if dst is JobState.DONE:
            started = self._attempt_started(job)
            if started is not None:
                self._durations.append(now - started)
            other = self._counterpart(job)
            if other is not None:
                if other.state in (JobState.FETCHING, JobState.RUNNING):
                    site = self.grid.sites.get(other.execution_site)
                    if site is not None:
                        site.preempt_attempt(other)
                elif other.state in (JobState.READY, JobState.RETRYING):
                    # Mid-retry (backoff or parked): there is no live
                    # attempt to preempt, so concede directly — the
                    # recovery supervisor observes SPECULATED on its
                    # next wake-up and stops re-dispatching.
                    self.grid.lifecycle.concede(
                        other, "speculation race lost")
        elif dst is JobState.SPECULATED:
            self.stats.speculative_losers += 1
            started = self._attempt_started(job)
            if started is not None:
                self.stats.speculative_wasted_s += now - started
        elif dst in (JobState.FAILED, JobState.EXPIRED):
            pair = self._pairs.get(job.job_id)
            if pair is not None and pair[1].state in (JobState.FETCHING,
                                                      JobState.RUNNING):
                # The primary is being written off for good; a backup
                # completing later would contradict the accounting, so
                # cancel the race.
                site = self.grid.sites.get(pair[1].execution_site)
                if site is not None:
                    site.preempt_attempt(pair[1])

"""Datasets (files) and collections of them.

The paper uses "file" and "dataset" interchangeably; so do we.  A dataset is
immutable: a name and a size.  Sizes are uniform in [500 MB, 2 GB] in the
paper's workload (Table 1 / §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import random


@dataclass(frozen=True)
class Dataset:
    """An immutable file in the grid."""

    name: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(
                f"dataset {self.name!r} must have positive size, "
                f"got {self.size_mb!r}")

    @property
    def size_gb(self) -> float:
        """Size in GB (the unit the paper's runtime formula uses)."""
        return self.size_mb / 1000.0


class DatasetCollection:
    """All datasets known to the grid, addressable by name."""

    def __init__(self, datasets: Iterable[Dataset] = ()) -> None:
        self._by_name: Dict[str, Dataset] = {}
        for ds in datasets:
            self.add(ds)

    def add(self, dataset: Dataset) -> None:
        """Register a dataset; duplicate names are an error."""
        if dataset.name in self._by_name:
            raise ValueError(f"duplicate dataset {dataset.name!r}")
        self._by_name[dataset.name] = dataset

    def get(self, name: str) -> Dataset:
        """Look up a dataset by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown dataset {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._by_name.values())

    @property
    def names(self) -> List[str]:
        """Dataset names in insertion order."""
        return list(self._by_name)

    @property
    def total_size_mb(self) -> float:
        """Sum of all dataset sizes."""
        return sum(ds.size_mb for ds in self._by_name.values())

    @classmethod
    def uniform_random(
        cls,
        n: int,
        rng: random.Random,
        min_size_mb: float = 500.0,
        max_size_mb: float = 2000.0,
        prefix: str = "dataset",
    ) -> "DatasetCollection":
        """The paper's dataset population: ``n`` files with sizes drawn
        uniformly from [500 MB, 2 GB]."""
        if n < 1:
            raise ValueError(f"need at least one dataset, got {n}")
        if not 0 < min_size_mb <= max_size_mb:
            raise ValueError(
                f"bad size range [{min_size_mb}, {max_size_mb}]")
        return cls(
            Dataset(f"{prefix}{i:04d}", rng.uniform(min_size_mb, max_size_mb))
            for i in range(n)
        )

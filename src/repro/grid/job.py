"""Jobs and their lifecycle.

Paper model (§3, §5.1): a job requires a specified set of input files (one,
in the paper's workload), executes for a specified time on a single
processor, and (negligible) output is ignored.  We record every lifecycle
timestamp so the metrics layer can decompose response time into queue,
transfer, and compute components exactly as §5.2 defines:

    completion time = max(queue time, data transfer time) + compute time
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class JobState(enum.Enum):
    """Lifecycle states, in order."""

    CREATED = "created"            #: generated, not yet submitted
    SUBMITTED = "submitted"        #: handed to the External Scheduler
    DISPATCHED = "dispatched"      #: ES picked an execution site
    QUEUED = "queued"              #: waiting at the site (data fetch started)
    RUNNING = "running"            #: compute phase in progress
    COMPLETED = "completed"        #: done
    FAILED = "failed"              #: could not run (e.g. unsatisfiable data)
    SHED = "shed"                  #: refused admission (queues saturated)
    EXPIRED = "expired"            #: queue deadline passed before running


_ORDER = list(JobState)


@dataclass
class Job:
    """One grid job.

    Attributes beyond the obvious:

    * ``runtime_s`` — compute-phase duration (paper: 300 s × input GB).
    * ``origin_site`` — where the submitting user lives; ``JobLocal`` runs
      the job here.
    * ``execution_site`` — where the ES sent it.
    * ``fetched_mb`` — MB of input that had to cross the network for this
      specific job (0 if the input was already present).
    """

    job_id: int
    user: str
    origin_site: str
    input_files: List[str]
    runtime_s: float
    state: JobState = JobState.CREATED
    execution_site: Optional[str] = None
    fetched_mb: float = 0.0
    #: Size of the file the job writes on completion (0 = no output —
    #: the paper's evaluation: "As job output is of negligible size as
    #: compared to input, we ignore output costs").  Outputs are written
    #: to the execution site's storage, never transferred.
    output_size_mb: float = 0.0

    # Lifecycle timestamps (simulated seconds; None until reached).
    submitted_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    queued_at: Optional[float] = None
    data_ready_at: Optional[float] = None
    processor_at: Optional[float] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    #: Execution attempts killed by faults and re-dispatched (0 = clean run).
    retries: int = 0
    #: Misdirection bounces consumed (stale-info recovery; 0 = never
    #: dispatched onto a phantom replica, or staleness off).
    bounces: int = 0
    #: Saturation deflections consumed (overload backpressure; 0 = never
    #: aimed at a full queue, or bounded queues off).
    deflections: int = 0
    #: Per-job queue-deadline override (seconds); ``None`` = use the
    #: grid's :class:`~repro.grid.overload.OverloadPolicy` deadline.
    deadline_s: Optional[float] = None
    #: Transient: the current attempt was killed and its site bookkeeping
    #: unwound, but the recovery supervisor has not yet rewound the job.
    #: Lets the invariant watchdog reconcile site job counts mid-recovery.
    killed: bool = False

    def __post_init__(self) -> None:
        if self.runtime_s < 0:
            raise ValueError(f"job {self.job_id}: negative runtime")
        if not self.input_files:
            raise ValueError(f"job {self.job_id}: needs at least one input")
        if self.output_size_mb < 0:
            raise ValueError(f"job {self.job_id}: negative output size")

    def advance(self, state: JobState, now: float) -> None:
        """Move to ``state`` (monotonically forward) and timestamp it."""
        if _ORDER.index(state) < _ORDER.index(self.state):
            raise ValueError(
                f"job {self.job_id}: cannot go {self.state.value} -> "
                f"{state.value}")
        self.state = state
        attr = {
            JobState.SUBMITTED: "submitted_at",
            JobState.DISPATCHED: "dispatched_at",
            JobState.QUEUED: "queued_at",
            JobState.RUNNING: "started_at",
            JobState.COMPLETED: "completed_at",
        }.get(state)
        if attr is not None:
            setattr(self, attr, now)

    def reset_for_retry(self) -> None:
        """Rewind a killed execution attempt back to SUBMITTED.

        The only sanctioned exception to the monotone :meth:`advance`
        order: fault recovery re-dispatches the job as if the ES had just
        received it.  ``submitted_at`` is preserved so response time spans
        the whole ordeal, including every failed attempt.
        """
        self.retries += 1
        self.killed = False
        self.deflections = 0
        self.state = JobState.SUBMITTED
        self.execution_site = None
        self.dispatched_at = None
        self.queued_at = None
        self.data_ready_at = None
        self.processor_at = None
        self.started_at = None
        self.fetched_mb = 0.0

    def mark_failed(self, reason: str) -> None:
        """Give up on the job permanently (fault recovery exhausted)."""
        self.state = JobState.FAILED
        self.completed_at = None
        self.killed = False
        self.failure_reason = reason

    def mark_shed(self, reason: str) -> None:
        """Refuse the job at admission (every candidate queue full).

        Terminal, like :meth:`mark_failed`: a shed job is accounted,
        traced, and never silently dropped — but it will not run.
        """
        self.state = JobState.SHED
        self.completed_at = None
        self.killed = False
        self.failure_reason = reason

    def mark_expired(self, reason: str) -> None:
        """End the job because its queue deadline passed (terminal)."""
        self.state = JobState.EXPIRED
        self.completed_at = None
        self.killed = False
        self.failure_reason = reason

    # -- derived metrics -------------------------------------------------------

    @property
    def response_time(self) -> float:
        """Submission-to-completion time (the paper's headline metric)."""
        if self.submitted_at is None or self.completed_at is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.completed_at - self.submitted_at

    @property
    def queue_time(self) -> float:
        """Arrival-at-site to processor-grant time."""
        if self.queued_at is None or self.processor_at is None:
            raise ValueError(f"job {self.job_id} never acquired a processor")
        return self.processor_at - self.queued_at

    @property
    def transfer_time(self) -> float:
        """Extra time spent waiting for input data *after* getting a
        processor.  Transfers overlap queueing (fetches start on arrival at
        the site), so this is the part of the data movement that actually
        delayed the job — zero when the data arrived (or was already local)
        before the processor freed up, which is exactly the
        ``max(queue time, transfer time)`` behaviour of §5.2.
        """
        if self.processor_at is None or self.data_ready_at is None:
            raise ValueError(f"job {self.job_id} never became data-ready")
        return self.data_ready_at - self.processor_at

    @property
    def compute_time(self) -> float:
        """Actual compute-phase duration."""
        if self.started_at is None or self.completed_at is None:
            raise ValueError(f"job {self.job_id} never computed")
        return self.completed_at - self.started_at

    @property
    def ran_at_origin(self) -> bool:
        """Whether the job executed at the submitting user's site."""
        return self.execution_site == self.origin_site

"""Jobs and their lifecycle.

Paper model (§3, §5.1): a job requires a specified set of input files (one,
in the paper's workload), executes for a specified time on a single
processor, and (negligible) output is ignored.  We record every lifecycle
timestamp so the metrics layer can decompose response time into queue,
transfer, and compute components exactly as §5.2 defines:

    completion time = max(queue time, data transfer time) + compute time

The state machine itself — the :class:`JobState` enum, the declared
transition table, and the :class:`~repro.grid.lifecycle.TransitionEngine`
that grids drive jobs through — lives in :mod:`repro.grid.lifecycle`.
The helpers here (:meth:`Job.advance`, ``mark_*``) are thin validated
wrappers over the same table for unit-level use; a wired grid never
mutates ``job.state`` except through its engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.lifecycle import (  # noqa: F401  (re-exported)
    IllegalTransition,
    JobState,
    apply_transition,
)


@dataclass
class Job:
    """One grid job.

    Attributes beyond the obvious:

    * ``runtime_s`` — compute-phase duration (paper: 300 s × input GB).
    * ``origin_site`` — where the submitting user lives; ``JobLocal`` runs
      the job here.
    * ``execution_site`` — where the ES sent it.
    * ``fetched_mb`` — MB of input that had to cross the network for this
      specific job (0 if the input was already present).
    * ``depends_on`` — job ids that must complete before this job may be
      submitted (empty = independent, the paper's workload).  DAG
      workloads are released waiting → ready by the
      :class:`~repro.workload.dag.DagDriver` as parents finish.
    """

    job_id: int
    user: str
    origin_site: str
    input_files: List[str]
    runtime_s: float
    state: JobState = JobState.WAITING
    execution_site: Optional[str] = None
    fetched_mb: float = 0.0
    #: Size of the file the job writes on completion (0 = no output —
    #: the paper's evaluation: "As job output is of negligible size as
    #: compared to input, we ignore output costs").  Outputs are written
    #: to the execution site's storage, never transferred.
    output_size_mb: float = 0.0
    #: Parent job ids (inter-job dependencies; empty = the paper's model).
    depends_on: List[int] = field(default_factory=list)

    # Lifecycle timestamps (simulated seconds; None until reached).
    submitted_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    queued_at: Optional[float] = None
    data_ready_at: Optional[float] = None
    processor_at: Optional[float] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    #: Execution attempts killed by faults and re-dispatched (0 = clean run).
    retries: int = 0
    #: Misdirection bounces consumed (stale-info recovery; 0 = never
    #: dispatched onto a phantom replica, or staleness off).
    bounces: int = 0
    #: Saturation deflections consumed (overload backpressure; 0 = never
    #: aimed at a full queue, or bounded queues off).
    deflections: int = 0
    #: Per-job queue-deadline override (seconds); ``None`` = use the
    #: grid's :class:`~repro.grid.overload.OverloadPolicy` deadline.
    deadline_s: Optional[float] = None
    #: For a speculative backup attempt: the primary job's id.  ``None``
    #: for every ordinary job (and for primaries themselves); backups are
    #: cloned by the health layer's straggler manager.
    speculative_of: Optional[int] = None

    def __post_init__(self) -> None:
        if self.runtime_s < 0:
            raise ValueError(f"job {self.job_id}: negative runtime")
        if not self.input_files:
            raise ValueError(f"job {self.job_id}: needs at least one input")
        if self.output_size_mb < 0:
            raise ValueError(f"job {self.job_id}: negative output size")
        if self.job_id in self.depends_on:
            raise ValueError(f"job {self.job_id}: depends on itself")

    @property
    def killed(self) -> bool:
        """The current attempt was killed and unwound, but the recovery
        supervisor has not yet rewound the job (= state RETRYING)."""
        return self.state is JobState.RETRYING

    def advance(self, state: JobState, now: float) -> None:
        """Move to ``state`` along a declared edge and timestamp it.

        Raises :class:`~repro.grid.lifecycle.IllegalTransition` (a
        ``ValueError``) for any edge the transition table does not
        declare — including every backwards move.
        """
        apply_transition(self, state, now)

    def reset_for_retry(self, now: float = 0.0) -> None:
        """Rewind a killed (RETRYING) execution attempt back to READY.

        ``submitted_at`` is preserved so response time spans the whole
        ordeal, including every failed attempt.
        """
        apply_transition(self, JobState.READY, now)

    def mark_failed(self, reason: str, now: float = 0.0) -> None:
        """Give up on the job permanently (fault recovery exhausted)."""
        apply_transition(self, JobState.FAILED, now, reason=reason)

    def mark_shed(self, reason: str, now: float = 0.0) -> None:
        """Refuse the job at admission (every candidate queue full).

        Terminal, like :meth:`mark_failed`: a shed job is accounted,
        traced, and never silently dropped — but it will not run.
        """
        apply_transition(self, JobState.SHED, now, reason=reason)

    def mark_expired(self, reason: str, now: float = 0.0) -> None:
        """End the job because its queue deadline passed (terminal)."""
        apply_transition(self, JobState.EXPIRED, now, reason=reason)

    # -- derived metrics -------------------------------------------------------

    @property
    def response_time(self) -> float:
        """Submission-to-completion time (the paper's headline metric)."""
        if self.submitted_at is None or self.completed_at is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.completed_at - self.submitted_at

    @property
    def queue_time(self) -> float:
        """Arrival-at-site to processor-grant time."""
        if self.queued_at is None or self.processor_at is None:
            raise ValueError(f"job {self.job_id} never acquired a processor")
        return self.processor_at - self.queued_at

    @property
    def transfer_time(self) -> float:
        """Extra time spent waiting for input data *after* getting a
        processor.  Transfers overlap queueing (fetches start on arrival at
        the site), so this is the part of the data movement that actually
        delayed the job — zero when the data arrived (or was already local)
        before the processor freed up, which is exactly the
        ``max(queue time, transfer time)`` behaviour of §5.2.
        """
        if self.processor_at is None or self.data_ready_at is None:
            raise ValueError(f"job {self.job_id} never became data-ready")
        return self.data_ready_at - self.processor_at

    @property
    def compute_time(self) -> float:
        """Actual compute-phase duration."""
        if self.started_at is None or self.completed_at is None:
            raise ValueError(f"job {self.job_id} never computed")
        return self.completed_at - self.started_at

    @property
    def ran_at_origin(self) -> bool:
        """Whether the job executed at the submitting user's site."""
        return self.execution_site == self.origin_site

"""Stale-information modelling: delayed catalogs and info policies.

The paper measures its schedulers against a *perfect* oracle: the
:class:`~repro.grid.info.InformationService` answers every replica-location
query from the live catalog.  Real Data Grid services (Globus MDS, NWS,
replica-location services) propagate state with delay, so a scheduler's
real robustness test is how gracefully it degrades when the view it plans
against is minutes behind the truth.  This module supplies that model:

* :class:`InfoPolicy` — one frozen bundle of every information-quality
  knob (load-snapshot refresh interval, catalog propagation delay, query
  timeout, misdirection bounce budget), replacing the loose
  ``refresh_interval_s`` float that used to be the only staleness control.
* :class:`StaleReplicaView` — a bounded-staleness mirror of the
  :class:`~repro.grid.catalog.ReplicaCatalog`.  It subscribes to catalog
  membership changes and makes each one visible only ``delay_s`` simulated
  seconds later.  Updates are applied *lazily* at query time from a FIFO
  of pending operations, so the view adds **no simulator events** — a
  stale run processes the exact same event sequence as a live run and
  stays bitwise-deterministic across worker counts and cache replays.

The view also keeps the misdirection accounting (jobs dispatched on
phantom replicas, bounced re-dispatches, stale reads served) so the
metrics layer has one place to look.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Mapping, \
    NamedTuple, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.catalog import ReplicaCatalog
    from repro.sim.core import Simulator

#: Shared immutable empty result for queries about unknown names/sites.
_EMPTY_SET: frozenset = frozenset()


@dataclass(frozen=True)
class InfoPolicy:
    """Information-quality policy for one grid.

    Attributes
    ----------
    refresh_interval_s:
        Load-snapshot staleness: 0 serves live site loads; > 0 serves
        snapshots refreshed periodically (MDS/NWS cache TTL).
    catalog_delay_s:
        Replica-catalog propagation delay: 0 serves the live catalog;
        > 0 routes scheduler replica queries through a
        :class:`StaleReplicaView` that lags the truth by this much.
    query_timeout_s:
        Optional query-timeout fallback: when > 0, a site marked stale
        (:meth:`~repro.grid.info.InformationService.mark_stale`) has its
        load served from the last-known value until the entry is older
        than this, modelling an info query that times out and falls back
        to cached data.
    bounce_budget:
        How many times a misdirected job (dispatched on a phantom
        replica) may be bounced back to the External Scheduler for
        re-dispatch before the site simply fetches the data remotely.
    """

    refresh_interval_s: float = 0.0
    catalog_delay_s: float = 0.0
    query_timeout_s: float = 0.0
    bounce_budget: int = 1

    def __post_init__(self) -> None:
        if self.refresh_interval_s < 0:
            raise ValueError(
                f"refresh interval must be >= 0, "
                f"got {self.refresh_interval_s!r}")
        if self.catalog_delay_s < 0:
            raise ValueError(
                f"catalog delay must be >= 0, got {self.catalog_delay_s!r}")
        if self.query_timeout_s < 0:
            raise ValueError(
                f"query timeout must be >= 0, got {self.query_timeout_s!r}")
        if self.bounce_budget < 0:
            raise ValueError(
                f"bounce budget must be >= 0, got {self.bounce_budget!r}")

    @property
    def is_live(self) -> bool:
        """True when every query is answered from live state."""
        return (self.refresh_interval_s == 0
                and self.catalog_delay_s == 0
                and self.query_timeout_s == 0)


_REGISTER = 0
_DEREGISTER = 1


class _PendingOp(NamedTuple):
    visible_at: float
    op: int
    dataset: str
    site: str
    size_mb: float


class StaleReplicaView:
    """A replica-catalog mirror that lags the truth by a fixed delay.

    Subscribes to the catalog (:meth:`on_register`/:meth:`on_deregister`)
    and queues each membership change with ``visible_at = now + delay_s``;
    queued changes are folded into the visible state lazily at the start
    of every query.  Because catalog mutations happen in nondecreasing
    simulated time and the delay is constant, the pending queue is always
    sorted — one FIFO, no heap, no simulator events.

    The *mechanism* layer (data mover source selection, storage, fault
    recovery) keeps using the live catalog; only scheduler-facing queries
    go through this view, exactly as a real grid's brokers consult a
    replica-location service while the transfer service moves real files.
    """

    def __init__(self, sim: "Simulator", catalog: "ReplicaCatalog",
                 delay_s: float) -> None:
        if delay_s <= 0:
            raise ValueError(
                f"stale view needs a positive delay, got {delay_s!r}")
        self.sim = sim
        self.catalog = catalog
        self.delay_s = delay_s
        # Start from the catalog's current state (normally empty: the view
        # is wired before initial placement, and placement warm-syncs).
        self._locations: Dict[str, Set[str]] = {}
        self._site_index: Dict[str, Dict[str, float]] = {}
        for name, site, size_mb in catalog.replica_records():
            self._locations.setdefault(name, set()).add(site)
            self._site_index.setdefault(site, {})[name] = size_mb
        self._pending: Deque[_PendingOp] = deque()
        #: Queries whose (stale) answer differed from the live catalog.
        self.stale_reads = 0
        #: Jobs dispatched to a site whose promised replica was not there.
        self.misdirected_jobs = 0
        #: Misdirected jobs bounced back to the ES for re-dispatch.
        self.bounced_jobs = 0
        #: Domain-event tracer (None = tracing off; set by grid wiring).
        self.tracer = None

    # -- catalog listener protocol ---------------------------------------------

    def on_register(self, dataset: str, site: str, size_mb: float) -> None:
        """Catalog callback: a replica appeared (visible after the delay)."""
        self._pending.append(_PendingOp(
            self.sim.now + self.delay_s, _REGISTER, dataset, site, size_mb))

    def on_deregister(self, dataset: str, site: str) -> None:
        """Catalog callback: a replica vanished (visible after the delay)."""
        self._pending.append(_PendingOp(
            self.sim.now + self.delay_s, _DEREGISTER, dataset, site, 0.0))

    # -- pending-queue machinery -------------------------------------------------

    def _apply(self, op: _PendingOp) -> None:
        if op.op == _REGISTER:
            self._locations.setdefault(op.dataset, set()).add(op.site)
            self._site_index.setdefault(op.site, {})[op.dataset] = op.size_mb
        else:
            holders = self._locations.get(op.dataset)
            if holders is not None:
                holders.discard(op.site)
            held = self._site_index.get(op.site)
            if held is not None:
                held.pop(op.dataset, None)

    def _sync(self) -> None:
        """Fold in every pending change that has become visible."""
        pending = self._pending
        if not pending:
            return
        now = self.sim.now
        while pending and pending[0].visible_at <= now:
            self._apply(pending.popleft())

    def sync_all(self) -> None:
        """Force-apply *every* pending change (pre-run warm start).

        Initial replica placement happens before the workload runs; the
        schedulers are entitled to know the configured starting
        distribution, so the grid calls this after placement rather than
        making the first ``delay_s`` seconds of every run informationless.
        """
        pending = self._pending
        while pending:
            self._apply(pending.popleft())

    def reconcile(self, dataset: str, site: str) -> None:
        """Force the view's record for one (dataset, site) pair to truth.

        Used by misdirection recovery: once a site reports a promised
        replica missing, the grid corrects that single entry — like a
        broker purging a record the storage element just contradicted —
        so a bounced job is not re-dispatched onto the same phantom.
        Pending updates for the pair are dropped (they are superseded).
        """
        if self._pending:
            self._pending = deque(
                p for p in self._pending
                if p.dataset != dataset or p.site != site)
        size_mb = self.catalog.replica_size_mb(dataset, site)
        if size_mb is None:
            self._apply(_PendingOp(0.0, _DEREGISTER, dataset, site, 0.0))
        else:
            self._apply(_PendingOp(0.0, _REGISTER, dataset, site, size_mb))

    def pending_count(self) -> int:
        """Catalog changes queued but not yet visible (introspection)."""
        self._sync()
        return len(self._pending)

    # -- stale-read accounting ----------------------------------------------------

    def _note(self, query: str, dataset: str, stale: bool) -> None:
        if not stale:
            return
        self.stale_reads += 1
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, "info.stale_read",
                             query=query, dataset=dataset)

    # -- queries (mirror the catalog's scheduler-facing API) ---------------------

    def locations(self, dataset_name: str) -> List[str]:
        """Sites believed to hold the dataset (sorted for determinism)."""
        self._sync()
        seen = sorted(self._locations.get(dataset_name, ()))
        self._note("locations", dataset_name,
                   seen != self.catalog.locations(dataset_name))
        return seen

    def location_set(self, dataset_name: str) -> Set[str]:
        """The believed holder set (shared, read-only — do not mutate)."""
        self._sync()
        seen = self._locations.get(dataset_name, _EMPTY_SET)
        self._note("location_set", dataset_name,
                   seen != self.catalog.location_set(dataset_name))
        return seen

    def has_replica(self, dataset_name: str, site: str) -> bool:
        """Whether the view believes ``site`` holds ``dataset_name``."""
        self._sync()
        seen = site in self._locations.get(dataset_name, _EMPTY_SET)
        self._note("has_replica", dataset_name,
                   seen != self.catalog.has_replica(dataset_name, site))
        return seen

    def replica_count(self, dataset_name: str) -> int:
        """Believed number of replicas of the dataset."""
        self._sync()
        seen = len(self._locations.get(dataset_name, _EMPTY_SET))
        self._note("replica_count", dataset_name,
                   seen != self.catalog.replica_count(dataset_name))
        return seen

    def bytes_present_by_site(
        self,
        dataset_names: Iterable[str],
        sizes: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Believed MB of the named datasets present per site.

        Same contract as
        :meth:`~repro.grid.catalog.ReplicaCatalog.bytes_present_by_site`;
        the per-site accumulation follows ``dataset_names`` order, so the
        float sums are reproducible regardless of set iteration order.
        """
        self._sync()
        names = list(dataset_names)
        present: Dict[str, float] = {}
        for name in names:
            holders = self._locations.get(name)
            if not holders:
                continue
            for site in holders:
                if sizes is not None:
                    size = sizes[name]
                else:
                    size = self._site_index[site][name]
                present[site] = present.get(site, 0.0) + size
        self._note("bytes_present_by_site", ",".join(names),
                   present != self.catalog.bytes_present_by_site(
                       names, sizes=sizes))
        return present

    # -- invariants ---------------------------------------------------------------

    def audit(self) -> List[str]:
        """Check the bounded-staleness contract; returns problem strings.

        The watchdog calls this: replaying every pending change over the
        visible state must reproduce the live catalog exactly (the view
        never invents or loses an update), and no pending change may be
        scheduled further than ``delay_s`` into the future.
        """
        problems: List[str] = []
        horizon = self.sim.now + self.delay_s + 1e-9
        replay: Dict[str, Set[str]] = {
            name: set(sites) for name, sites in self._locations.items()}
        for op in self._pending:
            if op.visible_at > horizon:
                problems.append(
                    f"pending update for {op.dataset!r}@{op.site!r} visible "
                    f"at {op.visible_at:.3f}, beyond the staleness bound "
                    f"{horizon:.3f}")
            holders = replay.setdefault(op.dataset, set())
            if op.op == _REGISTER:
                holders.add(op.site)
            else:
                holders.discard(op.site)
        live: Dict[str, Set[str]] = {}
        for name, site, _size in self.catalog.replica_records():
            live.setdefault(name, set()).add(site)
        for name in sorted(set(replay) | set(live)):
            seen = replay.get(name, _EMPTY_SET)
            truth = live.get(name, _EMPTY_SET)
            if set(seen) != set(truth):
                problems.append(
                    f"view+pending disagrees with catalog for {name!r}: "
                    f"view would converge to {sorted(seen)}, "
                    f"catalog holds {sorted(truth)}")
        return problems

"""Users: strictly sequential job submitters.

Paper §5.1: "[Users] are mapped evenly across sites and submit a number of
jobs in strict sequence, with each job being submitted only after the
previous job submitted by that user has completed."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.grid.job import Job
from repro.sim.core import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid


class User:
    """One user bound to a home site, submitting a fixed job sequence.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        User id (e.g. ``"user017"``).
    site:
        Home site name; submissions go to that site's External Scheduler.
    jobs:
        The user's job list, submitted in order.
    grid:
        The :class:`~repro.grid.grid.DataGrid` to submit into.
    think_time_s:
        Optional pause between a completion and the next submission
        (paper: 0 — back-to-back submission).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        site: str,
        jobs: List[Job],
        grid: "DataGrid",
        think_time_s: float = 0.0,
    ) -> None:
        if think_time_s < 0:
            raise ValueError(f"negative think time {think_time_s!r}")
        self.sim = sim
        self.name = name
        self.site = site
        self.jobs = jobs
        self.grid = grid
        self.think_time_s = think_time_s
        self.completed: List[Job] = []
        self.process: Optional[Process] = None

    def start(self) -> Process:
        """Launch the submission loop; returns its process."""
        self.process = self.sim.process(self._run(), name=f"user:{self.name}")
        return self.process

    def _run(self):
        for job in self.jobs:
            execution = self.grid.submit(job)
            yield execution
            self.completed.append(job)
            if self.think_time_s > 0:
                yield self.sim.timeout(self.think_time_s)
        return len(self.completed)

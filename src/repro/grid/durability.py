"""Data durability: corruption detection, scrubbing, and repair.

The paper's model treats datasets as immortal — one pinned primary per
dataset, placed once, never verified, never re-replicated.  Our fault
layer already breaks that assumption (permanent outages and rack-scale
groups destroy the last copy via ``catalog.invalidate_site``), and the
:class:`~repro.faults.plan.FaultPlan`'s durability faults
(:class:`~repro.faults.plan.ReplicaCorruption`,
:class:`~repro.faults.plan.ReplicaLoss`, and stochastic bit-rot) break
it further.  This module closes the loop with three cooperating
mechanisms, bundled into one frozen :class:`DurabilityPolicy`:

* **End-to-end integrity** — every dataset carries a logical checksum
  (modelled, not computed: the fault layer knows exactly which stored
  copies no longer match it).  The data mover verifies that checksum on
  every local read and on every wire delivery; a **scrubber** process
  additionally sweeps all resident replicas at a configurable period.
  A mismatch *quarantines* the copy: it is removed from storage and
  deregistered from the catalog in one step (keeping the watchdog's
  ``catalog-consistent`` invariant intact), traced as
  ``replica.quarantined``.  Corruption itself is silent — the
  ``replica.corrupted`` record is written at injection time, but no
  component's *behavior* reads the ground truth until a verification
  actually touches the copy.
* **A RepairManager** — subscribes to the catalog's membership events
  and maintains a target replication factor per dataset (default 1 =
  the paper's behavior).  When quarantine or permanent site loss drops
  a dataset below target, a repair process copies it to a fresh site
  through the existing DataMover machinery (``purpose="repair"``, so
  repair traffic is accounted separately), pinning the new copy so LRU
  can never undo a repair.  Source/destination choice is pluggable:
  :class:`ClosestRepairPlacement` minimizes hop count;
  :class:`ForecastRepairPlacement` scores candidate pairs with an NWS
  bandwidth forecaster (:mod:`repro.network.forecast`).
* **Unrecoverable-loss semantics** — the moment a managed dataset's
  replica count reaches zero it is marked *lost* (``dataset.lost``),
  finally and irrevocably.  Jobs that depend on it take the transition
  engine's terminal ``abandon-data-lost`` edge instead of burning their
  whole retry budget against data that no longer exists.

Every knob defaults off: a grid built without a policy (and without
durability faults in its plan) takes the exact pre-durability code
paths, keeping the committed golden trace digests bitwise-identical.
Armed runs draw all randomness from the dedicated ``"durability"``
stream, so they stay deterministic at any worker count.

Pins protect files from LRU *eviction*, not from this layer: corruption
quarantine and explicit loss events remove pinned copies too (a pin is
placement policy, not an open file handle — real systems happily unlink
a corrupt file a process still maps).  Running jobs tolerate the
disappearance: ``StorageElement.unpin`` already ignores missing files,
the element forgives unmatched unpins while durability is armed (a
quarantined-then-refetched file can see more unpins than pins), and the
site guards its popularity bookkeeping by membership.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.faults.backoff import BackoffPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.grid import DataGrid
    from repro.sim.core import Simulator

#: Placement policy registry (name -> factory), used by :func:`make_placement`.
PLACEMENTS = ("closest", "forecast")


@dataclass(frozen=True)
class DurabilityPolicy:
    """Durability policy for one grid.

    Attributes
    ----------
    replication_factor:
        Target live replicas per managed dataset.  1 = the paper's
        single-primary behavior (repair then only acts after loss of
        the last-but-one copy, i.e. never creates extra copies).
    repair:
        Arm the RepairManager.  Off = detection-only: corruption is
        still found and quarantined and losses are still recorded, but
        nothing is ever re-replicated (the acceptance baseline).
    scrub_interval_s:
        Background scrubber period.  Every pass verifies all resident
        replicas in deterministic (sorted) order.  0 = scrubbing off;
        corruption is then only found on access or transfer.
    placement:
        Repair source/destination policy: ``"closest"`` (minimum hop
        count) or ``"forecast"`` (NWS bandwidth forecast,
        :mod:`repro.network.forecast`).
    repair_max_retries / repair_backoff_base_s / repair_backoff_cap_s:
        A repair attempt that cannot place or move a copy retries with
        capped exponential backoff before giving the dataset up as
        under-replicated (it is retried again on the next catalog
        event).
    """

    replication_factor: int = 1
    repair: bool = False
    scrub_interval_s: float = 0.0
    placement: str = "closest"
    repair_max_retries: int = 6
    repair_backoff_base_s: float = 10.0
    repair_backoff_cap_s: float = 300.0

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError(
                f"replication factor must be >= 1, "
                f"got {self.replication_factor!r}")
        if self.scrub_interval_s < 0:
            raise ValueError(
                f"scrub interval must be >= 0, "
                f"got {self.scrub_interval_s!r}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown repair placement {self.placement!r} "
                f"(choose from {', '.join(PLACEMENTS)})")
        if self.repair_max_retries < 0:
            raise ValueError(
                f"repair retries must be >= 0, "
                f"got {self.repair_max_retries!r}")
        if (self.repair_backoff_base_s < 0
                or self.repair_backoff_cap_s < self.repair_backoff_base_s):
            raise ValueError(
                "repair backoff cap must be >= backoff base >= 0, got "
                f"base={self.repair_backoff_base_s!r} "
                f"cap={self.repair_backoff_cap_s!r}")
        if self.replication_factor > 1 and not self.repair:
            raise ValueError(
                "replication_factor > 1 needs the RepairManager: "
                "set repair=True")

    @property
    def is_null(self) -> bool:
        """True when no mechanism is armed.

        A null policy still backs a detection-only manager when the
        fault plan contains durability faults — arming is the grid's
        decision, not the policy's.
        """
        return (not self.repair
                and self.replication_factor == 1
                and self.scrub_interval_s == 0.0)


class DurabilityStats:
    """Shared mutable durability counters for one grid run.

    Plain attributes, no simulator events — updating a counter can
    never perturb event order.
    """

    __slots__ = (
        "replicas_corrupted",
        "replicas_lost",
        "replicas_quarantined",
        "verifications",
        "scrub_passes",
        "scrub_files_checked",
        "datasets_lost",
        "repairs_started",
        "replicas_repaired",
        "repairs_failed",
        "repair_bytes_mb",
        "repair_latency_total_s",
        "jobs_abandoned",
    )

    def __init__(self) -> None:
        #: Silent corruptions injected (scripted + bit-rot).
        self.replicas_corrupted = 0
        #: Explicit replica-loss events applied.
        self.replicas_lost = 0
        #: Corrupt copies detected and removed (access/transfer/scrub).
        self.replicas_quarantined = 0
        #: Checksum verifications performed (local reads + deliveries).
        self.verifications = 0
        #: Completed scrubber sweeps.
        self.scrub_passes = 0
        #: Replicas examined across all sweeps.
        self.scrub_files_checked = 0
        #: Datasets whose last replica is gone (final).
        self.datasets_lost = 0
        #: Repair attempts launched (one per ``repair.start`` trace).
        self.repairs_started = 0
        #: Replicas successfully re-created (one per ``repair.done``).
        self.replicas_repaired = 0
        #: Repair campaigns that gave up with the dataset still below
        #: target (retried on the next under-replication event).
        self.repairs_failed = 0
        #: MB landed by successful repair copies.
        self.repair_bytes_mb = 0.0
        #: Sum over repaired replicas of (repair done - detection time).
        self.repair_latency_total_s = 0.0
        #: Jobs retired through the ``abandon-data-lost`` edge.
        self.jobs_abandoned = 0

    @property
    def mean_repair_latency_s(self) -> float:
        """Mean detection-to-repaired lag (0 when nothing repaired)."""
        return (self.repair_latency_total_s / self.replicas_repaired
                if self.replicas_repaired else 0.0)


class ClosestRepairPlacement:
    """Repair along the fewest network hops.

    Scores every (source, destination) candidate pair by the hop count
    between them; ties break lexicographically, then by the manager's
    seeded stream, so repeated runs pick identical pairs.
    """

    name = "closest"

    def attach(self, grid: "DataGrid") -> None:
        """No per-grid state needed."""

    def choose(self, manager: "DurabilityManager", dataset_name: str
               ) -> Optional[Tuple[str, str]]:
        """Pick ``(source, destination)`` for one repair copy.

        ``None`` when no up source or no viable destination exists
        right now (the repair loop backs off and retries).
        """
        pairs = manager.candidate_pairs(dataset_name)
        if not pairs:
            return None
        router = manager.grid.transfers.router
        best = min(router.hops(src, dst) for src, dst in pairs)
        closest = [p for p in pairs if router.hops(p[0], p[1]) == best]
        if len(closest) == 1:
            return closest[0]
        return manager.rng.choice(closest)


class ForecastRepairPlacement:
    """Repair along the pair with the best forecast bandwidth.

    Feeds a :class:`~repro.network.forecast.BandwidthHistory` from the
    grid's transfer manager and scores candidate pairs with an
    :class:`~repro.network.forecast.NWSForecaster`; pairs without
    history fall back to the nominal uncontended transfer time, so the
    policy degrades to closest-by-capacity until observations arrive.
    """

    name = "forecast"

    def __init__(self) -> None:
        self.history = None
        self.forecaster = None

    def attach(self, grid: "DataGrid") -> None:
        from repro.network.forecast import BandwidthHistory, NWSForecaster

        self.history = BandwidthHistory()
        self.history.attach(grid.transfers)
        self.forecaster = NWSForecaster(self.history)

    def _predicted_time(self, manager: "DurabilityManager", src: str,
                        dst: str, size_mb: float) -> float:
        bandwidth = self.forecaster.forecast(src, dst)
        if bandwidth is not None:
            return size_mb / bandwidth
        return manager.grid.transfers.base_transfer_time(src, dst, size_mb)

    def choose(self, manager: "DurabilityManager", dataset_name: str
               ) -> Optional[Tuple[str, str]]:
        pairs = manager.candidate_pairs(dataset_name)
        if not pairs:
            return None
        size = manager.grid.datasets.get(dataset_name).size_mb
        times = {p: self._predicted_time(manager, p[0], p[1], size)
                 for p in pairs}
        best = min(times.values())
        fastest = [p for p in pairs if times[p] == best]
        if len(fastest) == 1:
            return fastest[0]
        return manager.rng.choice(fastest)


def make_placement(name: str):
    """Instantiate a repair placement policy by name."""
    if name == "closest":
        return ClosestRepairPlacement()
    if name == "forecast":
        return ForecastRepairPlacement()
    raise ValueError(f"unknown repair placement {name!r}")


class RepairManager:
    """Re-establishes the target replication factor after loss.

    Owned by the :class:`DurabilityManager` (which is the catalog
    listener); one repair process runs per under-replicated dataset at
    a time, copying replicas through the data mover with
    ``purpose="repair"`` and pinning each landing so LRU churn can
    never undo durability work.
    """

    def __init__(self, manager: "DurabilityManager") -> None:
        self.manager = manager
        self.placement = make_placement(manager.policy.placement)
        #: Datasets with a live repair process (dedup guard).
        self._active: Set[str] = set()

    def install(self) -> None:
        """Attach placement state and start the initial audit.

        The audit runs at t=0, after initial placement (processes only
        execute once the simulation starts), bringing every managed
        dataset up to the target factor before the workload begins.
        """
        grid = self.manager.grid
        self.placement.attach(grid)
        if self.manager.policy.replication_factor > 1:
            self.manager.sim.process(self._initial_audit(),
                                     name="durability:audit")

    def _initial_audit(self):
        manager = self.manager
        target = manager.policy.replication_factor
        for dataset in sorted(d.name for d in manager.grid.datasets):
            if 0 < manager.grid.catalog.replica_count(dataset) < target:
                self.request(dataset)
        return
        yield  # pragma: no cover - unreachable; makes this a generator

    def is_active(self, dataset_name: str) -> bool:
        """Whether a live campaign owns this dataset's loss verdict.

        While a campaign runs, a repair copy may be mid-wire: the last
        cataloged replica disappearing does not yet mean the data is
        gone.  The campaign itself settles the question — healthy if a
        copy lands, lost if every attempt fails with nothing left.
        """
        return dataset_name in self._active

    def request(self, dataset_name: str) -> None:
        """Schedule a repair campaign for the dataset (idempotent)."""
        if dataset_name in self._active:
            return
        if dataset_name in self.manager._lost:
            return
        self._active.add(dataset_name)
        self.manager.sim.process(
            self._repair_loop(dataset_name, self.manager.sim.now),
            name=f"repair:{dataset_name}")

    def _repair_loop(self, dataset_name: str, detected_at: float):
        manager = self.manager
        grid = manager.grid
        policy = manager.policy
        stats = manager.stats
        backoff = BackoffPolicy(policy.repair_backoff_base_s,
                                policy.repair_backoff_cap_s)
        attempt = 0
        try:
            while True:
                if dataset_name in manager._lost:
                    return
                count = grid.catalog.replica_count(dataset_name)
                if count == 0:
                    manager.mark_lost(dataset_name)
                    return
                if count >= policy.replication_factor:
                    return
                attempt += 1
                choice = self.placement.choose(manager, dataset_name)
                moved = 0.0
                if choice is not None:
                    source, dest = choice
                    stats.repairs_started += 1
                    manager._emit("repair.start", dataset=dataset_name,
                                  source=source, site=dest,
                                  attempt=attempt)
                    moved = yield grid.datamover.ensure_local(
                        dest, dataset_name, pin=True, purpose="repair",
                        best_effort=True, preferred_source=source)
                    repaired = (moved > 0
                                or grid.catalog.has_replica(dataset_name,
                                                            dest))
                    if repaired:
                        latency = self.manager.sim.now - detected_at
                        stats.replicas_repaired += 1
                        stats.repair_bytes_mb += float(moved)
                        stats.repair_latency_total_s += latency
                        manager._emit("repair.done", dataset=dataset_name,
                                      site=dest, size_mb=float(moved),
                                      latency_s=round(latency, 6))
                        attempt = 0
                        continue
                if attempt > policy.repair_max_retries:
                    stats.repairs_failed += 1
                    # This campaign holds the loss verdict (on_deregister
                    # defers while it runs): giving up with nothing left
                    # must deliver it.
                    if grid.catalog.replica_count(dataset_name) == 0:
                        manager.mark_lost(dataset_name)
                    return
                yield manager.sim.timeout(backoff.delay(attempt))
        finally:
            self._active.discard(dataset_name)


class DurabilityManager:
    """Drives integrity verification, scrubbing, and repair for a grid.

    Constructed and installed by
    :meth:`~repro.grid.grid.DataGrid.create` when a non-null
    :class:`DurabilityPolicy` is given *or* the fault plan contains
    durability faults (detection must work even with repair off, so
    the acceptance baseline can record what it lost).
    """

    def __init__(self, sim: "Simulator", grid: "DataGrid",
                 policy: DurabilityPolicy,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.grid = grid
        self.policy = policy
        self.rng = rng or random.Random(0)
        self.stats = DurabilityStats()
        self.tracer = None
        #: Ground-truth corruption markers, ``(site, dataset)``.  Only
        #: verification paths may read this — schedulers and the repair
        #: manager never do (no oracle leak).
        self._corrupt: Set[Tuple[str, str]] = set()
        #: Datasets whose last replica is gone.  Final: a lost dataset
        #: never comes back, even if stray bytes land later.
        self._lost: Set[str] = set()
        #: RepairManager, or ``None`` in detection-only mode.
        self.repair: Optional[RepairManager] = None
        if policy.repair:
            self.repair = RepairManager(self)

    # -- installation -------------------------------------------------------

    def install(self) -> None:
        """Wire the manager into the grid and spawn its processes."""
        grid = self.grid
        grid.durability = self
        grid.datamover.durability = self
        self.tracer = grid.tracer
        grid.catalog.add_listener(self)
        for storage in grid.storages.values():
            # Quarantine removes pinned copies; a later refetch restarts
            # the pin count at one, so completing jobs may unpin more
            # times than the entry was pinned.  Forgive that instead of
            # treating it as an accounting bug.
            storage.forgive_unpins = True
        if self.repair is not None:
            self.repair.install()
        if self.policy.scrub_interval_s > 0:
            self.sim.process(self._scrub_loop(), name="durability:scrub")

    def _emit(self, kind: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, kind, **detail)

    # -- queries ------------------------------------------------------------

    def is_lost(self, dataset_name: str) -> bool:
        """Whether the dataset is unrecoverably gone."""
        return dataset_name in self._lost

    def lost_datasets(self) -> List[str]:
        """All lost datasets (sorted)."""
        return sorted(self._lost)

    def is_corrupt(self, site: str, dataset_name: str) -> bool:
        """Ground truth: whether the stored copy's bytes are bad.

        Test/metrics helper — behavior must only learn this through
        :meth:`verify_local` / :meth:`verify_transfer` / the scrubber.
        """
        return (site, dataset_name) in self._corrupt

    def candidate_pairs(self, dataset_name: str
                        ) -> List[Tuple[str, str]]:
        """Viable (source, destination) pairs for one repair copy.

        Sources: every cataloged holder that is currently up.  Known
        corruption is *not* consulted — a corrupt source is discovered
        by the delivery checksum, exactly like any other fetch.
        Destinations: up, breaker-admitted sites that do not already
        hold the dataset and can fit it.
        """
        grid = self.grid
        faults = grid.faults
        health = grid.health
        holders = grid.catalog.location_set(dataset_name)
        sources = [s for s in grid.catalog.locations(dataset_name)
                   if faults is None or faults.is_up(s)]
        if not sources:
            return []
        size = grid.datasets.get(dataset_name).size_mb
        dests = [
            d for d in sorted(grid.sites)
            if d not in holders
            and (faults is None or faults.is_up(d))
            and (health is None or health.allow_replication(d))
            and grid.storages[d].can_fit(size)]
        return [(s, d) for s in sources for d in dests]

    # -- fault-injection entry points ---------------------------------------

    def corrupt(self, site: str, dataset_name: str) -> bool:
        """Silently corrupt the stored copy at ``site`` (injector API).

        No-op (returns False) when the copy is not resident or already
        corrupt.  Nothing else happens until a verification touches the
        copy — corruption is invisible by construction.
        """
        if dataset_name not in self.grid.storages[site]:
            return False
        key = (site, dataset_name)
        if key in self._corrupt:
            return False
        self._corrupt.add(key)
        self.stats.replicas_corrupted += 1
        self._emit("replica.corrupted", dataset=dataset_name, site=site)
        return True

    def lose_replica(self, site: str, dataset_name: str) -> bool:
        """Destroy the stored copy at ``site`` outright (injector API).

        Loud, unlike corruption: storage and catalog drop the copy
        immediately — pinned or not — which may trigger repair or mark
        the dataset lost through the ordinary listener path.
        """
        storage = self.grid.storages[site]
        if dataset_name not in storage:
            return False
        self._corrupt.discard((site, dataset_name))
        storage.remove(dataset_name)
        self.stats.replicas_lost += 1
        self._emit("replica.lost", dataset=dataset_name, site=site)
        self.grid.catalog.deregister(dataset_name, site)
        return True

    # -- verification and quarantine ----------------------------------------

    def verify_local(self, site: str, dataset_name: str) -> bool:
        """Checksum a resident copy before a local read uses it.

        True = clean.  False = corrupt: the copy is quarantined and the
        caller must fetch fresh bytes remotely.
        """
        self.stats.verifications += 1
        if (site, dataset_name) not in self._corrupt:
            return True
        self._quarantine(site, dataset_name, via="access")
        return False

    def source_taint(self, site: str, dataset_name: str) -> bool:
        """Snapshot whether bytes read at ``site`` *right now* are bad.

        Captured by the data mover at the instant a wire transfer starts
        and handed back to :meth:`verify_transfer` at delivery, so the
        checksum judges the bytes as they were read — a source scrubbed
        (or healed by a fresh landing) while the transfer was in flight
        cannot launder, or retroactively taint, the payload.
        """
        return (site, dataset_name) in self._corrupt

    def verify_transfer(self, source: str, dest: str, dataset_name: str,
                        tainted: bool) -> bool:
        """Checksum bytes that just arrived at ``dest`` from ``source``.

        ``tainted`` is the :meth:`source_taint` snapshot taken when the
        transfer started.  A corrupt source produced corrupt bytes: the
        delivery is rejected, the *source* copy is quarantined (if still
        marked), and the fetch fails over to another replica.
        """
        self.stats.verifications += 1
        if not tainted:
            return True
        self._quarantine(source, dataset_name, via="transfer")
        return False

    def on_landed(self, site: str, dataset_name: str) -> None:
        """A verified delivery landed at ``site``: fresh bytes replaced
        whatever was there, so any corruption marker is cleared."""
        self._corrupt.discard((site, dataset_name))

    def _quarantine(self, site: str, dataset_name: str, via: str) -> bool:
        """Remove a detected-corrupt copy from storage and catalog.

        Pins do not protect the copy — corrupt bytes serve nobody, and
        every consumer tolerates the disappearance (see module
        docstring).  No-op (False) when the copy already healed or
        vanished: a delayed transfer verdict must not remove a clean
        replica that a fresh landing overwrote in the meantime.
        """
        if (site, dataset_name) not in self._corrupt:
            return False
        storage = self.grid.storages[site]
        if dataset_name not in storage:
            # The copy vanished some other way (eviction, site loss);
            # its corruption record goes with it.
            self._corrupt.discard((site, dataset_name))
            return False
        self._corrupt.discard((site, dataset_name))
        storage.remove(dataset_name)
        self.stats.replicas_quarantined += 1
        self._emit("replica.quarantined", dataset=dataset_name, site=site,
                   via=via)
        self.grid.catalog.deregister(dataset_name, site)
        return True

    def _scrub_loop(self):
        """Background integrity sweep over every resident replica."""
        interval = self.policy.scrub_interval_s
        while True:
            yield self.sim.timeout(interval)
            checked = 0
            found = 0
            for site in sorted(self.grid.storages):
                storage = self.grid.storages[site]
                for name in sorted(storage.files):
                    checked += 1
                    self.stats.verifications += 1
                    if (site, name) in self._corrupt:
                        if self._quarantine(site, name, via="scrub"):
                            found += 1
            self.stats.scrub_passes += 1
            self.stats.scrub_files_checked += checked
            self._emit("scrub.pass", checked=checked, corrupt=found)

    # -- loss semantics ------------------------------------------------------

    def mark_lost(self, dataset_name: str) -> None:
        """Declare the dataset unrecoverably gone (idempotent, final)."""
        if dataset_name in self._lost:
            return
        self._lost.add(dataset_name)
        self.stats.datasets_lost += 1
        self._emit("dataset.lost", dataset=dataset_name)

    # -- catalog listener protocol ------------------------------------------

    def on_register(self, dataset_name: str, site: str,
                    size_mb: float) -> None:
        """Discard stray landings for datasets already declared lost.

        A fetch can be mid-wire, sourced from the last copy, at the
        instant that copy is destroyed and the dataset marked lost.
        Lost is final: when such bytes land later they are discarded —
        at the next simulation instant, after the landing code has
        finished its own bookkeeping — instead of resurrecting the
        dataset with a replica nothing will ever repair or manage.
        """
        if dataset_name not in self._lost:
            return
        self.sim.process(self._discard_stray(site, dataset_name),
                         name=f"durability:stray:{dataset_name}")

    def _discard_stray(self, site: str, dataset_name: str):
        storage = self.grid.storages[site]
        if dataset_name in storage:
            storage.remove(dataset_name)
        if self.grid.catalog.has_replica(dataset_name, site):
            self.grid.catalog.deregister(dataset_name, site)
        return
        yield  # pragma: no cover - unreachable; makes this a generator

    def on_deregister(self, dataset_name: str, site: str) -> None:
        """A replica record disappeared: check the dataset's health.

        Fires on quarantine, explicit loss, LRU eviction, and permanent
        site invalidation alike.  Job outputs and other unmanaged names
        (not in ``grid.datasets``) are ignored.
        """
        self._corrupt.discard((site, dataset_name))
        if dataset_name not in self.grid.datasets:
            return
        if dataset_name in self._lost:
            return
        count = self.grid.catalog.replica_count(dataset_name)
        if count == 0:
            if self.repair is not None and self.repair.is_active(
                    dataset_name):
                # A repair copy may be mid-wire; the campaign delivers
                # the verdict (lost on give-up, healthy on landing).
                return
            self.mark_lost(dataset_name)
            return
        if (self.repair is not None
                and count < self.policy.replication_factor):
            self.repair.request(dataset_name)

"""Overload protection: admission control and graceful degradation.

The paper's grid never saturates — queues are unbounded, eviction always
succeeds, and every job eventually runs.  Under the heavy open-loop
traffic the ROADMAP targets, that assumption collapses: a site whose
queue grows without bound wedges the whole study, and two concurrent
transfers into a nearly-full storage element can overcommit capacity.
This module bundles every saturation-survival knob into one frozen
policy, mirroring :class:`~repro.grid.staleness.InfoPolicy` for the
information-quality family:

* **Bounded queues with backpressure** — ``queue_capacity`` caps each
  site's waiting-job count; an overflowing dispatch is *deflected* back
  for re-placement (``deflect_budget`` times, reusing the bounce
  machinery's accounting shape) and finally *shed* with a counted and
  traced ``job.shed`` event — never silently dropped.
* **Storage reservations** — ``storage_reservations`` makes the data
  mover reserve space at transfer start (released on abort/failover),
  closing the window where two in-flight transfers both pass
  ``can_fit`` and overcommit the destination.  A pinned fetch that
  cannot reserve space for ``remote_read_after`` retry rounds degrades
  to a *remote read*: the bytes stream to the job without being stored.
* **Deadlines and aging** — ``job_deadline_s`` bounds a job's queue wait
  (expired jobs are counted and traced, not lost); ``aging_factor``
  ages priority-scheduler queue keys so SJF/data-aware policies cannot
  starve large jobs forever.
* **Degraded-mode ES** — when the External Scheduler wedges (no
  candidate sites) or every choice is saturated, placement falls back
  to ``degraded_es`` (a registry name) or, last of all, a deterministic
  least-loaded scan.

Every knob defaults *off*: a grid built with a null policy takes the
exact pre-overload code paths, so disabled runs stay bitwise-identical
to the committed golden trace digests.  Saturated runs draw no new
randomness outside the dedicated ``"overload"`` stream, so they stay
deterministic at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OverloadPolicy:
    """Saturation-protection policy for one grid.

    Attributes
    ----------
    queue_capacity:
        Maximum jobs *waiting* at any site (the paper's load measure).
        0 = unbounded queues (the paper's model).
    deflect_budget:
        How many times a job aimed at a saturated site may be deflected
        to another site before it is shed.  Only meaningful when
        ``queue_capacity`` > 0.
    job_deadline_s:
        Maximum time a job may wait in a site queue before it expires
        (counted, traced, terminal).  0 = no deadline.
    aging_factor:
        Priority-aging rate for queue-reordering local schedulers, in
        priority-seconds of credit per second waited.  With uniform
        linear aging the pairwise order of two waiting jobs never
        changes after both are enqueued, so aging folds into a constant
        key at enqueue time (``base + factor * now``) — zero ongoing
        cost, bitwise-deterministic.  0 = no aging.
    degraded_es:
        Registry name of the last-resort External Scheduler used when
        the primary wedges or every candidate is saturated ("" = use a
        deterministic least-loaded scan).
    storage_reservations:
        Route data-mover transfers through the storage reservation
        ledger (reserve at transfer start, release on abort) so
        concurrent inbound transfers can never overcommit capacity.
    remote_read_after:
        Pinned-fetch retry rounds (of the data mover's blocked-fetch
        interval) tolerated before degrading to a remote read.  Only
        consulted when ``storage_reservations`` is on.
    """

    queue_capacity: int = 0
    deflect_budget: int = 1
    job_deadline_s: float = 0.0
    aging_factor: float = 0.0
    degraded_es: str = ""
    storage_reservations: bool = False
    remote_read_after: int = 3

    def __post_init__(self) -> None:
        if self.queue_capacity < 0:
            raise ValueError(
                f"queue capacity must be >= 0, got {self.queue_capacity!r}")
        if self.deflect_budget < 0:
            raise ValueError(
                f"deflect budget must be >= 0, got {self.deflect_budget!r}")
        if self.job_deadline_s < 0:
            raise ValueError(
                f"job deadline must be >= 0, got {self.job_deadline_s!r}")
        if self.aging_factor < 0:
            raise ValueError(
                f"aging factor must be >= 0, got {self.aging_factor!r}")
        if self.remote_read_after < 0:
            raise ValueError(
                f"remote_read_after must be >= 0, "
                f"got {self.remote_read_after!r}")

    @property
    def is_null(self) -> bool:
        """True when every mechanism is off (grid runs pre-overload paths).

        ``deflect_budget`` and ``remote_read_after`` are modifiers of
        other knobs and do not activate anything on their own.
        """
        return (self.queue_capacity == 0
                and self.job_deadline_s == 0
                and self.aging_factor == 0
                and not self.degraded_es
                and not self.storage_reservations)


class SaturationStats:
    """Shared mutable saturation counters for one grid run.

    One instance is wired into the grid, every site, and the data mover
    so the metrics layer has a single place to read.  Plain attributes,
    no simulator events — updating a counter can never perturb event
    order.
    """

    __slots__ = ("jobs_shed", "jobs_deflected", "jobs_expired",
                 "degraded_dispatches", "remote_reads")

    def __init__(self) -> None:
        #: Jobs refused admission (queues full, deflect budget spent).
        self.jobs_shed = 0
        #: Deflection events (a job may be deflected more than once).
        self.jobs_deflected = 0
        #: Jobs whose queue wait exceeded the deadline.
        self.jobs_expired = 0
        #: Placements decided by the degraded-mode fallback selector.
        self.degraded_dispatches = 0
        #: Pinned fetches degraded to streaming reads (nothing stored).
        self.remote_reads = 0

"""The DataGrid aggregate: wiring and the submission entry point.

A :class:`DataGrid` owns every mechanism component (network, catalog,
storage, sites, data mover, information service) plus the chosen policies
(one External Scheduler, one Local Scheduler per site — all identical in
the paper — and one Dataset Scheduler attached per site).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.backoff import BackoffPolicy
from repro.grid.catalog import ReplicaCatalog
from repro.grid.compute import ComputeElement
from repro.grid.datamover import DataMover
from repro.grid.files import DatasetCollection
from repro.grid.info import InformationService
from repro.grid.job import Job, JobState
from repro.grid.lifecycle import TransitionEngine
from repro.grid.site import Site
from repro.grid.storage import StorageElement
from repro.grid.user import User
from repro.network.topology import Topology
from repro.network.transfer import TransferManager
from repro.sim.core import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.base import (
        DatasetScheduler,
        ExternalScheduler,
        LocalScheduler,
    )
    from repro.sim.trace import Tracer


class DataGrid:
    """A fully wired Data Grid ready to accept jobs.

    Use :meth:`create` unless you need to substitute custom components.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        transfers: TransferManager,
        catalog: ReplicaCatalog,
        datasets: DatasetCollection,
        storages: Dict[str, StorageElement],
        sites: Dict[str, Site],
        info: InformationService,
        datamover: DataMover,
        external_scheduler: "ExternalScheduler",
        dataset_scheduler: "DatasetScheduler",
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.transfers = transfers
        self.catalog = catalog
        self.datasets = datasets
        self.storages = storages
        self.sites = sites
        self.info = info
        self.datamover = datamover
        self.external_scheduler = external_scheduler
        self.dataset_scheduler = dataset_scheduler
        self.users: List[User] = []
        #: Every job ever submitted, in submission order.
        self.submitted_jobs: List[Job] = []
        #: The single authority for job state changes: every component of
        #: this grid (submission, sites, supervisor, overload/staleness
        #: recovery) drives jobs through this engine — never by mutating
        #: ``job.state`` directly.  Sites share the grid's engine so the
        #: per-state counts cover the whole system.
        self.lifecycle = TransitionEngine(sim)
        for site in sites.values():
            site.lifecycle = self.lifecycle
        #: Fault injector (``None`` in fault-free runs; installed by
        #: :meth:`create` when a non-null plan is given).  Every fault
        #: branch in the hot path is gated on this staying ``None`` so a
        #: plan-less grid behaves bitwise-identically to one built before
        #: the fault layer existed.
        self.faults = None
        #: Domain-event tracer (``None`` = tracing off, the default).
        #: Installed by :meth:`create`; every emission in the grid is gated
        #: on this staying ``None`` so an untraced run pays one attribute
        #: check and is bitwise-identical to a pre-tracing build.
        self.tracer: Optional["Tracer"] = None
        #: Runtime invariant watchdog (``None`` = off, the default;
        #: installed by :meth:`create` when ``watchdog_interval_s`` > 0).
        self.watchdog = None
        #: Overload policy + shared saturation counters (``None`` = off,
        #: the default; installed by :meth:`create` for a non-null
        #: :class:`~repro.grid.overload.OverloadPolicy`).  Every overload
        #: branch is gated on this staying ``None`` so a policy-less grid
        #: behaves bitwise-identically to a pre-overload build.
        self.overload = None
        self.overload_stats = None
        #: Observed-health layer (``None`` = off, the default; installed
        #: by :meth:`create` for a non-null
        #: :class:`~repro.grid.health.HealthPolicy`).  Every health branch
        #: is gated on this staying ``None`` so a policy-less grid behaves
        #: bitwise-identically to a pre-health build.
        self.health = None
        #: Data-durability layer (``None`` = off, the default; installed
        #: by :meth:`create` for a non-null
        #: :class:`~repro.grid.durability.DurabilityPolicy` or a fault
        #: plan with durability faults).  Every durability branch is
        #: gated on this staying ``None`` so an unarmed grid behaves
        #: bitwise-identically to a pre-durability build.
        self.durability = None
        #: Last-resort External Scheduler (degraded mode), or ``None``.
        self._degraded_es = None
        #: Open-loop arrival stream (``None`` = the paper's closed-loop
        #: users).  When set, :meth:`run` drives this instead of users.
        self.arrivals = None
        #: DAG workload driver (``None`` = no inter-job dependencies).
        #: When set, :meth:`run` drives this instead of users/arrivals.
        self.dag = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        sim: Simulator,
        topology: Topology,
        datasets: DatasetCollection,
        external_scheduler: "ExternalScheduler",
        local_scheduler: "LocalScheduler",
        dataset_scheduler: "DatasetScheduler",
        site_processors: Dict[str, int],
        storage_capacity_mb: float = float("inf"),
        datamover_rng: Optional[random.Random] = None,
        info_refresh_interval_s: float = 0.0,
        info_policy=None,
        allocator=None,
        fault_plan=None,
        fault_rng: Optional[random.Random] = None,
        tracer: Optional["Tracer"] = None,
        watchdog_interval_s: float = 0.0,
        overload_policy=None,
        overload_rng: Optional[random.Random] = None,
        health_policy=None,
        health_rng: Optional[random.Random] = None,
        durability_policy=None,
        durability_rng: Optional[random.Random] = None,
    ) -> "DataGrid":
        """Build and wire a grid over ``topology``.

        ``site_processors`` maps each site name to its processor count
        (paper: 2–5 per site).  Every site gets ``storage_capacity_mb`` of
        LRU-managed storage.  ``info_policy`` (an
        :class:`~repro.grid.staleness.InfoPolicy`) takes precedence over
        the ``info_refresh_interval_s`` shorthand; a policy with a
        positive catalog delay routes scheduler replica queries through a
        stale view.  ``watchdog_interval_s`` > 0 installs the runtime
        invariant watchdog (:mod:`repro.watchdog`) at that check period.
        A non-null ``overload_policy``
        (:class:`~repro.grid.overload.OverloadPolicy`) arms the saturation
        protections — bounded queues, storage reservations, deadlines,
        degraded-mode placement; ``overload_rng`` seeds its (optional)
        degraded External Scheduler.  A non-null ``health_policy``
        (:class:`~repro.grid.health.HealthPolicy`) installs the observed
        failure-detection layer — heartbeats, circuit breakers, and
        speculative backup execution; ``health_rng`` seeds its heartbeat
        jitter and probe streams.  A non-null ``durability_policy``
        (:class:`~repro.grid.durability.DurabilityPolicy`) installs the
        data-durability layer — checksum verification, scrubbing, and
        replication-factor repair; the layer is also auto-installed in
        detection-only mode when the fault plan contains durability
        faults (corruption or replica loss), so every armed run can at
        least record what it lost.  ``durability_rng`` seeds repair
        placement tie-breaking.
        """
        topology.validate()
        missing = set(topology.sites) - set(site_processors)
        if missing:
            raise ValueError(f"no processor counts for sites {sorted(missing)}")

        transfers = TransferManager(sim, topology, allocator=allocator)
        catalog = ReplicaCatalog()
        storages: Dict[str, StorageElement] = {}
        for name in topology.sites:
            storages[name] = StorageElement(
                name, storage_capacity_mb,
                on_evict=(lambda ds, _site=name:
                          catalog.deregister(ds.name, _site)))
        datamover = DataMover(sim, transfers, catalog, datasets, storages,
                              rng=datamover_rng)
        sites: Dict[str, Site] = {}
        for name in topology.sites:
            compute = ComputeElement(
                sim, name, site_processors[name],
                priority_queue=local_scheduler.uses_priorities)
            sites[name] = Site(sim, name, compute, storages[name],
                               datamover, local_scheduler)
        info = InformationService(sim, sites, catalog,
                                  refresh_interval_s=info_refresh_interval_s,
                                  policy=info_policy)
        grid = cls(sim, topology, transfers, catalog, datasets, storages,
                   sites, info, datamover, external_scheduler,
                   dataset_scheduler)
        if tracer is not None:
            grid.tracer = tracer
            grid.lifecycle.tracer = tracer
            datamover.tracer = tracer
            transfers.tracer = tracer
            catalog.set_tracer(tracer, sim)
            for site in sites.values():
                site.tracer = tracer
            if info.replica_view is not None:
                info.replica_view.tracer = tracer
        for site in sites.values():
            dataset_scheduler.attach(site, grid)
        if fault_plan is not None and not fault_plan.is_null:
            from repro.faults.injector import FaultInjector

            FaultInjector(sim, grid, fault_plan, rng=fault_rng).install()
        if overload_policy is not None and not overload_policy.is_null:
            from repro.grid.overload import SaturationStats
            from repro.scheduling.registry import make_external_scheduler

            stats = SaturationStats()
            grid.overload = overload_policy
            grid.overload_stats = stats
            if overload_policy.degraded_es:
                grid._degraded_es = make_external_scheduler(
                    overload_policy.degraded_es,
                    overload_rng or random.Random(0))
            datamover.overload = overload_policy
            datamover.overload_stats = stats
            for site in sites.values():
                site.overload = overload_policy
                site.overload_stats = stats
            # With a queue deadline armed, the engine's start edge
            # enforces no-starvation as a transition guard.
            grid.lifecycle.deadline_of = (
                lambda job: (job.deadline_s if job.deadline_s is not None
                             else overload_policy.job_deadline_s))
        if health_policy is not None and not health_policy.is_null:
            from repro.grid.health import HealthMonitor

            HealthMonitor(sim, grid, health_policy,
                          rng=health_rng).install()
        durability_armed = (
            (durability_policy is not None and not durability_policy.is_null)
            or (fault_plan is not None and not fault_plan.is_null
                and fault_plan.has_durability_faults))
        if durability_armed:
            from repro.grid.durability import (
                DurabilityManager,
                DurabilityPolicy,
            )

            DurabilityManager(sim, grid,
                              durability_policy or DurabilityPolicy(),
                              rng=durability_rng).install()
        if watchdog_interval_s > 0:
            from repro.watchdog import Watchdog

            Watchdog(sim, grid, interval_s=watchdog_interval_s).install()
        return grid

    # -- data placement ----------------------------------------------------------

    def place_initial_replica(self, dataset_name: str, site: str) -> None:
        """Install the primary copy of a dataset at a site.

        Primary copies are permanently pinned: the paper's model always has
        at least one replica of every dataset, so LRU caching must never
        evict the last copy.
        """
        dataset = self.datasets.get(dataset_name)
        self.storages[site].add(dataset, self.sim.now, pin=True)
        self.catalog.register(dataset_name, site, size_mb=dataset.size_mb)
        if self.info.replica_view is not None:
            # Pre-run placement is configuration, not runtime churn: the
            # schedulers know the initial distribution from the start.
            self.info.replica_view.sync_all()

    def place_initial_replicas(self, mapping: Dict[str, str],
                               headroom_mb: Optional[float] = None) -> None:
        """Install primary copies for many datasets (name → site).

        Placement is capacity-aware: primaries are pinned forever, so every
        site must keep ``headroom_mb`` of space free for working files
        (default: the largest dataset in the grid — enough to cache at
        least one input).  A mapped site without room deterministically
        overflows to the site with the most free space; datasets are placed
        largest-first so overflow is rare and reproducible.
        """
        if headroom_mb is None:
            headroom_mb = max(
                (self.datasets.get(n).size_mb for n in mapping), default=0.0)
        by_size = sorted(
            mapping.items(),
            key=lambda kv: (-self.datasets.get(kv[0]).size_mb, kv[0]))
        for name, site in by_size:
            size = self.datasets.get(name).size_mb
            if self.storages[site].free_mb - size < headroom_mb:
                site = max(
                    sorted(self.storages),
                    key=lambda s: self.storages[s].free_mb)
                if self.storages[site].free_mb - size < headroom_mb:
                    raise ValueError(
                        f"grid storage too small: no site can hold the "
                        f"primary copy of {name!r} ({size:.0f} MB) while "
                        f"keeping {headroom_mb:.0f} MB of working space")
            self.place_initial_replica(name, site)

    # -- operation ----------------------------------------------------------------

    def submit(self, job: Job, site_hint: Optional[str] = None) -> Process:
        """Submit a job: ES picks the site, the site executes it.

        Returns the execution process (triggers with the job when done).
        Under a fault plan the returned process is a recovery supervisor
        that re-dispatches the job when an outage kills it, so callers
        (users) still simply wait for one process per job.

        ``site_hint`` (bulk submission) bypasses the ES for the initial
        placement — the job still passes misdirection and saturation
        resolution, so a hinted job can end up elsewhere.
        """
        self.lifecycle.submit(job)
        self.submitted_jobs.append(job)
        if self.faults is not None:
            return self.sim.process(
                self._submit_with_recovery(job, site_hint),
                name=f"supervise:job{job.job_id}")
        if site_hint is not None and site_hint in self.sites:
            site_name = site_hint
        else:
            site_name = self._select_site(job)
        if self.info.replica_view is not None:
            site_name = self._resolve_misdirection(job, site_name)
        if self.overload is not None and self.overload.queue_capacity > 0:
            resolved = self._resolve_saturation(job, site_name)
            if resolved is None:
                self._mark_shed(job)
                return self.sim.process(self._shed_process(job),
                                        name=f"shed:job{job.job_id}")
            site_name = resolved
        self.lifecycle.dispatch(job, site_name)
        return self.sites[site_name].enqueue(job)

    def submit_bulk(self, jobs: List[Job]) -> List[Process]:
        """Submit a batch with batch-level placement (DIANA-style).

        Jobs sharing an input-set signature are placed together: the
        first member of each group is placed by the External Scheduler as
        usual, and the rest are hinted to the site it landed on — one ES
        decision per group instead of one per job.  Under a fault plan
        placement is asynchronous, so hints are skipped and every member
        is placed individually by its recovery supervisor.

        Returns one execution process per job, in input order.
        """
        procs: List[Process] = []
        leaders: Dict[tuple, Optional[str]] = {}
        for job in jobs:
            signature = tuple(sorted(set(job.input_files)))
            procs.append(self.submit(job, site_hint=leaders.get(signature)))
            if signature not in leaders and self.faults is None:
                # A shed leader records None: followers fall back to
                # individual ES placement rather than piling onto the
                # saturated choice.
                leaders[signature] = job.execution_site
        return procs

    def abandon(self, job: Job, reason: str) -> None:
        """Fail a WAITING job whose dependency ended badly (DAG cascade).

        The job never reaches the External Scheduler but is accounted and
        traced like any other permanent failure, so conservation checks
        and metrics see it.
        """
        self.submitted_jobs.append(job)
        self.lifecycle.abandon(job, reason)

    def _select_site(self, job: Job) -> str:
        """Ask the primary ES for a site, with degraded-mode fallback.

        Without an overload policy this is exactly the old select + guard
        sequence.  With one, a primary that *wedges* (raises ``ValueError``
        because it found no candidate) is answered by the degraded
        selector over the up sites instead of killing the submission.
        """
        if self.overload is None:
            try:
                site_name = self.external_scheduler.select_site(job, self)
            except ValueError:
                if self.health is None or self.faults is not None:
                    raise
                # Every site is detector-hidden (false positives can do
                # this in a fault-free run): place least-loaded over the
                # physical sites rather than wedging the submission.
                site_name = min(sorted(self.sites),
                                key=lambda s: (self.sites[s].load, s))
        else:
            try:
                site_name = self.external_scheduler.select_site(job, self)
            except ValueError:
                # Observed mode must not consult the fault oracle here;
                # the breakers are the only site-health knowledge.
                observed = (self.health is not None
                            and self.health.policy.observed_only)
                candidates = [
                    name for name in sorted(self.sites)
                    if (self.faults is None or observed
                        or self.faults.is_up(name))
                    and (self.health is None or self.health.allows(name))]
                if not candidates:
                    if self.health is not None and self.faults is None:
                        candidates = sorted(self.sites)
                    else:
                        raise
                return self._degraded_select(job, candidates)
        if site_name not in self.sites:
            raise ValueError(
                f"{self.external_scheduler!r} chose unknown site "
                f"{site_name!r}")
        return site_name

    def _resolve_saturation(self, job: Job,
                            site_name: str) -> Optional[str]:
        """Deflect a job aimed at a full queue; ``None`` = shed it.

        Each loop iteration spends one unit of the deflect budget and
        re-places the job over the *unsaturated* up sites, so the loop
        always terminates: either the chosen site has room, no site has
        room (shed), or the budget runs out (shed).
        """
        policy = self.overload
        cap = policy.queue_capacity
        while self.sites[site_name].load >= cap:
            candidates = [
                name for name, site in sorted(self.sites.items())
                if site.load < cap
                and (self.faults is None or self.faults.is_up(name))
                and (self.health is None or self.health.allows(name))]
            if not candidates or job.deflections >= policy.deflect_budget:
                return None
            self.overload_stats.jobs_deflected += 1
            target = self._degraded_select(job, candidates)
            self.lifecycle.deflect(job, origin=site_name, site=target)
            site_name = target
        return site_name

    def _degraded_select(self, job: Job, candidates: List[str]) -> str:
        """Place a job with the last-resort selector.

        Tries the configured degraded ES first; if it is absent, wedges
        too, or picks outside ``candidates``, falls back to the
        deterministic least-loaded (then lexicographic) scan.
        """
        self.overload_stats.degraded_dispatches += 1
        choice = None
        if self._degraded_es is not None:
            try:
                pick = self._degraded_es.select_site(job, self)
            except ValueError:
                pick = None
            if pick in candidates:
                choice = pick
        if choice is None:
            choice = min(candidates, key=lambda s: (self.sites[s].load, s))
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "es.degraded", job=job.job_id, site=choice,
                es=self.overload.degraded_es or "least-loaded")
        return choice

    def _mark_shed(self, job: Job) -> None:
        """Terminal admission refusal: account, never silently drop."""
        self.lifecycle.shed(
            job,
            f"queues saturated (capacity {self.overload.queue_capacity}, "
            f"{job.deflections} deflections)")
        self.overload_stats.jobs_shed += 1

    @staticmethod
    def _shed_process(job: Job):
        """An already-finished execution process for a shed job.

        Returning before the first yield is legal for the kernel; callers
        waiting on the submission see it complete immediately with the
        (terminal) job as its value.
        """
        return job
        yield  # pragma: no cover - unreachable; makes this a generator

    def _resolve_misdirection(self, job: Job, site_name: str) -> str:
        """Detect and recover a dispatch aimed at a phantom replica.

        Under a stale catalog view the ES may send a job to a site whose
        promised replica was evicted (or never arrived).  The destination
        notices the miss at hand-off: each promised input (one the stale
        view locates there) is checked against the live catalog.  The
        grid then either *bounces* the job back to the ES for one
        re-dispatch — after reconciling the phantom records, so the
        second choice is made against corrected information — or, once
        the bounce budget is spent, lets the job proceed and fall back to
        a remote fetch via the data mover.  Every hop is synchronous: no
        simulated time passes, matching the model's zero-cost dispatch.
        """
        view = self.info.replica_view
        budget = self.info.policy.bounce_budget
        while True:
            missing = [name for name in job.input_files
                       if view.has_replica(name, site_name)
                       and not self.catalog.has_replica(name, site_name)]
            if not missing:
                return site_name
            view.misdirected_jobs += 1
            self.lifecycle.misdirected(job, site_name, missing)
            for name in missing:
                view.reconcile(name, site_name)
            if job.bounces >= budget:
                return site_name
            candidate = self.external_scheduler.select_site(job, self)
            if candidate not in self.sites:
                raise ValueError(
                    f"{self.external_scheduler!r} chose unknown site "
                    f"{candidate!r}")
            if self.faults is not None and not self.faults.is_up(candidate):
                # Bouncing onto a dead site would trade one phantom for
                # another; keep the original choice and fetch remotely.
                return site_name
            if self.health is not None and not self.health.allows(candidate):
                # Same logic through the observed channel: the breaker
                # says the candidate is unhealthy.
                return site_name
            view.bounced_jobs += 1
            self.lifecycle.bounce(job, origin=site_name, site=candidate)
            site_name = candidate

    def _submit_with_recovery(self, job: Job,
                              site_hint: Optional[str] = None):
        """Dispatch loop under fault injection.

        Each iteration: wait until some site is up, place the job (with a
        deterministic fallback if the ES's choice is down), and wait for
        the execution attempt.  A killed attempt comes back with the job
        in RETRYING; the job is rewound and re-dispatched after the
        plan's redispatch delay, until it completes or exhausts its retry
        budget and is accounted FAILED.  A ``site_hint`` (bulk
        submission) is honoured for the first attempt only, and only
        while the hinted site is up.
        """
        faults = self.faults
        plan = faults.plan
        redispatch = (BackoffPolicy(plan.redispatch_delay_s,
                                    plan.redispatch_delay_s)
                      if plan.redispatch_delay_s > 0 else None)
        while True:
            if job.state is JobState.SPECULATED:
                # The race was settled while this attempt sat in retry
                # backoff or parked: the backup clone carried the
                # logical job, and the health layer conceded this one.
                return job
            if self.durability is not None:
                lost = [name for name in job.input_files
                        if self.durability.is_lost(name)]
                if lost:
                    # An input's every replica is gone.  Retrying cannot
                    # bring the bytes back, so the job takes its terminal
                    # edge instead of burning the retry budget.
                    self.lifecycle.abandon_data_lost(
                        job, lost[0],
                        f"input dataset {lost[0]!r} unrecoverably lost")
                    self.durability.stats.jobs_abandoned += 1
                    return job
            if not faults.any_site_up():
                if faults.grid_lost:
                    # Every site is permanently dead: recovery can never
                    # happen, so fail fast instead of waiting forever.
                    self.lifecycle.fail(job, "all sites permanently failed")
                    faults.jobs_failed += 1
                    return job
                yield faults.recovery_event()
                continue
            if (site_hint is not None and site_hint in self.sites
                    and faults.is_up(site_hint)):
                site_name = site_hint
            else:
                try:
                    site_name = self._select_site(job)
                except ValueError:
                    if self.health is None:
                        raise
                    # Every site is hidden from the schedulers (detector
                    # suspicion, possibly wrongly).  Park until a probe
                    # re-admits one or the oracle channel recovers.
                    yield faults.recovery_event()
                    continue
            site_hint = None
            # Hand-off check.  In oracle mode an unreachable choice is
            # redirected at most once (the fallback consults the already
            # filtered information service); in observed mode the bounce
            # itself is the observation — it trips the site's breaker —
            # and a job that runs out of distinct fallbacks parks until
            # something is re-admitted.
            tried = set()
            while not faults.is_reachable(site_name):
                if (self.health is not None
                        and self.health.policy.observed_only):
                    self.health.record_dispatch_failure(site_name)
                tried.add(site_name)
                fallback = faults.fallback_site()
                if fallback is None or fallback in tried:
                    site_name = None
                    break
                self.lifecycle.redirect(job, chosen=site_name,
                                        fallback=fallback)
                site_name = fallback
                faults.jobs_redirected += 1
            if site_name is None:
                if faults.any_site_up():
                    yield faults.recovery_event()
                continue  # wait for recovery / re-admission
            if self.info.replica_view is not None:
                site_name = self._resolve_misdirection(job, site_name)
            if (self.overload is not None
                    and self.overload.queue_capacity > 0):
                resolved = self._resolve_saturation(job, site_name)
                if resolved is None:
                    self._mark_shed(job)
                    return job
                site_name = resolved
            self.lifecycle.dispatch(job, site_name,
                                    attempt=job.retries + 1)
            yield self.sites[site_name].enqueue(job)
            if job.state in (JobState.DONE, JobState.EXPIRED,
                             JobState.SPECULATED):
                # Expiry, like completion, is terminal: the deadline
                # already accounted the job — retrying would double it.
                # SPECULATED means this attempt lost a speculation race:
                # the logical job completed through its backup clone.
                return job
            if job.retries >= plan.job_max_retries:
                if (self.health is not None
                        and self.health.retire_dead_attempt(job)):
                    # Out of budget, but a speculation partner is live
                    # (or already DONE): the partner's outcome is the
                    # logical job's outcome, so this attempt concedes
                    # instead of booking a failure.
                    return job
                self.lifecycle.fail(
                    job, job.failure_reason or "retries exhausted")
                faults.jobs_failed += 1
                return job
            self.lifecycle.retry(job)
            faults.jobs_retried += 1
            if redispatch is not None:
                # Routed through the shared backoff helper; with base ==
                # cap this is the plan's constant delay, bit for bit.
                yield self.sim.timeout(redispatch.delay(job.retries))

    def add_user(self, user: User) -> None:
        """Register a user (started by :meth:`run`)."""
        self.users.append(user)

    def run(self) -> float:
        """Start all users and run until every user finishes.

        Returns the makespan (time of the last job completion).  The
        simulation itself is then drained of the remaining bookkeeping
        events, but periodic Dataset Scheduler loops are not awaited (they
        are infinite); time stops advancing once the last *triggering*
        activity completes because we stop at the all-users event.
        """
        if self.dag is not None:
            # DAG mode: the driver releases jobs as their parents finish
            # and completes once every job settled.
            self.sim.run(until=self.dag.start())
            return self.sim.now
        if self.arrivals is not None:
            # Open-loop mode: the arrival driver completes when the last
            # submitted job finishes (or is shed/expired/failed).
            self.sim.run(until=self.arrivals.start())
            return self.sim.now
        if not self.users:
            raise ValueError("no users added to the grid")
        processes = [user.start() for user in self.users]
        done = self.sim.all_of(processes)
        self.sim.run(until=done)
        return self.sim.now

    # -- convenience metrics -------------------------------------------------------

    @property
    def completed_jobs(self) -> List[Job]:
        """All jobs that reached COMPLETED."""
        return [j for j in self.submitted_jobs
                if j.state is JobState.COMPLETED]

    @property
    def failed_jobs(self) -> List[Job]:
        """Jobs given up on by fault recovery (empty in fault-free runs)."""
        return [j for j in self.submitted_jobs if j.state is JobState.FAILED]

    @property
    def shed_jobs(self) -> List[Job]:
        """Jobs refused admission under overload (empty without a policy)."""
        return [j for j in self.submitted_jobs if j.state is JobState.SHED]

    @property
    def expired_jobs(self) -> List[Job]:
        """Jobs whose queue deadline passed (empty without a policy)."""
        return [j for j in self.submitted_jobs
                if j.state is JobState.EXPIRED]

    @property
    def speculated_jobs(self) -> List[Job]:
        """Attempts that lost a speculation race (terminal; the logical
        job completed through the other attempt)."""
        return [j for j in self.submitted_jobs
                if j.state is JobState.SPECULATED]

    @property
    def abandoned_jobs(self) -> List[Job]:
        """Jobs retired because an input dataset was unrecoverably lost
        (empty without the durability layer)."""
        return [j for j in self.submitted_jobs
                if j.state is JobState.ABANDONED_DATA_LOST]

    @property
    def total_processors(self) -> int:
        """Sum of processor counts across sites."""
        return sum(s.compute.n_processors for s in self.sites.values())

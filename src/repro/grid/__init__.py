"""The Data Grid model: sites, storage, compute, jobs, users, data movement.

This package is the ChicSim equivalent — it instantiates the system model of
the paper's §3: a set of sites (processors + limited storage), users bound
to sites submitting jobs sequentially, datasets initially mapped to sites,
a replica catalog, an information service, and a data mover.  The
*scheduling logic* itself lives in :mod:`repro.scheduling`; everything here
is mechanism, not policy.
"""

from repro.grid.catalog import ReplicaCatalog
from repro.grid.compute import ComputeElement
from repro.grid.datamover import DataMover
from repro.grid.durability import (
    DurabilityManager,
    DurabilityPolicy,
    RepairManager,
)
from repro.grid.files import Dataset, DatasetCollection
from repro.grid.grid import DataGrid
from repro.grid.info import InformationService
from repro.grid.job import Job, JobState
from repro.grid.lifecycle import (
    TRANSITIONS,
    IllegalTransition,
    LifecycleGuardError,
    TransitionEngine,
)
from repro.grid.site import Site
from repro.grid.staleness import InfoPolicy, StaleReplicaView
from repro.grid.storage import StorageElement, StorageFullError
from repro.grid.user import User

__all__ = [
    "ComputeElement",
    "DataGrid",
    "DataMover",
    "Dataset",
    "DatasetCollection",
    "DurabilityManager",
    "DurabilityPolicy",
    "IllegalTransition",
    "InfoPolicy",
    "InformationService",
    "Job",
    "JobState",
    "LifecycleGuardError",
    "ReplicaCatalog",
    "TRANSITIONS",
    "TransitionEngine",
    "RepairManager",
    "Site",
    "StaleReplicaView",
    "StorageElement",
    "StorageFullError",
    "User",
]
